//! Property tests on the measurement stack: energy conservation in the
//! DAQ, thermal-model bounds, and power-model monotonicity.

use proptest::prelude::*;
use vmprobe_platform::{HpmDelta, Machine, PlatformKind};
use vmprobe_power::{
    ComponentId, Daq, DvfsPoint, PowerModel, Seconds, ThermalConfig, ThermalSim, Watts,
};

fn component(i: u8) -> ComponentId {
    ComponentId::ALL[i as usize % ComponentId::ALL.len()]
}

proptest! {
    #[test]
    fn daq_conserves_energy_across_components(
        segments in prop::collection::vec((0u8..9, 1u32..2000), 1..40),
    ) {
        let mut m = Machine::new(PlatformKind::PentiumM);
        let mut daq = Daq::new(PlatformKind::PentiumM);
        for &(c, work) in &segments {
            for _ in 0..work {
                m.int_ops(17);
            }
            daq.observe(&m.snapshot(), component(c));
        }
        let r = daq.report();
        let sum: f64 = r.per_component.iter().map(|p| p.energy.joules()).sum();
        prop_assert!((sum - r.cpu_energy.joules()).abs() < 1e-12);
        let sum_t: f64 = r.per_component.iter().map(|p| p.time.seconds()).sum();
        prop_assert!((sum_t - r.sampled_time.seconds()).abs() < 1e-12);
        // Per component: peak >= average, energy = avg*time.
        for p in &r.per_component {
            if p.samples > 0 {
                prop_assert!(p.peak.watts() + 1e-12 >= p.avg_power().watts());
            }
        }
    }

    #[test]
    fn cpu_power_is_monotonic_in_ipc(
        cycles in 1_000u64..100_000,
        i1 in 0u64..50_000,
        extra in 1u64..20_000,
    ) {
        let model = PowerModel::new(PlatformKind::PentiumM);
        let window = |instr: u64| HpmDelta { cycles, instructions: instr, ..HpmDelta::default() };
        let lo = model.cpu_power(&window(i1), 40e-6);
        let hi = model.cpu_power(&window(i1 + extra), 40e-6);
        prop_assert!(hi.watts() + 1e-12 >= lo.watts());
        // And never below idle.
        prop_assert!(lo.watts() >= 4.5 - 1e-12);
    }

    #[test]
    fn thermal_temperature_stays_between_ambient_and_unthrottled_steady_state(
        power in 5.0f64..20.0,
        steps in 10usize..4000,
        fan in any::<bool>(),
    ) {
        let cfg = ThermalConfig::default();
        let mut sim = ThermalSim::new(cfg, fan);
        let steady = sim.steady_state(Watts::new(power)).celsius();
        let dt = Seconds::new(0.1);
        for _ in 0..steps {
            let s = sim.step(Watts::new(power), Watts::new(4.5), dt);
            prop_assert!(s.temp.celsius() >= cfg.ambient_c - 1e-9);
            prop_assert!(
                s.temp.celsius() <= steady.max(cfg.trip_c + 2.0) + 1e-9,
                "temperature {} above both steady state {} and trip band",
                s.temp,
                steady
            );
        }
    }

    #[test]
    fn dvfs_scaling_never_increases_power(idx in 0usize..6) {
        let ladder = DvfsPoint::ladder(PlatformKind::PentiumM);
        let point = ladder[idx % ladder.len()];
        let base = PowerModel::new(PlatformKind::PentiumM);
        let scaled = PowerModel::with_coeffs(
            point.scale_coeffs(*base.coeffs()),
        );
        let d = HpmDelta { cycles: 64_000, instructions: 48_000, ..HpmDelta::default() };
        prop_assert!(
            scaled.cpu_power(&d, 40e-6).watts() <= base.cpu_power(&d, 40e-6).watts() + 1e-12
        );
    }
}
