//! Property tests on the measurement stack: energy conservation in the
//! DAQ, thermal-model bounds, and power-model monotonicity.

use proptest::prelude::*;
use vmprobe_platform::{HpmDelta, Machine, PlatformKind};
use vmprobe_power::{
    ComponentId, Daq, DvfsPoint, FaultPlan, PowerModel, Seconds, ThermalConfig, ThermalSim, Watts,
    DAQ_PERIOD_S,
};

fn component(i: u8) -> ComponentId {
    ComponentId::ALL[i as usize % ComponentId::ALL.len()]
}

proptest! {
    #[test]
    fn daq_conserves_energy_across_components(
        segments in prop::collection::vec((0u8..9, 1u32..2000), 1..40),
    ) {
        let mut m = Machine::new(PlatformKind::PentiumM);
        let mut daq = Daq::new(PlatformKind::PentiumM);
        for &(c, work) in &segments {
            for _ in 0..work {
                m.int_ops(17);
            }
            daq.observe(&m.snapshot(), component(c));
        }
        let r = daq.report();
        let sum: f64 = r.per_component.iter().map(|p| p.energy.joules()).sum();
        prop_assert!((sum - r.cpu_energy.joules()).abs() < 1e-12);
        let sum_t: f64 = r.per_component.iter().map(|p| p.time.seconds()).sum();
        prop_assert!((sum_t - r.sampled_time.seconds()).abs() < 1e-12);
        // Per component: peak >= average, energy = avg*time.
        for p in &r.per_component {
            if p.samples > 0 {
                prop_assert!(p.peak.watts() + 1e-12 >= p.avg_power().watts());
            }
        }
    }

    #[test]
    fn faulty_daq_energy_stays_within_the_documented_bound(
        drop_p in 0.0f64..0.5,
        dup_p in 0.0f64..0.3,
        noise in 0.0f64..0.05,
        drift in 0.0f64..1e-3,
        seed in any::<u64>(),
    ) {
        // Degradation contract: whatever mix of sample drops, duplicates,
        // Gaussian noise and calibration drift the plan injects, the energy
        // reported by the faulty DAQ deviates from the fault-free ground
        // truth by no more than the bound it reports alongside the data.
        let mut plan = FaultPlan::none();
        plan.drop_sample = drop_p;
        plan.dup_sample = dup_p;
        plan.noise_sigma = noise;
        plan.calib_drift = drift;
        plan.seed = seed;

        let mut m = Machine::new(PlatformKind::PentiumM);
        let mut faulty = Daq::new(PlatformKind::PentiumM).with_faults(plan);
        let mut clean = Daq::new(PlatformKind::PentiumM);
        for i in 0..30_000u64 {
            m.int_ops(500);
            if i % 64 < 32 {
                m.load(0x1000_0000 + (i % 4096) * 8);
            }
            let snap = m.snapshot();
            let c = component((i / 512) as u8);
            faulty.observe(&snap, c);
            clean.observe(&snap, c);
        }
        let fr = faulty.report();
        let cr = clean.report();

        prop_assert!(fr.faults.samples_total > 100, "workload too short to judge");
        prop_assert!(
            fr.energy_deviation_j() <= fr.faults.energy_error_bound_j() + 1e-9,
            "deviation {} exceeds bound {}",
            fr.energy_deviation_j(),
            fr.faults.energy_error_bound_j()
        );
        // The faulty DAQ's clean-side ledger is the real ground truth: it
        // must match an actual fault-free DAQ fed the same snapshots.
        let ledger = fr.clean_cpu_energy.joules() + fr.clean_mem_energy.joules();
        let truth = cr.cpu_energy.joules() + cr.mem_energy.joules();
        prop_assert!(
            (ledger - truth).abs() <= 1e-9 * truth.max(1.0),
            "clean ledger {ledger} != fault-free run {truth}"
        );
    }

    #[test]
    fn daq_takes_floor_t_over_40us_samples_at_any_clock(
        freq_mhz in 25.0f64..4000.0,
        t_ms in 1.0f64..80.0,
    ) {
        // Over T simulated seconds the DAQ takes floor(T / 40 us) samples
        // (within one boundary) for arbitrary clocks, including the
        // non-integral cycle periods where a truncating schedule drifts.
        let freq_hz = freq_mhz * 1e6;
        let mut daq = Daq::with_model(PowerModel::new(PlatformKind::PentiumM), freq_hz, true);
        let mut m = Machine::new(PlatformKind::PentiumM);
        let total_cycles = (t_ms * 1e-3 * freq_hz) as u64;
        while m.cycles() < total_cycles {
            let due = daq.next_due_cycles().min(total_cycles);
            m.stall((due - m.cycles()) as f64);
            daq.observe(&m.snapshot(), ComponentId::Application);
        }
        // Judge against the wall time actually simulated (total_cycles
        // truncates the requested T by under one cycle).
        let t_sim = total_cycles as f64 / freq_hz;
        let expect = (t_sim / DAQ_PERIOD_S).floor() as i64;
        let got = daq.trace().unwrap().len() as i64;
        prop_assert!(
            (got - expect).abs() <= 1,
            "{got} samples over {t_sim} s at {freq_hz} Hz, want {expect}±1"
        );
    }

    #[test]
    fn cpu_power_is_monotonic_in_ipc(
        cycles in 1_000u64..100_000,
        i1 in 0u64..50_000,
        extra in 1u64..20_000,
    ) {
        let model = PowerModel::new(PlatformKind::PentiumM);
        let window = |instr: u64| HpmDelta { cycles, instructions: instr, ..HpmDelta::default() };
        let lo = model.cpu_power(&window(i1), 40e-6);
        let hi = model.cpu_power(&window(i1 + extra), 40e-6);
        prop_assert!(hi.watts() + 1e-12 >= lo.watts());
        // And never below idle.
        prop_assert!(lo.watts() >= 4.5 - 1e-12);
    }

    #[test]
    fn thermal_temperature_stays_between_ambient_and_unthrottled_steady_state(
        power in 5.0f64..20.0,
        steps in 10usize..4000,
        fan in any::<bool>(),
    ) {
        let cfg = ThermalConfig::default();
        let mut sim = ThermalSim::new(cfg, fan);
        let steady = sim.steady_state(Watts::new(power)).celsius();
        let dt = Seconds::new(0.1);
        for _ in 0..steps {
            let s = sim.step(Watts::new(power), Watts::new(4.5), dt);
            prop_assert!(s.temp.celsius() >= cfg.ambient_c - 1e-9);
            prop_assert!(
                s.temp.celsius() <= steady.max(cfg.trip_c + 2.0) + 1e-9,
                "temperature {} above both steady state {} and trip band",
                s.temp,
                steady
            );
        }
    }

    #[test]
    fn dvfs_scaling_never_increases_power(idx in 0usize..6) {
        let ladder = DvfsPoint::ladder(PlatformKind::PentiumM);
        let point = ladder[idx % ladder.len()];
        let base = PowerModel::new(PlatformKind::PentiumM);
        let scaled = PowerModel::with_coeffs(
            point.scale_coeffs(*base.coeffs()),
        );
        let d = HpmDelta { cycles: 64_000, instructions: 48_000, ..HpmDelta::default() };
        prop_assert!(
            scaled.cpu_power(&d, 40e-6).watts() <= base.cpu_power(&d, 40e-6).watts() + 1e-12
        );
    }
}
