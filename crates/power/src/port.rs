//! The memory-mapped component-ID register.
//!
//! On the P6 board the paper drives the parallel port; on the DBPXA255 it
//! uses general-purpose processor pins. Either way the register holds the
//! ID of the component currently executing, and the DAQ reads it at every
//! sample instant. Kaffe-style instrumentation brackets components with
//! entry/exit calls — which nest ("we have to be careful in covering cases
//! of recurrent or overlapping component calls", Section IV-C) — so the
//! port keeps a shadow stack; Jikes-style instrumentation writes from the
//! thread scheduler, which maps to [`ComponentPort::set_base`].

use crate::ComponentId;

/// Simulated I/O register with a shadow stack for nested component entry.
#[derive(Debug, Clone)]
pub struct ComponentPort {
    stack: Vec<ComponentId>,
    writes: u64,
    max_depth: usize,
}

impl Default for ComponentPort {
    fn default() -> Self {
        Self::new()
    }
}

impl ComponentPort {
    /// A port reading [`ComponentId::Idle`] until something executes.
    pub fn new() -> Self {
        Self {
            stack: vec![ComponentId::Idle],
            writes: 0,
            max_depth: 1,
        }
    }

    /// The ID currently visible on the register pins.
    pub fn current(&self) -> ComponentId {
        *self.stack.last().expect("port stack never empty")
    }

    /// The register value as raw pins, the way the DAQ's digital channel
    /// samples it. Glitched reads (fault injection) corrupt this byte; the
    /// DAQ decodes it with [`ComponentId::from_raw`] and buckets undecodable
    /// values under [`ComponentId::Spurious`].
    pub fn current_raw(&self) -> u8 {
        self.current().index() as u8
    }

    /// Enter a nested component (Kaffe-style entry call).
    pub fn push(&mut self, c: ComponentId) {
        self.stack.push(c);
        self.writes += 1;
        self.max_depth = self.max_depth.max(self.stack.len());
    }

    /// Exit the current component, restoring the enclosing one
    /// (Kaffe-style exit call).
    ///
    /// # Panics
    ///
    /// Panics on exit without a matching entry — an instrumentation bug the
    /// paper's methodology also had to guard against.
    pub fn pop(&mut self) -> ComponentId {
        assert!(
            self.stack.len() > 1,
            "component exit without matching entry"
        );
        let c = self.stack.pop().expect("checked non-empty");
        self.writes += 1;
        c
    }

    /// Scheduler-style flat write: replaces the *base* context (what runs
    /// when no nested component is active). Used by the Jikes-style thread
    /// scheduler when it switches threads.
    pub fn set_base(&mut self, c: ComponentId) {
        self.stack[0] = c;
        self.writes += 1;
    }

    /// Current nesting depth (1 = base context only).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Deepest nesting seen over the port's lifetime (1 = never nested).
    /// Every port write is also a candidate span boundary for the
    /// telemetry layer, so this bounds the span nesting a cell's trace
    /// can exhibit.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Number of register writes performed (each costs an I/O store in the
    /// runtime's perturbation accounting).
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_idle() {
        assert_eq!(ComponentPort::new().current(), ComponentId::Idle);
    }

    #[test]
    fn push_pop_nesting() {
        let mut p = ComponentPort::new();
        p.set_base(ComponentId::Application);
        p.push(ComponentId::ClassLoader);
        // Class loading can trigger GC: overlapping component calls.
        p.push(ComponentId::Gc);
        assert_eq!(p.current(), ComponentId::Gc);
        assert_eq!(p.pop(), ComponentId::Gc);
        assert_eq!(p.current(), ComponentId::ClassLoader);
        p.pop();
        assert_eq!(p.current(), ComponentId::Application);
        assert_eq!(p.depth(), 1);
        assert_eq!(p.max_depth(), 3);
        assert_eq!(p.writes(), 5);
    }

    #[test]
    fn raw_read_round_trips_through_decode() {
        let mut p = ComponentPort::new();
        p.set_base(ComponentId::Application);
        p.push(ComponentId::Gc);
        assert_eq!(
            ComponentId::from_raw(p.current_raw()),
            Some(ComponentId::Gc)
        );
    }

    #[test]
    fn base_write_does_not_disturb_nesting() {
        let mut p = ComponentPort::new();
        p.push(ComponentId::Gc);
        p.set_base(ComponentId::OptCompiler);
        assert_eq!(p.current(), ComponentId::Gc);
        p.pop();
        assert_eq!(p.current(), ComponentId::OptCompiler);
    }

    #[test]
    #[should_panic(expected = "without matching entry")]
    fn unbalanced_pop_panics() {
        ComponentPort::new().pop();
    }
}
