//! Virtual-machine component identifiers.

use serde::{Deserialize, Serialize};

/// The software components the instrumentation distinguishes.
///
/// Jikes-style runs use `BaseCompiler`/`OptCompiler` plus `Controller` and
/// `Scheduler`; Kaffe-style runs use `JitCompiler`. Everything that is not
/// an instrumented VM service is `Application` (the paper's "App"/mutator),
/// and `Idle` denotes nothing scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ComponentId {
    /// The running Java application (mutator).
    Application,
    /// Garbage collector.
    Gc,
    /// Class loader (including verification).
    ClassLoader,
    /// Jikes-style baseline compiler.
    BaseCompiler,
    /// Jikes-style optimizing compiler.
    OptCompiler,
    /// Kaffe-style just-in-time compiler.
    JitCompiler,
    /// Thread scheduler.
    Scheduler,
    /// Jikes-style adaptive-optimization controller thread.
    Controller,
    /// Nothing scheduled.
    Idle,
}

impl ComponentId {
    /// All identifiers, in display order.
    pub const ALL: [ComponentId; 9] = [
        ComponentId::Application,
        ComponentId::Gc,
        ComponentId::ClassLoader,
        ComponentId::BaseCompiler,
        ComponentId::OptCompiler,
        ComponentId::JitCompiler,
        ComponentId::Scheduler,
        ComponentId::Controller,
        ComponentId::Idle,
    ];

    /// Dense index for table storage.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Short label matching the paper's figure legends.
    pub const fn label(self) -> &'static str {
        match self {
            ComponentId::Application => "App",
            ComponentId::Gc => "GC",
            ComponentId::ClassLoader => "CL",
            ComponentId::BaseCompiler => "base_comp",
            ComponentId::OptCompiler => "opt_comp",
            ComponentId::JitCompiler => "JIT",
            ComponentId::Scheduler => "sched",
            ComponentId::Controller => "ctrl",
            ComponentId::Idle => "idle",
        }
    }

    /// Whether the component counts toward "JVM energy" in the paper's
    /// decomposition (everything the VM does on the application's behalf,
    /// as opposed to the application itself).
    pub const fn is_vm_service(self) -> bool {
        !matches!(self, ComponentId::Application | ComponentId::Idle)
    }
}

impl std::fmt::Display for ComponentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        for (i, c) in ComponentId::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn vm_service_classification() {
        assert!(ComponentId::Gc.is_vm_service());
        assert!(ComponentId::OptCompiler.is_vm_service());
        assert!(!ComponentId::Application.is_vm_service());
        assert!(!ComponentId::Idle.is_vm_service());
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(ComponentId::Gc.label(), "GC");
        assert_eq!(ComponentId::ClassLoader.label(), "CL");
        assert_eq!(ComponentId::OptCompiler.to_string(), "opt_comp");
    }
}
