//! Virtual-machine component identifiers.

use serde::{Deserialize, Serialize};

/// The software components the instrumentation distinguishes.
///
/// Jikes-style runs use `BaseCompiler`/`OptCompiler` plus `Controller` and
/// `Scheduler`; Kaffe-style runs use `JitCompiler`. Everything that is not
/// an instrumented VM service is `Application` (the paper's "App"/mutator),
/// and `Idle` denotes nothing scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ComponentId {
    /// The running Java application (mutator).
    Application,
    /// Garbage collector.
    Gc,
    /// Class loader (including verification).
    ClassLoader,
    /// Jikes-style baseline compiler.
    BaseCompiler,
    /// Jikes-style optimizing compiler.
    OptCompiler,
    /// Kaffe-style just-in-time compiler.
    JitCompiler,
    /// Thread scheduler.
    Scheduler,
    /// Jikes-style adaptive-optimization controller thread.
    Controller,
    /// Nothing scheduled.
    Idle,
    /// Attribution bucket for samples whose port read glitched to a value
    /// that names no component (fault injection / hardware noise). Appended
    /// last so the dense indices of the real components stay stable.
    Spurious,
}

impl ComponentId {
    /// All identifiers, in display order.
    pub const ALL: [ComponentId; 10] = [
        ComponentId::Application,
        ComponentId::Gc,
        ComponentId::ClassLoader,
        ComponentId::BaseCompiler,
        ComponentId::OptCompiler,
        ComponentId::JitCompiler,
        ComponentId::Scheduler,
        ComponentId::Controller,
        ComponentId::Idle,
        ComponentId::Spurious,
    ];

    /// Dense index for table storage.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Decode a raw register byte as the DAQ would: bytes that name a real
    /// component resolve to it (a *stale* read attributes to the wrong
    /// component); anything else is rejected as `None` and callers bucket
    /// the sample under [`ComponentId::Spurious`].
    pub const fn from_raw(raw: u8) -> Option<ComponentId> {
        // `Spurious` itself is not a valid wire value: it only exists as an
        // attribution bucket, so `ALL.len() - 1` excludes it.
        if (raw as usize) < Self::ALL.len() - 1 {
            Some(Self::ALL[raw as usize])
        } else {
            None
        }
    }

    /// Short label matching the paper's figure legends.
    pub const fn label(self) -> &'static str {
        match self {
            ComponentId::Application => "App",
            ComponentId::Gc => "GC",
            ComponentId::ClassLoader => "CL",
            ComponentId::BaseCompiler => "base_comp",
            ComponentId::OptCompiler => "opt_comp",
            ComponentId::JitCompiler => "JIT",
            ComponentId::Scheduler => "sched",
            ComponentId::Controller => "ctrl",
            ComponentId::Idle => "idle",
            ComponentId::Spurious => "spurious",
        }
    }

    /// Whether the component counts toward "JVM energy" in the paper's
    /// decomposition (everything the VM does on the application's behalf,
    /// as opposed to the application itself).
    pub const fn is_vm_service(self) -> bool {
        !matches!(
            self,
            ComponentId::Application | ComponentId::Idle | ComponentId::Spurious
        )
    }
}

impl std::fmt::Display for ComponentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        for (i, c) in ComponentId::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn vm_service_classification() {
        assert!(ComponentId::Gc.is_vm_service());
        assert!(ComponentId::OptCompiler.is_vm_service());
        assert!(!ComponentId::Application.is_vm_service());
        assert!(!ComponentId::Idle.is_vm_service());
    }

    #[test]
    fn raw_decoding_rejects_out_of_range_values() {
        assert_eq!(ComponentId::from_raw(0), Some(ComponentId::Application));
        assert_eq!(ComponentId::from_raw(8), Some(ComponentId::Idle));
        assert_eq!(
            ComponentId::from_raw(9),
            None,
            "Spurious is not a wire value"
        );
        assert_eq!(ComponentId::from_raw(0xFF), None);
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(ComponentId::Gc.label(), "GC");
        assert_eq!(ComponentId::ClassLoader.label(), "CL");
        assert_eq!(ComponentId::OptCompiler.to_string(), "opt_comp");
    }
}
