//! Power-model calibration constants.
//!
//! All free parameters of the activity-based power model live here, fit to
//! the anchor measurements the paper reports:
//!
//! | anchor | paper value | section |
//! |---|---|---|
//! | P6 idle CPU power | 4.5 W | IV-D |
//! | P6 idle DRAM power | 250 mW | IV-D |
//! | application power at IPC ≈ 0.8 | ≈ 13–14 W | VI-C |
//! | GenCopy GC power at IPC ≈ 0.55, 54 % L2 miss | 12.8 W | VI-C |
//! | MarkSweep GC power | 11.7 W | VI-C |
//! | PXA255 idle CPU power | ≈ 70 mW | IV-D |
//! | PXA255 idle DRAM power | ≈ 5 mW | IV-D |
//! | PXA255 GC power (most power-hungry component) | ≈ 270 mW | VI-E |
//! | memory energy share of total | 5–8 % | VI-B |
//!
//! The model form is
//! `P_cpu = idle + c_ipc · IPC + c_fp · (FP ops/cycle) + c_mem · (DRAM accesses/µs)`,
//! the standard IPC-linear runtime power estimation the paper itself cites
//! (Isci & Martonosi; Joseph & Martonosi; Bellosa's event-driven
//! accounting).

use serde::{Deserialize, Serialize};
use vmprobe_platform::PlatformKind;

/// Calibrated coefficients for one platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerCoeffs {
    /// CPU idle (static + clock-tree) power in watts.
    pub cpu_idle_w: f64,
    /// Watts per unit of IPC.
    pub c_ipc: f64,
    /// Watts per FP operation per cycle (FP units are the hungriest blocks;
    /// raises peaks for FP-dense windows like `_222_mpegaudio`).
    pub c_fp: f64,
    /// Watts per DRAM access per microsecond (bus + pad power on the CPU
    /// rail).
    pub c_mem: f64,
    /// DRAM idle (refresh + standby) power in watts.
    pub dram_idle_w: f64,
    /// DRAM energy per access in joules (activate/precharge + burst).
    pub dram_energy_per_access_j: f64,
}

impl PowerCoeffs {
    /// Calibration for `kind`; values justified in the module docs.
    pub fn of(kind: PlatformKind) -> Self {
        match kind {
            PlatformKind::PentiumM => Self {
                cpu_idle_w: 4.5,
                c_ipc: 10.8,
                c_fp: 9.0,
                c_mem: 0.12,
                dram_idle_w: 0.25,
                dram_energy_per_access_j: 45e-9,
            },
            PlatformKind::Pxa255 => Self {
                cpu_idle_w: 0.070,
                c_ipc: 0.42,
                c_fp: 0.15,
                c_mem: 0.004,
                dram_idle_w: 0.005,
                dram_energy_per_access_j: 8e-9,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_anchors_match_paper() {
        let p6 = PowerCoeffs::of(PlatformKind::PentiumM);
        assert_eq!(p6.cpu_idle_w, 4.5);
        assert_eq!(p6.dram_idle_w, 0.25);
        let xs = PowerCoeffs::of(PlatformKind::Pxa255);
        assert!((xs.cpu_idle_w - 0.070).abs() < 1e-9);
        assert!((xs.dram_idle_w - 0.005).abs() < 1e-9);
    }

    #[test]
    fn p6_dynamic_range_is_plausible() {
        // At IPC 1.0 with some FP the model should stay under the Pentium M
        // thermal design power (~24.5 W).
        let c = PowerCoeffs::of(PlatformKind::PentiumM);
        let p = c.cpu_idle_w + c.c_ipc * 1.3 + c.c_fp * 0.3 + c.c_mem * 20.0;
        assert!(p < 24.5, "max modeled power {p} exceeds TDP");
    }
}
