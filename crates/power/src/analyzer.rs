//! Offline analysis: match the power trace with the performance trace.
//!
//! The right-hand box of the paper's Figure 4 — per-component energy and
//! power from the DAQ joined with per-component IPC and cache statistics
//! from the performance monitor, after the run finishes.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use vmprobe_faults::FaultStats;
use vmprobe_platform::{Machine, PlatformKind};

use crate::{ComponentId, Daq, EnergyDelay, Joules, PerfMonitor, Seconds, Watts};

/// Per-component measurement summary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentProfile {
    /// Wall-clock time attributed.
    pub time: Seconds,
    /// CPU energy attributed.
    pub energy: Joules,
    /// DRAM energy attributed.
    pub mem_energy: Joules,
    /// Average CPU power while running.
    pub avg_power: Watts,
    /// Peak single-window CPU power.
    pub peak_power: Watts,
    /// Instructions retired (from the perf trace).
    pub instructions: u64,
    /// Instructions per cycle (from the perf trace).
    pub ipc: f64,
    /// L2 miss rate (from the perf trace; zero on platforms without L2).
    pub l2_miss_rate: f64,
    /// Number of 40 µs power samples attributed.
    pub samples: u64,
}

/// A complete per-run measurement report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Which platform the run executed on.
    pub platform: PlatformKind,
    /// Profiles for every component that received at least one sample.
    pub components: BTreeMap<ComponentId, ComponentProfile>,
    /// Total run duration.
    pub duration: Seconds,
    /// Total CPU energy.
    pub cpu_energy: Joules,
    /// Total DRAM energy.
    pub mem_energy: Joules,
    /// CPU + DRAM energy.
    pub total_energy: Joules,
    /// Energy-delay product: total energy × duration.
    pub edp: EnergyDelay,
    /// CPU + DRAM energy a fault-free measurement would have reported
    /// (equals `total_energy` when nothing was injected).
    pub clean_total_energy: Joules,
    /// Ledger of injected measurement faults; `faults.energy_error_bound_j()`
    /// bounds `|total_energy - clean_total_energy|`.
    pub faults: FaultStats,
    /// Probe-cost ledger: costs charged in non-transparent measurement mode
    /// plus the transition-window misattribution exposure (recorded in
    /// every mode). Defaults to all-zero for reports predating the field.
    #[serde(default)]
    pub probe: crate::ProbeStats,
}

impl Report {
    /// Fraction of CPU energy attributed to `c` (0 when none).
    pub fn energy_fraction(&self, c: ComponentId) -> f64 {
        if self.cpu_energy.joules() <= 0.0 {
            return 0.0;
        }
        self.components
            .get(&c)
            .map_or(0.0, |p| p.energy.joules() / self.cpu_energy.joules())
    }

    /// Fraction of CPU energy consumed by VM services — GC, class loader,
    /// compilers, scheduler and controller. This is the paper's "JVM
    /// energy", reported as high as 60% for `_213_javac` at a 32 MB heap.
    pub fn jvm_energy_fraction(&self) -> f64 {
        ComponentId::ALL
            .iter()
            .filter(|c| c.is_vm_service())
            .map(|&c| self.energy_fraction(c))
            .sum()
    }

    /// DRAM energy as a fraction of total (CPU + DRAM) energy — the paper
    /// reports 5–8 % depending on suite.
    pub fn mem_energy_fraction(&self) -> f64 {
        if self.total_energy.joules() <= 0.0 {
            return 0.0;
        }
        self.mem_energy.joules() / self.total_energy.joules()
    }

    /// Profile for `c`, if it ever ran.
    pub fn component(&self, c: ComponentId) -> Option<&ComponentProfile> {
        self.components.get(&c)
    }

    /// Absolute deviation of the measured total energy from the clean
    /// total, in joules. Bounded by `self.faults.energy_error_bound_j()`.
    pub fn energy_deviation_j(&self) -> f64 {
        (self.total_energy.joules() - self.clean_total_energy.joules()).abs()
    }
}

/// Join the DAQ and performance traces into a [`Report`].
pub fn analyze(daq: &Daq, perf: &PerfMonitor, machine: &Machine) -> Report {
    let dr = daq.report();
    let agg = perf.aggregate();

    let mut components = BTreeMap::new();
    for c in ComponentId::ALL {
        let p = dr.component(c);
        let d = &agg[c.index()];
        if p.samples == 0 && d.instructions == 0 {
            continue;
        }
        components.insert(
            c,
            ComponentProfile {
                time: p.time,
                energy: p.energy,
                mem_energy: p.mem_energy,
                avg_power: p.avg_power(),
                peak_power: p.peak,
                instructions: d.instructions,
                ipc: d.ipc(),
                l2_miss_rate: d.l2_miss_rate(),
                samples: p.samples,
            },
        );
    }

    let duration = Seconds::new(machine.now());
    let total_energy = dr.cpu_energy + dr.mem_energy;
    let mut faults = dr.faults;
    faults.wraps_unwrapped += perf.wraps_detected();
    Report {
        platform: machine.platform(),
        components,
        duration,
        cpu_energy: dr.cpu_energy,
        mem_energy: dr.mem_energy,
        total_energy,
        edp: total_energy * duration,
        clean_total_energy: dr.clean_cpu_energy + dr.clean_mem_energy,
        faults,
        // Transition exposure comes from the DAQ; the probe *costs* are
        // known only to the metering adapter, which overwrites this ledger
        // after analysis (see `Meter::probe_stats`).
        probe: crate::ProbeStats {
            transition_windows: dr.transition_windows,
            transition_energy_j: dr.transition_energy_j,
            ..crate::ProbeStats::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmprobe_platform::HEAP_BASE;

    fn drive(
        m: &mut Machine,
        daq: &mut Daq,
        perf: &mut PerfMonitor,
        c: ComponentId,
        until_s: f64,
        memory_heavy: bool,
    ) {
        let mut i = 0u64;
        while m.now() < until_s {
            m.int_ops(12);
            if memory_heavy {
                // Stream line-by-line through 32 MB (far beyond L2): every
                // access is a compulsory or capacity miss.
                m.load(HEAP_BASE + (i * 64) % (32 << 20));
            } else {
                // 256 KB working set: misses L1 but lives in the 1 MB L2,
                // so the L2 miss rate settles low after the first pass.
                m.load(HEAP_BASE + (i * 64) % (256 << 10));
            }
            i += 1;
            daq.observe(&m.snapshot(), c);
            perf.observe(&m.snapshot(), c);
        }
    }

    fn measured_run() -> Report {
        let mut m = Machine::new(PlatformKind::PentiumM);
        let mut daq = Daq::new(PlatformKind::PentiumM);
        let mut perf = PerfMonitor::new(PlatformKind::PentiumM);
        drive(
            &mut m,
            &mut daq,
            &mut perf,
            ComponentId::Application,
            8e-3,
            false,
        );
        drive(&mut m, &mut daq, &mut perf, ComponentId::Gc, 12e-3, true);
        drive(
            &mut m,
            &mut daq,
            &mut perf,
            ComponentId::Application,
            20e-3,
            false,
        );
        analyze(&daq, &perf, &m)
    }

    #[test]
    fn fractions_sum_to_one_over_active_components() {
        let r = measured_run();
        let total: f64 = ComponentId::ALL.iter().map(|&c| r.energy_fraction(c)).sum();
        assert!((total - 1.0).abs() < 1e-9, "fractions sum to {total}");
    }

    #[test]
    fn gc_has_lower_ipc_higher_miss_rate_and_lower_power_than_app() {
        let r = measured_run();
        let app = r.component(ComponentId::Application).unwrap();
        let gc = r.component(ComponentId::Gc).unwrap();
        assert!(gc.ipc < app.ipc, "gc ipc {} vs app {}", gc.ipc, app.ipc);
        assert!(gc.l2_miss_rate > app.l2_miss_rate);
        assert!(
            gc.avg_power < app.avg_power,
            "gc {} vs app {}",
            gc.avg_power,
            app.avg_power
        );
    }

    #[test]
    fn jvm_fraction_counts_only_services() {
        let r = measured_run();
        let f = r.jvm_energy_fraction();
        assert!(f > 0.0 && f < 1.0);
        assert!((f - r.energy_fraction(ComponentId::Gc)).abs() < 1e-9);
    }

    #[test]
    fn edp_is_energy_times_duration() {
        let r = measured_run();
        let expect = r.total_energy.joules() * r.duration.seconds();
        assert!((r.edp.joule_seconds() - expect).abs() < 1e-12);
        assert!(r.mem_energy_fraction() > 0.0 && r.mem_energy_fraction() < 0.5);
    }
}
