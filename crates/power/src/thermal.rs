//! Lumped-RC package thermal model with emergency throttling.
//!
//! Reproduces the paper's Figure 1 experiment: a 1.6 GHz Pentium M running
//! `_222_mpegaudio` repeatedly sits near 60 °C with its fan enabled; with
//! the fan disabled the package climbs to 99 °C in about 240 s, at which
//! point the processor's thermal emergency response reduces the clock duty
//! cycle to 50 %, proportionally reducing performance (and power) until the
//! die cools below the release threshold.
//!
//! The model is the standard first-order thermal circuit
//! `C·dT/dt = P − (T − T_amb)/R`, with the fan toggling the convection
//! resistance `R`.

use serde::{Deserialize, Serialize};

use crate::{Celsius, Seconds, Watts};

/// Thermal-circuit parameters.
///
/// Defaults are calibrated to Figure 1: steady ~60 °C at ~13 W with the fan
/// on; trip at 99 °C after ~240 s with the fan off.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalConfig {
    /// Ambient temperature.
    pub ambient_c: f64,
    /// Junction-to-ambient resistance with the fan running, in °C/W.
    pub r_fan_on: f64,
    /// Junction-to-ambient resistance with the fan failed, in °C/W.
    pub r_fan_off: f64,
    /// Thermal capacitance in J/°C.
    pub capacitance: f64,
    /// Emergency-throttle trip temperature.
    pub trip_c: f64,
    /// Temperature below which throttling releases.
    pub release_c: f64,
    /// Clock duty cycle while throttled.
    pub throttle_duty: f64,
}

impl Default for ThermalConfig {
    fn default() -> Self {
        Self {
            ambient_c: 25.0,
            r_fan_on: 2.7,
            r_fan_off: 7.0,
            capacitance: 28.0,
            trip_c: 99.0,
            release_c: 94.0,
            throttle_duty: 0.5,
        }
    }
}

/// A point on the thermal trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalState {
    /// Elapsed time.
    pub t: Seconds,
    /// Die temperature.
    pub temp: Celsius,
    /// Power applied during the step (after any duty-cycle reduction).
    pub power: Watts,
    /// Whether the emergency throttle is engaged.
    pub throttled: bool,
}

/// The thermal simulator.
#[derive(Debug, Clone)]
pub struct ThermalSim {
    cfg: ThermalConfig,
    fan_on: bool,
    temp_c: f64,
    time_s: f64,
    throttled: bool,
}

impl ThermalSim {
    /// Start at ambient temperature.
    pub fn new(cfg: ThermalConfig, fan_on: bool) -> Self {
        Self {
            temp_c: cfg.ambient_c,
            cfg,
            fan_on,
            time_s: 0.0,
            throttled: false,
        }
    }

    /// Toggle the fan mid-run (the paper's fan-failure scenario).
    pub fn set_fan(&mut self, on: bool) {
        self.fan_on = on;
    }

    /// Current die temperature.
    pub fn temperature(&self) -> Celsius {
        Celsius::new(self.temp_c)
    }

    /// Effective clock duty cycle: 1.0 normally, `throttle_duty` while the
    /// emergency response is active. Callers scale delivered performance
    /// (and active power) by this factor.
    pub fn duty(&self) -> f64 {
        if self.throttled {
            self.cfg.throttle_duty
        } else {
            1.0
        }
    }

    /// Whether the emergency throttle is engaged.
    pub fn is_throttled(&self) -> bool {
        self.throttled
    }

    /// Advance the model by `dt` under `chip_power` (the power the chip
    /// *wants* to draw; the model applies the duty cycle when throttled,
    /// with `idle_power` drawn during duty-off periods).
    pub fn step(&mut self, chip_power: Watts, idle_power: Watts, dt: Seconds) -> ThermalState {
        let duty = self.duty();
        let p = chip_power.watts() * duty + idle_power.watts() * (1.0 - duty);
        let r = if self.fan_on {
            self.cfg.r_fan_on
        } else {
            self.cfg.r_fan_off
        };
        let dt_s = dt.seconds();
        let d_temp = (p - (self.temp_c - self.cfg.ambient_c) / r) / self.cfg.capacitance * dt_s;
        self.temp_c += d_temp;
        self.time_s += dt_s;

        if self.temp_c >= self.cfg.trip_c {
            self.throttled = true;
        } else if self.temp_c <= self.cfg.release_c {
            self.throttled = false;
        }

        ThermalState {
            t: Seconds::new(self.time_s),
            temp: Celsius::new(self.temp_c),
            power: Watts::new(p),
            throttled: self.throttled,
        }
    }

    /// Steady-state temperature under constant `power` with the current fan
    /// setting (no throttling considered).
    pub fn steady_state(&self, power: Watts) -> Celsius {
        let r = if self.fan_on {
            self.cfg.r_fan_on
        } else {
            self.cfg.r_fan_off
        };
        Celsius::new(self.cfg.ambient_c + power.watts() * r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P_RUN: Watts = Watts::new(13.0);
    const P_IDLE: Watts = Watts::new(4.5);

    fn run(sim: &mut ThermalSim, seconds: f64) -> Vec<ThermalState> {
        let dt = Seconds::new(0.1);
        (0..(seconds / 0.1) as usize)
            .map(|_| sim.step(P_RUN, P_IDLE, dt))
            .collect()
    }

    #[test]
    fn fan_on_settles_near_sixty_celsius() {
        let mut sim = ThermalSim::new(ThermalConfig::default(), true);
        let trace = run(&mut sim, 600.0);
        let last = trace.last().unwrap();
        assert!(
            (55.0..65.0).contains(&last.temp.celsius()),
            "steady temp {} should be near 60C",
            last.temp
        );
        assert!(!last.throttled);
        assert!((sim.steady_state(P_RUN).celsius() - 60.1).abs() < 0.5);
    }

    #[test]
    fn fan_off_trips_throttle_around_four_minutes() {
        let mut sim = ThermalSim::new(ThermalConfig::default(), true);
        run(&mut sim, 600.0); // reach fan-on steady state (~60C)
        sim.set_fan(false);
        let dt = Seconds::new(0.1);
        let mut trip_time = None;
        for i in 0..10_000 {
            let s = sim.step(P_RUN, P_IDLE, dt);
            if s.throttled {
                trip_time = Some(i as f64 * 0.1);
                break;
            }
        }
        let t = trip_time.expect("should trip");
        assert!(
            (120.0..400.0).contains(&t),
            "trip after {t}s; paper reports ~240s"
        );
    }

    #[test]
    fn throttling_caps_temperature() {
        let mut sim = ThermalSim::new(ThermalConfig::default(), false);
        let trace = run(&mut sim, 2000.0);
        let max_t = trace.iter().map(|s| s.temp.celsius()).fold(0.0, f64::max);
        assert!(max_t < 101.0, "throttle must cap temperature, saw {max_t}");
        assert!(trace.iter().any(|s| s.throttled));
        // While throttled, applied power drops to the duty-weighted mix
        // (the first tripping step still ran at full duty, so look for any
        // subsequent throttled step).
        let duty_mix = 13.0 * 0.5 + 4.5 * 0.5;
        assert!(trace
            .iter()
            .any(|s| s.throttled && (s.power.watts() - duty_mix).abs() < 1e-9));
    }

    #[test]
    fn duty_toggles_with_hysteresis() {
        let mut sim = ThermalSim::new(ThermalConfig::default(), false);
        assert_eq!(sim.duty(), 1.0);
        run(&mut sim, 2000.0);
        // Long fan-off run oscillates between trip and release.
        assert!(sim.temperature().celsius() > 90.0);
    }
}
