//! The digital acquisition system: 40 µs power sampling with component
//! attribution.

use serde::{Deserialize, Serialize};
use vmprobe_faults::{DetRng, FaultPlan, FaultStats};
use vmprobe_platform::{HpmSnapshot, HpmUnwrapper, PlatformKind};

use crate::{ComponentId, Joules, PowerModel, Seconds, Watts};

/// The paper's DAQ sampling period: 40 µs, "the fastest sampling rate of
/// our digital acquisition system based on the number of sampling channels
/// used" (Section IV-D).
pub const DAQ_PERIOD_S: f64 = 40e-6;

/// Convert a wall-clock sampling period to whole cycles at `freq_hz`,
/// rounded to nearest and clamped to at least one cycle.
///
/// Truncation here is not harmless: at non-integral DVFS clocks the lost
/// fraction accumulates as sampling-rate drift, and at very low clocks
/// `period_s * freq_hz < 1` truncates to a zero-period busy-sample loop.
pub(crate) fn period_cycles_at(period_s: f64, freq_hz: f64) -> u64 {
    let cycles = (period_s * freq_hz).round();
    if cycles < 1.0 {
        1
    } else {
        cycles as u64
    }
}

/// One recorded sample (kept only when tracing is enabled).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSample {
    /// Simulated time of the sample in seconds.
    pub t: f64,
    /// CPU power over the preceding window, in watts.
    pub cpu_w: f64,
    /// DRAM power over the preceding window, in watts.
    pub mem_w: f64,
    /// Component ID visible on the port at the sample instant.
    pub component: ComponentId,
}

/// Accumulated measurements for one component.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ComponentPower {
    /// CPU energy attributed to the component.
    pub energy: Joules,
    /// DRAM energy attributed to the component.
    pub mem_energy: Joules,
    /// Wall-clock time attributed to the component.
    pub time: Seconds,
    /// Number of 40 µs samples attributed.
    pub samples: u64,
    /// Highest single-window CPU power observed.
    pub peak: Watts,
    /// Highest single-window DRAM power observed.
    pub peak_mem: Watts,
}

impl ComponentPower {
    /// Average CPU power while this component ran (zero if it never ran).
    pub fn avg_power(&self) -> Watts {
        if self.time.seconds() <= 0.0 {
            Watts::ZERO
        } else {
            self.energy / self.time
        }
    }
}

/// Aggregated DAQ output for a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DaqReport {
    /// Per-component accumulators, indexed by [`ComponentId::index`].
    pub per_component: Vec<ComponentPower>,
    /// Total CPU energy.
    pub cpu_energy: Joules,
    /// Total DRAM energy.
    pub mem_energy: Joules,
    /// Total sampled time.
    pub sampled_time: Seconds,
    /// CPU energy a fault-free DAQ would have measured (equals
    /// `cpu_energy` when no faults are injected).
    pub clean_cpu_energy: Joules,
    /// DRAM energy a fault-free DAQ would have measured.
    pub clean_mem_energy: Joules,
    /// Ledger of injected faults and the resulting error bound.
    pub faults: FaultStats,
    /// Sampling windows that contained at least one component-port write
    /// (the whole window is attributed to whoever holds the port at the
    /// sample instant, so these windows bound the quantization error).
    #[serde(default)]
    pub transition_windows: u64,
    /// Clean (CPU + DRAM) energy of those transition windows, in joules.
    #[serde(default)]
    pub transition_energy_j: f64,
}

impl DaqReport {
    /// Accumulator for one component.
    pub fn component(&self, c: ComponentId) -> &ComponentPower {
        &self.per_component[c.index()]
    }

    /// Absolute deviation of the measured total (cpu + mem) energy from the
    /// clean total. The degradation contract guarantees this never exceeds
    /// [`FaultStats::energy_error_bound_j`].
    pub fn energy_deviation_j(&self) -> f64 {
        let measured = self.cpu_energy.joules() + self.mem_energy.joules();
        let clean = self.clean_cpu_energy.joules() + self.clean_mem_energy.joules();
        (measured - clean).abs()
    }
}

/// The sampling DAQ.
///
/// The measurement driver calls [`Daq::observe`] after every charged unit of
/// work; the call is a no-op (one integer compare) until the machine's cycle
/// counter crosses the next 40 µs boundary, at which point the window's HPM
/// delta is converted to power and attributed to the component currently on
/// the port — reproducing the paper's quantization: a component switch
/// *inside* the window is invisible, and the whole window goes to whoever
/// holds the port at sampling time.
#[derive(Debug, Clone)]
pub struct Daq {
    model: PowerModel,
    freq_hz: f64,
    /// Sampling period in wall-clock seconds (the paper's 40 µs unless an
    /// observer-effect sweep retargets it).
    period_s: f64,
    period_cycles: u64,
    /// Exact (fractional) cycles per 40 µs window at the current clock.
    period_cycles_f: f64,
    /// Fractional cycles owed to the schedule: each window steps by a whole
    /// number of cycles, and the rounding remainder is carried forward so
    /// the boundaries track the 40 µs wall-clock grid without cumulative
    /// drift at non-integral clocks.
    carry: f64,
    next_due: u64,
    last: HpmSnapshot,
    /// Wall-clock time of the previous sample (spans clock changes, where
    /// a raw cycle delta no longer converts at a single frequency).
    last_t_s: f64,
    /// Wall-clock seconds accumulated before the most recent clock change.
    time_base_s: f64,
    /// Cycle count at the most recent clock change.
    cycle_base: u64,
    acc: Vec<ComponentPower>,
    trace: Option<Vec<PowerSample>>,
    faults: FaultInjector,
    /// Component-port writes since the last committed sample. Non-zero at a
    /// sample instant means the window contained a transition.
    pending_port_writes: u64,
    /// Windows that contained at least one port write.
    transition_windows: u64,
    /// Clean (CPU + DRAM) energy of those windows, in joules.
    transition_energy_j: f64,
}

/// Per-DAQ fault-injection state: the plan, the derived RNG streams, the
/// unwrapper for 32-bit counter reads, the clean-energy ground truth, and
/// the ledger that makes the degradation contract checkable.
#[derive(Debug, Clone)]
struct FaultInjector {
    plan: FaultPlan,
    /// Drives drop/dup/noise decisions.
    rng: DetRng,
    /// Independent stream for port-read corruption, so enabling one fault
    /// class never shifts another class's sequence.
    port_rng: DetRng,
    unwrapper: HpmUnwrapper,
    stats: FaultStats,
    clean_cpu_energy: Joules,
    clean_mem_energy: Joules,
}

impl FaultInjector {
    fn new(plan: FaultPlan) -> Self {
        let root = DetRng::new(plan.seed);
        FaultInjector {
            plan,
            rng: root.derive("daq"),
            port_rng: root.derive("port"),
            unwrapper: HpmUnwrapper::new(),
            stats: FaultStats::default(),
            clean_cpu_energy: Joules::ZERO,
            clean_mem_energy: Joules::ZERO,
        }
    }
}

impl Daq {
    /// DAQ for `kind` with aggregation only (no per-sample trace).
    pub fn new(kind: PlatformKind) -> Self {
        Self::build(kind, false)
    }

    /// DAQ that additionally records every sample (for time-series figures
    /// like the thermal experiment).
    pub fn with_trace(kind: PlatformKind) -> Self {
        Self::build(kind, true)
    }

    fn build(kind: PlatformKind, trace: bool) -> Self {
        let freq_hz = vmprobe_platform::CpuSpec::of(kind).freq_hz;
        Self::with_model(PowerModel::new(kind), freq_hz, trace)
    }

    /// DAQ with an explicit power model and clock (DVFS-scaled operation).
    pub fn with_model(model: PowerModel, freq_hz: f64, trace: bool) -> Self {
        let period_cycles = period_cycles_at(DAQ_PERIOD_S, freq_hz);
        Self {
            model,
            freq_hz,
            period_s: DAQ_PERIOD_S,
            period_cycles,
            period_cycles_f: DAQ_PERIOD_S * freq_hz,
            carry: 0.0,
            next_due: period_cycles,
            last: HpmSnapshot::default(),
            last_t_s: 0.0,
            time_base_s: 0.0,
            cycle_base: 0,
            acc: vec![ComponentPower::default(); ComponentId::ALL.len()],
            trace: trace.then(Vec::new),
            faults: FaultInjector::new(FaultPlan::none()),
            pending_port_writes: 0,
            transition_windows: 0,
            transition_energy_j: 0.0,
        }
    }

    /// Retarget the sampler to an explicit wall-clock period (an
    /// observer-effect sweep point). Must be called before any work is
    /// charged; the schedule restarts from cycle zero at the new period.
    /// The classic rig never calls this, so 40 µs runs keep the exact
    /// constructor-built schedule bit-for-bit.
    #[must_use]
    pub fn with_period(mut self, period_s: f64) -> Self {
        debug_assert!(period_s > 0.0, "sampling period must be positive");
        self.period_s = period_s;
        self.period_cycles = period_cycles_at(period_s, self.freq_hz);
        self.period_cycles_f = period_s * self.freq_hz;
        self.carry = 0.0;
        self.next_due = self.period_cycles;
        self
    }

    /// The sampling period in wall-clock seconds.
    pub fn period_s(&self) -> f64 {
        self.period_s
    }

    /// Retarget the sampler to a new clock, effective at `now_cycles`.
    ///
    /// The DAQ is wall-clock hardware: it fires every 40 µs of real time no
    /// matter what the CPU clock does. A DVFS transition or a thermal
    /// 50 %-duty throttle changes how many *cycles* fit in 40 µs, so the
    /// cycle period is recomputed and the already-scheduled next sample is
    /// rescheduled to fire after the same remaining *wall-clock* time at
    /// the new rate. Without this, a throttled run silently samples at
    /// 80 µs of wall time — the bug behind the Fig-1 regression test.
    pub fn set_clock(&mut self, now_cycles: u64, freq_hz: f64) {
        debug_assert!(freq_hz > 0.0, "clock must be positive");
        let remaining_s = self.next_due.saturating_sub(now_cycles) as f64 / self.freq_hz;
        self.time_base_s = self.wall_time_s(now_cycles);
        self.cycle_base = now_cycles;
        self.freq_hz = freq_hz;
        self.period_cycles = period_cycles_at(self.period_s, freq_hz);
        self.period_cycles_f = self.period_s * freq_hz;
        self.carry = 0.0;
        let remaining_cycles = (remaining_s * freq_hz).round() as u64;
        self.next_due = now_cycles + remaining_cycles;
    }

    /// The clock the sampler currently converts cycles with.
    pub fn freq_hz(&self) -> f64 {
        self.freq_hz
    }

    /// Wall-clock seconds for a cycle count, piecewise across clock
    /// changes. With no change this reduces to `cycles / freq_hz` exactly
    /// (`0.0 + x == x`), so fixed-clock runs are bit-identical to the
    /// single-segment conversion.
    fn wall_time_s(&self, cycles: u64) -> f64 {
        self.time_base_s + (cycles - self.cycle_base) as f64 / self.freq_hz
    }

    /// Attach a fault plan. The injected sequence is fully determined by
    /// `plan.seed`, so faulted runs replay bit-identically.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = FaultInjector::new(plan);
        self
    }

    /// Cycle count at which the next sample is due (for cheap polling).
    pub fn next_due_cycles(&self) -> u64 {
        self.next_due
    }

    /// Record that the component port was written. Called on *every* port
    /// write in every mode; it mutates only DAQ-side counters (never the
    /// machine), so transparent trajectories stay bit-identical while the
    /// sampler learns which windows contained a transition.
    pub fn note_port_write(&mut self) {
        self.pending_port_writes += 1;
    }

    /// Windows that contained at least one component transition so far.
    pub fn transition_windows(&self) -> u64 {
        self.transition_windows
    }

    /// Clean energy of those transition windows so far, in joules.
    pub fn transition_energy_j(&self) -> f64 {
        self.transition_energy_j
    }

    /// Take a sample if one is due. `snap` must be monotonically
    /// non-decreasing across calls.
    ///
    /// With a [`FaultPlan`] attached, this is where the measurement-path
    /// faults land, in hardware order: the counter file is read (possibly
    /// through a wrapping 32-bit view and unwrapped), the component register
    /// is read (possibly glitching to a stale or invalid ID), the window's
    /// power is computed (possibly scaled by calibration drift and bounded
    /// sensor noise), and the sample is committed (possibly dropped or
    /// double-clocked). Every perturbation's absolute energy effect is
    /// logged in [`FaultStats`], so the report's measured totals deviate
    /// from its clean totals by at most `faults.energy_error_bound_j()`.
    pub fn observe(&mut self, snap: &HpmSnapshot, component: ComponentId) {
        if snap.cycles < self.next_due {
            return;
        }
        let f = &mut self.faults;
        // 32-bit counter-file read + offline unwrap (exact at 40 µs windows).
        let snap = &if f.plan.wrap32 {
            let rebuilt = f.unwrapper.unwrap_snapshot(&snap.wrapped32());
            f.stats.wraps_unwrapped = f.unwrapper.wraps_detected();
            rebuilt
        } else {
            *snap
        };
        let delta = snap.delta_since(&self.last);
        // Field-level form of `wall_time_s` (a method call would conflict
        // with the live borrow of `self.faults`).
        let t_now = self.time_base_s + (snap.cycles - self.cycle_base) as f64 / self.freq_hz;
        // A single cycle delta converts at one frequency only while no
        // clock change landed inside the window; otherwise the wall-clock
        // anchors carry the piecewise conversion.
        let dt = if self.last.cycles >= self.cycle_base {
            delta.cycles as f64 / self.freq_hz
        } else {
            t_now - self.last_t_s
        };
        let cpu = self.model.cpu_power(&delta, dt);
        let mem = self.model.dram_power(&delta, dt);
        let dt_s = Seconds::new(dt);
        // Window consumed regardless of the sample's fate below. The next
        // boundary steps by the exact fractional period plus the carried
        // remainder, so the schedule tracks the 40 µs wall-clock grid with
        // no cumulative drift at non-integral clocks.
        self.last = *snap;
        self.last_t_s = t_now;
        let step_f = self.period_cycles_f + self.carry;
        if step_f < 1.0 {
            // Degenerate clock: one sample per cycle is the densest the
            // schedule can get; owing fractional debt would wind the carry
            // toward -inf, so it resets.
            self.carry = 0.0;
            self.next_due = snap.cycles + 1;
        } else {
            let step = step_f.round();
            self.carry = step_f - step;
            self.next_due = snap.cycles + step as u64;
        }

        // Fault-free ground truth for this due window.
        let clean_cpu_j = cpu.watts() * dt;
        let clean_mem_j = mem.watts() * dt;
        f.stats.samples_total += 1;
        f.clean_cpu_energy += Joules::new(clean_cpu_j);
        f.clean_mem_energy += Joules::new(clean_mem_j);

        // Transition exposure: a window with at least one port write is
        // attributed wholesale to whoever holds the port now, so its whole
        // clean energy bounds the quantization (mis)attribution error.
        if self.pending_port_writes > 0 {
            self.transition_windows += 1;
            self.transition_energy_j += clean_cpu_j + clean_mem_j;
            self.pending_port_writes = 0;
        }

        // Missed trigger: the window's energy is lost entirely.
        if f.rng.chance(f.plan.drop_sample) {
            f.stats.samples_dropped += 1;
            f.stats.dropped_energy_j += clean_cpu_j + clean_mem_j;
            return;
        }

        // Component-register read: may glitch to a stale or invalid ID.
        let target = if f.port_rng.chance(f.plan.port_glitch) {
            f.stats.port_glitches += 1;
            let raw = (f.port_rng.next_u64() & 0xFF) as u8;
            ComponentId::from_raw(raw).unwrap_or(ComponentId::Spurious)
        } else {
            component
        };

        // Calibration drift (monotone in time) and bounded sensor noise
        // scale the measured power; the exact deviation each introduces is
        // logged so the error bound is an identity, not an estimate.
        let drift_m = 1.0 + f.plan.calib_drift * t_now;
        let noise = if f.plan.noise_sigma > 0.0 {
            (f.plan.noise_sigma * f.rng.gauss())
                .clamp(-3.0 * f.plan.noise_sigma, 3.0 * f.plan.noise_sigma)
        } else {
            0.0
        };
        let factor = (drift_m * (1.0 + noise)).max(0.0);
        let meas_cpu = Watts::new(cpu.watts() * factor);
        let meas_mem = Watts::new(mem.watts() * factor);
        let meas_cpu_j = meas_cpu.watts() * dt;
        let meas_mem_j = meas_mem.watts() * dt;
        let clean_j = clean_cpu_j + clean_mem_j;
        let drift_delta = (drift_m - 1.0) * clean_j;
        f.stats.drift_abs_j += drift_delta.abs();
        f.stats.noise_abs_j += ((meas_cpu_j + meas_mem_j) - clean_j - drift_delta).abs();
        if target != component {
            f.stats.misattributed_energy_j += meas_cpu_j + meas_mem_j;
        }

        // Double-clocked samples commit twice.
        let commits = if f.rng.chance(f.plan.dup_sample) {
            f.stats.samples_duplicated += 1;
            f.stats.duplicated_energy_j += meas_cpu_j + meas_mem_j;
            2
        } else {
            1
        };

        let a = &mut self.acc[target.index()];
        for _ in 0..commits {
            a.energy += meas_cpu * dt_s;
            a.mem_energy += meas_mem * dt_s;
            a.time += dt_s;
            a.samples += (delta.cycles / self.period_cycles).max(1);
        }
        a.peak = a.peak.max(meas_cpu);
        a.peak_mem = a.peak_mem.max(meas_mem);

        if let Some(t) = &mut self.trace {
            t.push(PowerSample {
                t: t_now,
                cpu_w: meas_cpu.watts(),
                mem_w: meas_mem.watts(),
                component: target,
            });
        }
    }

    /// The recorded trace, when enabled.
    pub fn trace(&self) -> Option<&[PowerSample]> {
        self.trace.as_deref()
    }

    /// The power model in force.
    pub fn model(&self) -> &PowerModel {
        &self.model
    }

    /// The fault ledger accumulated so far.
    pub fn fault_stats(&self) -> &FaultStats {
        &self.faults.stats
    }

    /// Aggregate the run.
    pub fn report(&self) -> DaqReport {
        DaqReport {
            per_component: self.acc.clone(),
            cpu_energy: self.acc.iter().map(|a| a.energy).sum(),
            mem_energy: self.acc.iter().map(|a| a.mem_energy).sum(),
            sampled_time: self.acc.iter().map(|a| a.time).sum(),
            clean_cpu_energy: self.faults.clean_cpu_energy,
            clean_mem_energy: self.faults.clean_mem_energy,
            faults: self.faults.stats,
            transition_windows: self.transition_windows,
            transition_energy_j: self.transition_energy_j,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmprobe_platform::{Machine, PlatformKind};

    fn run_windows(daq: &mut Daq, m: &mut Machine, component: ComponentId, windows: u32) {
        for _ in 0..windows {
            // Fill one 40 us window with integer work, then sample.
            let due = daq.next_due_cycles();
            while m.cycles() < due {
                m.int_ops(16);
            }
            daq.observe(&m.snapshot(), component);
        }
    }

    #[test]
    fn attribution_follows_the_port_value() {
        let mut m = Machine::new(PlatformKind::PentiumM);
        let mut daq = Daq::new(PlatformKind::PentiumM);
        run_windows(&mut daq, &mut m, ComponentId::Application, 5);
        run_windows(&mut daq, &mut m, ComponentId::Gc, 3);
        let r = daq.report();
        assert!(r.component(ComponentId::Application).samples >= 5);
        assert!(r.component(ComponentId::Gc).samples >= 3);
        assert_eq!(r.component(ComponentId::JitCompiler).samples, 0);
        assert!(r.component(ComponentId::Application).time > r.component(ComponentId::Gc).time);
    }

    #[test]
    fn no_sample_before_first_boundary() {
        let mut m = Machine::new(PlatformKind::PentiumM);
        let mut daq = Daq::new(PlatformKind::PentiumM);
        m.int_ops(10);
        daq.observe(&m.snapshot(), ComponentId::Application);
        assert_eq!(daq.report().component(ComponentId::Application).samples, 0);
    }

    #[test]
    fn energy_equals_power_times_time() {
        let mut m = Machine::new(PlatformKind::PentiumM);
        let mut daq = Daq::new(PlatformKind::PentiumM);
        run_windows(&mut daq, &mut m, ComponentId::Application, 10);
        let r = daq.report();
        let a = r.component(ComponentId::Application);
        let recomputed = a.avg_power() * a.time;
        assert!((recomputed.joules() - a.energy.joules()).abs() < 1e-12);
        assert!(a.peak >= a.avg_power());
    }

    #[test]
    fn trace_records_samples_in_time_order() {
        let mut m = Machine::new(PlatformKind::PentiumM);
        let mut daq = Daq::with_trace(PlatformKind::PentiumM);
        run_windows(&mut daq, &mut m, ComponentId::Application, 4);
        let t = daq.trace().unwrap();
        assert!(t.len() >= 4);
        assert!(t.windows(2).all(|w| w[0].t <= w[1].t));
    }

    #[test]
    fn period_rounds_to_nearest_and_never_reaches_zero() {
        // Exact at the nominal platform clocks (truncation and rounding
        // agree here, which is what keeps the golden figures stable).
        assert_eq!(period_cycles_at(DAQ_PERIOD_S, 1.6e9), 64_000);
        assert_eq!(period_cycles_at(DAQ_PERIOD_S, 4e8), 16_000);
        // Non-integral products round to nearest instead of truncating:
        // 40 us at 1.23456789 GHz is 49 382.7156 cycles.
        assert_eq!(period_cycles_at(DAQ_PERIOD_S, 1.234_567_89e9), 49_383);
        // Sub-cycle periods clamp to one cycle instead of degenerating to
        // a zero-period busy-sample loop.
        assert_eq!(period_cycles_at(DAQ_PERIOD_S, 10_000.0), 1);
    }

    #[test]
    fn set_clock_preserves_remaining_wall_time_to_next_sample() {
        let mut daq = Daq::with_model(PowerModel::new(PlatformKind::PentiumM), 1.6e9, false);
        assert_eq!(daq.next_due_cycles(), 64_000);
        // Halve the clock 20 us before the pending sample: the same 20 us
        // of wall time is 16 000 cycles at the new rate.
        daq.set_clock(32_000, 0.8e9);
        assert_eq!(daq.next_due_cycles(), 48_000);
        assert_eq!(daq.freq_hz(), 0.8e9);
    }

    #[test]
    fn throttled_run_still_samples_every_40_us_of_wall_time() {
        // Fig-1 scenario: the thermal controller halves the effective clock
        // (50 % duty) mid-run. The DAQ is wall-clock hardware, so it must
        // keep sampling every 40 us of wall time; before the fix the period
        // silently stretched to 80 us after the throttle.
        let mut m = Machine::new(PlatformKind::PentiumM);
        let mut daq = Daq::with_trace(PlatformKind::PentiumM);
        // 0.1 s of wall time at the full 1.6 GHz clock...
        let t1_cycles = (1.6e9 * 0.1) as u64;
        while m.cycles() < t1_cycles {
            let due = daq.next_due_cycles().min(t1_cycles);
            m.stall((due - m.cycles()) as f64);
            daq.observe(&m.snapshot(), ComponentId::Application);
        }
        // ...then the throttle lands and another 0.1 s of wall time passes
        // at half frequency.
        daq.set_clock(m.cycles(), 0.8e9);
        let t2_cycles = t1_cycles + (0.8e9 * 0.1) as u64;
        while m.cycles() < t2_cycles {
            let due = daq.next_due_cycles().min(t2_cycles);
            m.stall((due - m.cycles()) as f64);
            daq.observe(&m.snapshot(), ComponentId::Application);
        }
        let trace = daq.trace().unwrap();
        let expect = (0.2 / DAQ_PERIOD_S) as i64;
        assert!(
            (trace.len() as i64 - expect).abs() <= 1,
            "expected ~{expect} samples over 0.2 s, got {}",
            trace.len()
        );
        // Every consecutive pair is 40 us of wall time apart, including
        // across the clock change (boundary rounding is at most half a
        // cycle, 0.625 ns at 0.8 GHz).
        for w in trace.windows(2) {
            let dt = w[1].t - w[0].t;
            assert!(
                (dt - DAQ_PERIOD_S).abs() < 2e-9,
                "inter-sample gap {dt} s at t={}",
                w[1].t
            );
        }
    }

    #[test]
    fn custom_period_scales_sample_count() {
        let model = PowerModel::new(PlatformKind::PentiumM);
        let mut m = Machine::new(PlatformKind::PentiumM);
        let mut daq = Daq::with_model(model, 1.6e9, true).with_period(4e-6);
        // 1 ms of work → ~250 samples at a 4 µs period.
        while m.now() < 1e-3 {
            let due = daq.next_due_cycles();
            while m.cycles() < due {
                m.int_ops(16);
            }
            daq.observe(&m.snapshot(), ComponentId::Application);
        }
        let n = daq.trace().unwrap().len();
        assert!((200..=300).contains(&n), "got {n}");
    }

    #[test]
    fn port_writes_mark_transition_windows() {
        let mut m = Machine::new(PlatformKind::PentiumM);
        let mut daq = Daq::new(PlatformKind::PentiumM);
        run_windows(&mut daq, &mut m, ComponentId::Application, 3);
        assert_eq!(daq.transition_windows(), 0);
        daq.note_port_write();
        run_windows(&mut daq, &mut m, ComponentId::Gc, 1);
        assert_eq!(daq.transition_windows(), 1);
        assert!(daq.transition_energy_j() > 0.0);
        // The pending flag resets after the marked window.
        run_windows(&mut daq, &mut m, ComponentId::Gc, 2);
        assert_eq!(daq.transition_windows(), 1);
        assert_eq!(daq.report().transition_windows, 1);
    }

    #[test]
    fn idle_windows_accumulate_idle_energy() {
        let mut m = Machine::new(PlatformKind::PentiumM);
        let mut daq = Daq::new(PlatformKind::PentiumM);
        m.stall(1.6e9 * 0.001); // 1 ms of pure stall
        daq.observe(&m.snapshot(), ComponentId::Idle);
        let r = daq.report();
        let idle = r.component(ComponentId::Idle);
        assert!((idle.avg_power().watts() - 4.5).abs() < 0.01);
    }
}
