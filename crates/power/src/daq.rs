//! The digital acquisition system: 40 µs power sampling with component
//! attribution.

use serde::{Deserialize, Serialize};
use vmprobe_faults::{DetRng, FaultPlan, FaultStats};
use vmprobe_platform::{HpmSnapshot, HpmUnwrapper, PlatformKind};

use crate::{ComponentId, Joules, PowerModel, Seconds, Watts};

/// The paper's DAQ sampling period: 40 µs, "the fastest sampling rate of
/// our digital acquisition system based on the number of sampling channels
/// used" (Section IV-D).
pub const DAQ_PERIOD_S: f64 = 40e-6;

/// One recorded sample (kept only when tracing is enabled).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSample {
    /// Simulated time of the sample in seconds.
    pub t: f64,
    /// CPU power over the preceding window, in watts.
    pub cpu_w: f64,
    /// DRAM power over the preceding window, in watts.
    pub mem_w: f64,
    /// Component ID visible on the port at the sample instant.
    pub component: ComponentId,
}

/// Accumulated measurements for one component.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ComponentPower {
    /// CPU energy attributed to the component.
    pub energy: Joules,
    /// DRAM energy attributed to the component.
    pub mem_energy: Joules,
    /// Wall-clock time attributed to the component.
    pub time: Seconds,
    /// Number of 40 µs samples attributed.
    pub samples: u64,
    /// Highest single-window CPU power observed.
    pub peak: Watts,
    /// Highest single-window DRAM power observed.
    pub peak_mem: Watts,
}

impl ComponentPower {
    /// Average CPU power while this component ran (zero if it never ran).
    pub fn avg_power(&self) -> Watts {
        if self.time.seconds() <= 0.0 {
            Watts::ZERO
        } else {
            self.energy / self.time
        }
    }
}

/// Aggregated DAQ output for a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DaqReport {
    /// Per-component accumulators, indexed by [`ComponentId::index`].
    pub per_component: Vec<ComponentPower>,
    /// Total CPU energy.
    pub cpu_energy: Joules,
    /// Total DRAM energy.
    pub mem_energy: Joules,
    /// Total sampled time.
    pub sampled_time: Seconds,
    /// CPU energy a fault-free DAQ would have measured (equals
    /// `cpu_energy` when no faults are injected).
    pub clean_cpu_energy: Joules,
    /// DRAM energy a fault-free DAQ would have measured.
    pub clean_mem_energy: Joules,
    /// Ledger of injected faults and the resulting error bound.
    pub faults: FaultStats,
}

impl DaqReport {
    /// Accumulator for one component.
    pub fn component(&self, c: ComponentId) -> &ComponentPower {
        &self.per_component[c.index()]
    }

    /// Absolute deviation of the measured total (cpu + mem) energy from the
    /// clean total. The degradation contract guarantees this never exceeds
    /// [`FaultStats::energy_error_bound_j`].
    pub fn energy_deviation_j(&self) -> f64 {
        let measured = self.cpu_energy.joules() + self.mem_energy.joules();
        let clean = self.clean_cpu_energy.joules() + self.clean_mem_energy.joules();
        (measured - clean).abs()
    }
}

/// The sampling DAQ.
///
/// The measurement driver calls [`Daq::observe`] after every charged unit of
/// work; the call is a no-op (one integer compare) until the machine's cycle
/// counter crosses the next 40 µs boundary, at which point the window's HPM
/// delta is converted to power and attributed to the component currently on
/// the port — reproducing the paper's quantization: a component switch
/// *inside* the window is invisible, and the whole window goes to whoever
/// holds the port at sampling time.
#[derive(Debug, Clone)]
pub struct Daq {
    model: PowerModel,
    freq_hz: f64,
    period_cycles: u64,
    next_due: u64,
    last: HpmSnapshot,
    acc: Vec<ComponentPower>,
    trace: Option<Vec<PowerSample>>,
    faults: FaultInjector,
}

/// Per-DAQ fault-injection state: the plan, the derived RNG streams, the
/// unwrapper for 32-bit counter reads, the clean-energy ground truth, and
/// the ledger that makes the degradation contract checkable.
#[derive(Debug, Clone)]
struct FaultInjector {
    plan: FaultPlan,
    /// Drives drop/dup/noise decisions.
    rng: DetRng,
    /// Independent stream for port-read corruption, so enabling one fault
    /// class never shifts another class's sequence.
    port_rng: DetRng,
    unwrapper: HpmUnwrapper,
    stats: FaultStats,
    clean_cpu_energy: Joules,
    clean_mem_energy: Joules,
}

impl FaultInjector {
    fn new(plan: FaultPlan) -> Self {
        let root = DetRng::new(plan.seed);
        FaultInjector {
            plan,
            rng: root.derive("daq"),
            port_rng: root.derive("port"),
            unwrapper: HpmUnwrapper::new(),
            stats: FaultStats::default(),
            clean_cpu_energy: Joules::ZERO,
            clean_mem_energy: Joules::ZERO,
        }
    }
}

impl Daq {
    /// DAQ for `kind` with aggregation only (no per-sample trace).
    pub fn new(kind: PlatformKind) -> Self {
        Self::build(kind, false)
    }

    /// DAQ that additionally records every sample (for time-series figures
    /// like the thermal experiment).
    pub fn with_trace(kind: PlatformKind) -> Self {
        Self::build(kind, true)
    }

    fn build(kind: PlatformKind, trace: bool) -> Self {
        let freq_hz = vmprobe_platform::CpuSpec::of(kind).freq_hz;
        Self::with_model(PowerModel::new(kind), freq_hz, trace)
    }

    /// DAQ with an explicit power model and clock (DVFS-scaled operation).
    pub fn with_model(model: PowerModel, freq_hz: f64, trace: bool) -> Self {
        let period_cycles = (DAQ_PERIOD_S * freq_hz) as u64;
        Self {
            model,
            freq_hz,
            period_cycles,
            next_due: period_cycles,
            last: HpmSnapshot::default(),
            acc: vec![ComponentPower::default(); ComponentId::ALL.len()],
            trace: trace.then(Vec::new),
            faults: FaultInjector::new(FaultPlan::none()),
        }
    }

    /// Attach a fault plan. The injected sequence is fully determined by
    /// `plan.seed`, so faulted runs replay bit-identically.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = FaultInjector::new(plan);
        self
    }

    /// Cycle count at which the next sample is due (for cheap polling).
    pub fn next_due_cycles(&self) -> u64 {
        self.next_due
    }

    /// Take a sample if one is due. `snap` must be monotonically
    /// non-decreasing across calls.
    ///
    /// With a [`FaultPlan`] attached, this is where the measurement-path
    /// faults land, in hardware order: the counter file is read (possibly
    /// through a wrapping 32-bit view and unwrapped), the component register
    /// is read (possibly glitching to a stale or invalid ID), the window's
    /// power is computed (possibly scaled by calibration drift and bounded
    /// sensor noise), and the sample is committed (possibly dropped or
    /// double-clocked). Every perturbation's absolute energy effect is
    /// logged in [`FaultStats`], so the report's measured totals deviate
    /// from its clean totals by at most `faults.energy_error_bound_j()`.
    pub fn observe(&mut self, snap: &HpmSnapshot, component: ComponentId) {
        if snap.cycles < self.next_due {
            return;
        }
        let f = &mut self.faults;
        // 32-bit counter-file read + offline unwrap (exact at 40 µs windows).
        let snap = &if f.plan.wrap32 {
            let rebuilt = f.unwrapper.unwrap_snapshot(&snap.wrapped32());
            f.stats.wraps_unwrapped = f.unwrapper.wraps_detected();
            rebuilt
        } else {
            *snap
        };
        let delta = snap.delta_since(&self.last);
        let dt = delta.cycles as f64 / self.freq_hz;
        let cpu = self.model.cpu_power(&delta, dt);
        let mem = self.model.dram_power(&delta, dt);
        let dt_s = Seconds::new(dt);
        // Window consumed regardless of the sample's fate below.
        self.last = *snap;
        self.next_due = snap.cycles + self.period_cycles;

        // Fault-free ground truth for this due window.
        let clean_cpu_j = cpu.watts() * dt;
        let clean_mem_j = mem.watts() * dt;
        f.stats.samples_total += 1;
        f.clean_cpu_energy += Joules::new(clean_cpu_j);
        f.clean_mem_energy += Joules::new(clean_mem_j);

        // Missed trigger: the window's energy is lost entirely.
        if f.rng.chance(f.plan.drop_sample) {
            f.stats.samples_dropped += 1;
            f.stats.dropped_energy_j += clean_cpu_j + clean_mem_j;
            return;
        }

        // Component-register read: may glitch to a stale or invalid ID.
        let target = if f.port_rng.chance(f.plan.port_glitch) {
            f.stats.port_glitches += 1;
            let raw = (f.port_rng.next_u64() & 0xFF) as u8;
            ComponentId::from_raw(raw).unwrap_or(ComponentId::Spurious)
        } else {
            component
        };

        // Calibration drift (monotone in time) and bounded sensor noise
        // scale the measured power; the exact deviation each introduces is
        // logged so the error bound is an identity, not an estimate.
        let drift_m = 1.0 + f.plan.calib_drift * (snap.cycles as f64 / self.freq_hz);
        let noise = if f.plan.noise_sigma > 0.0 {
            (f.plan.noise_sigma * f.rng.gauss())
                .clamp(-3.0 * f.plan.noise_sigma, 3.0 * f.plan.noise_sigma)
        } else {
            0.0
        };
        let factor = (drift_m * (1.0 + noise)).max(0.0);
        let meas_cpu = Watts::new(cpu.watts() * factor);
        let meas_mem = Watts::new(mem.watts() * factor);
        let meas_cpu_j = meas_cpu.watts() * dt;
        let meas_mem_j = meas_mem.watts() * dt;
        let clean_j = clean_cpu_j + clean_mem_j;
        let drift_delta = (drift_m - 1.0) * clean_j;
        f.stats.drift_abs_j += drift_delta.abs();
        f.stats.noise_abs_j += ((meas_cpu_j + meas_mem_j) - clean_j - drift_delta).abs();
        if target != component {
            f.stats.misattributed_energy_j += meas_cpu_j + meas_mem_j;
        }

        // Double-clocked samples commit twice.
        let commits = if f.rng.chance(f.plan.dup_sample) {
            f.stats.samples_duplicated += 1;
            f.stats.duplicated_energy_j += meas_cpu_j + meas_mem_j;
            2
        } else {
            1
        };

        let a = &mut self.acc[target.index()];
        for _ in 0..commits {
            a.energy += meas_cpu * dt_s;
            a.mem_energy += meas_mem * dt_s;
            a.time += dt_s;
            a.samples += (delta.cycles / self.period_cycles).max(1);
        }
        a.peak = a.peak.max(meas_cpu);
        a.peak_mem = a.peak_mem.max(meas_mem);

        if let Some(t) = &mut self.trace {
            t.push(PowerSample {
                t: snap.cycles as f64 / self.freq_hz,
                cpu_w: meas_cpu.watts(),
                mem_w: meas_mem.watts(),
                component: target,
            });
        }
    }

    /// The recorded trace, when enabled.
    pub fn trace(&self) -> Option<&[PowerSample]> {
        self.trace.as_deref()
    }

    /// The power model in force.
    pub fn model(&self) -> &PowerModel {
        &self.model
    }

    /// The fault ledger accumulated so far.
    pub fn fault_stats(&self) -> &FaultStats {
        &self.faults.stats
    }

    /// Aggregate the run.
    pub fn report(&self) -> DaqReport {
        DaqReport {
            per_component: self.acc.clone(),
            cpu_energy: self.acc.iter().map(|a| a.energy).sum(),
            mem_energy: self.acc.iter().map(|a| a.mem_energy).sum(),
            sampled_time: self.acc.iter().map(|a| a.time).sum(),
            clean_cpu_energy: self.faults.clean_cpu_energy,
            clean_mem_energy: self.faults.clean_mem_energy,
            faults: self.faults.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmprobe_platform::{Machine, PlatformKind};

    fn run_windows(daq: &mut Daq, m: &mut Machine, component: ComponentId, windows: u32) {
        for _ in 0..windows {
            // Fill one 40 us window with integer work, then sample.
            let due = daq.next_due_cycles();
            while m.cycles() < due {
                m.int_ops(16);
            }
            daq.observe(&m.snapshot(), component);
        }
    }

    #[test]
    fn attribution_follows_the_port_value() {
        let mut m = Machine::new(PlatformKind::PentiumM);
        let mut daq = Daq::new(PlatformKind::PentiumM);
        run_windows(&mut daq, &mut m, ComponentId::Application, 5);
        run_windows(&mut daq, &mut m, ComponentId::Gc, 3);
        let r = daq.report();
        assert!(r.component(ComponentId::Application).samples >= 5);
        assert!(r.component(ComponentId::Gc).samples >= 3);
        assert_eq!(r.component(ComponentId::JitCompiler).samples, 0);
        assert!(r.component(ComponentId::Application).time > r.component(ComponentId::Gc).time);
    }

    #[test]
    fn no_sample_before_first_boundary() {
        let mut m = Machine::new(PlatformKind::PentiumM);
        let mut daq = Daq::new(PlatformKind::PentiumM);
        m.int_ops(10);
        daq.observe(&m.snapshot(), ComponentId::Application);
        assert_eq!(daq.report().component(ComponentId::Application).samples, 0);
    }

    #[test]
    fn energy_equals_power_times_time() {
        let mut m = Machine::new(PlatformKind::PentiumM);
        let mut daq = Daq::new(PlatformKind::PentiumM);
        run_windows(&mut daq, &mut m, ComponentId::Application, 10);
        let r = daq.report();
        let a = r.component(ComponentId::Application);
        let recomputed = a.avg_power() * a.time;
        assert!((recomputed.joules() - a.energy.joules()).abs() < 1e-12);
        assert!(a.peak >= a.avg_power());
    }

    #[test]
    fn trace_records_samples_in_time_order() {
        let mut m = Machine::new(PlatformKind::PentiumM);
        let mut daq = Daq::with_trace(PlatformKind::PentiumM);
        run_windows(&mut daq, &mut m, ComponentId::Application, 4);
        let t = daq.trace().unwrap();
        assert!(t.len() >= 4);
        assert!(t.windows(2).all(|w| w[0].t <= w[1].t));
    }

    #[test]
    fn idle_windows_accumulate_idle_energy() {
        let mut m = Machine::new(PlatformKind::PentiumM);
        let mut daq = Daq::new(PlatformKind::PentiumM);
        m.stall(1.6e9 * 0.001); // 1 ms of pure stall
        daq.observe(&m.snapshot(), ComponentId::Idle);
        let r = daq.report();
        let idle = r.component(ComponentId::Idle);
        assert!((idle.avg_power().watts() - 4.5).abs() < 0.01);
    }
}
