//! The digital acquisition system: 40 µs power sampling with component
//! attribution.

use serde::{Deserialize, Serialize};
use vmprobe_platform::{HpmSnapshot, PlatformKind};

use crate::{ComponentId, Joules, PowerModel, Seconds, Watts};

/// The paper's DAQ sampling period: 40 µs, "the fastest sampling rate of
/// our digital acquisition system based on the number of sampling channels
/// used" (Section IV-D).
pub const DAQ_PERIOD_S: f64 = 40e-6;

/// One recorded sample (kept only when tracing is enabled).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSample {
    /// Simulated time of the sample in seconds.
    pub t: f64,
    /// CPU power over the preceding window, in watts.
    pub cpu_w: f64,
    /// DRAM power over the preceding window, in watts.
    pub mem_w: f64,
    /// Component ID visible on the port at the sample instant.
    pub component: ComponentId,
}

/// Accumulated measurements for one component.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ComponentPower {
    /// CPU energy attributed to the component.
    pub energy: Joules,
    /// DRAM energy attributed to the component.
    pub mem_energy: Joules,
    /// Wall-clock time attributed to the component.
    pub time: Seconds,
    /// Number of 40 µs samples attributed.
    pub samples: u64,
    /// Highest single-window CPU power observed.
    pub peak: Watts,
    /// Highest single-window DRAM power observed.
    pub peak_mem: Watts,
}

impl ComponentPower {
    /// Average CPU power while this component ran (zero if it never ran).
    pub fn avg_power(&self) -> Watts {
        if self.time.seconds() <= 0.0 {
            Watts::ZERO
        } else {
            self.energy / self.time
        }
    }
}

/// Aggregated DAQ output for a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DaqReport {
    /// Per-component accumulators, indexed by [`ComponentId::index`].
    pub per_component: Vec<ComponentPower>,
    /// Total CPU energy.
    pub cpu_energy: Joules,
    /// Total DRAM energy.
    pub mem_energy: Joules,
    /// Total sampled time.
    pub sampled_time: Seconds,
}

impl DaqReport {
    /// Accumulator for one component.
    pub fn component(&self, c: ComponentId) -> &ComponentPower {
        &self.per_component[c.index()]
    }
}

/// The sampling DAQ.
///
/// The measurement driver calls [`Daq::observe`] after every charged unit of
/// work; the call is a no-op (one integer compare) until the machine's cycle
/// counter crosses the next 40 µs boundary, at which point the window's HPM
/// delta is converted to power and attributed to the component currently on
/// the port — reproducing the paper's quantization: a component switch
/// *inside* the window is invisible, and the whole window goes to whoever
/// holds the port at sampling time.
#[derive(Debug, Clone)]
pub struct Daq {
    model: PowerModel,
    freq_hz: f64,
    period_cycles: u64,
    next_due: u64,
    last: HpmSnapshot,
    acc: Vec<ComponentPower>,
    trace: Option<Vec<PowerSample>>,
}

impl Daq {
    /// DAQ for `kind` with aggregation only (no per-sample trace).
    pub fn new(kind: PlatformKind) -> Self {
        Self::build(kind, false)
    }

    /// DAQ that additionally records every sample (for time-series figures
    /// like the thermal experiment).
    pub fn with_trace(kind: PlatformKind) -> Self {
        Self::build(kind, true)
    }

    fn build(kind: PlatformKind, trace: bool) -> Self {
        let freq_hz = vmprobe_platform::CpuSpec::of(kind).freq_hz;
        Self::with_model(PowerModel::new(kind), freq_hz, trace)
    }

    /// DAQ with an explicit power model and clock (DVFS-scaled operation).
    pub fn with_model(model: PowerModel, freq_hz: f64, trace: bool) -> Self {
        let period_cycles = (DAQ_PERIOD_S * freq_hz) as u64;
        Self {
            model,
            freq_hz,
            period_cycles,
            next_due: period_cycles,
            last: HpmSnapshot::default(),
            acc: vec![ComponentPower::default(); ComponentId::ALL.len()],
            trace: trace.then(Vec::new),
        }
    }

    /// Cycle count at which the next sample is due (for cheap polling).
    pub fn next_due_cycles(&self) -> u64 {
        self.next_due
    }

    /// Take a sample if one is due. `snap` must be monotonically
    /// non-decreasing across calls.
    pub fn observe(&mut self, snap: &HpmSnapshot, component: ComponentId) {
        if snap.cycles < self.next_due {
            return;
        }
        let delta = snap.delta_since(&self.last);
        let dt = delta.cycles as f64 / self.freq_hz;
        let cpu = self.model.cpu_power(&delta, dt);
        let mem = self.model.dram_power(&delta, dt);
        let dt_s = Seconds::new(dt);

        let a = &mut self.acc[component.index()];
        a.energy += cpu * dt_s;
        a.mem_energy += mem * dt_s;
        a.time += dt_s;
        a.samples += (delta.cycles / self.period_cycles).max(1);
        a.peak = a.peak.max(cpu);
        a.peak_mem = a.peak_mem.max(mem);

        if let Some(t) = &mut self.trace {
            t.push(PowerSample {
                t: snap.cycles as f64 / self.freq_hz,
                cpu_w: cpu.watts(),
                mem_w: mem.watts(),
                component,
            });
        }
        self.last = *snap;
        self.next_due = snap.cycles + self.period_cycles;
    }

    /// The recorded trace, when enabled.
    pub fn trace(&self) -> Option<&[PowerSample]> {
        self.trace.as_deref()
    }

    /// The power model in force.
    pub fn model(&self) -> &PowerModel {
        &self.model
    }

    /// Aggregate the run.
    pub fn report(&self) -> DaqReport {
        DaqReport {
            per_component: self.acc.clone(),
            cpu_energy: self.acc.iter().map(|a| a.energy).sum(),
            mem_energy: self.acc.iter().map(|a| a.mem_energy).sum(),
            sampled_time: self.acc.iter().map(|a| a.time).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmprobe_platform::{Machine, PlatformKind};

    fn run_windows(daq: &mut Daq, m: &mut Machine, component: ComponentId, windows: u32) {
        for _ in 0..windows {
            // Fill one 40 us window with integer work, then sample.
            let due = daq.next_due_cycles();
            while m.cycles() < due {
                m.int_ops(16);
            }
            daq.observe(&m.snapshot(), component);
        }
    }

    #[test]
    fn attribution_follows_the_port_value() {
        let mut m = Machine::new(PlatformKind::PentiumM);
        let mut daq = Daq::new(PlatformKind::PentiumM);
        run_windows(&mut daq, &mut m, ComponentId::Application, 5);
        run_windows(&mut daq, &mut m, ComponentId::Gc, 3);
        let r = daq.report();
        assert!(r.component(ComponentId::Application).samples >= 5);
        assert!(r.component(ComponentId::Gc).samples >= 3);
        assert_eq!(r.component(ComponentId::JitCompiler).samples, 0);
        assert!(r.component(ComponentId::Application).time > r.component(ComponentId::Gc).time);
    }

    #[test]
    fn no_sample_before_first_boundary() {
        let mut m = Machine::new(PlatformKind::PentiumM);
        let mut daq = Daq::new(PlatformKind::PentiumM);
        m.int_ops(10);
        daq.observe(&m.snapshot(), ComponentId::Application);
        assert_eq!(daq.report().component(ComponentId::Application).samples, 0);
    }

    #[test]
    fn energy_equals_power_times_time() {
        let mut m = Machine::new(PlatformKind::PentiumM);
        let mut daq = Daq::new(PlatformKind::PentiumM);
        run_windows(&mut daq, &mut m, ComponentId::Application, 10);
        let r = daq.report();
        let a = r.component(ComponentId::Application);
        let recomputed = a.avg_power() * a.time;
        assert!((recomputed.joules() - a.energy.joules()).abs() < 1e-12);
        assert!(a.peak >= a.avg_power());
    }

    #[test]
    fn trace_records_samples_in_time_order() {
        let mut m = Machine::new(PlatformKind::PentiumM);
        let mut daq = Daq::with_trace(PlatformKind::PentiumM);
        run_windows(&mut daq, &mut m, ComponentId::Application, 4);
        let t = daq.trace().unwrap();
        assert!(t.len() >= 4);
        assert!(t.windows(2).all(|w| w[0].t <= w[1].t));
    }

    #[test]
    fn idle_windows_accumulate_idle_energy() {
        let mut m = Machine::new(PlatformKind::PentiumM);
        let mut daq = Daq::new(PlatformKind::PentiumM);
        m.stall(1.6e9 * 0.001); // 1 ms of pure stall
        daq.observe(&m.snapshot(), ComponentId::Idle);
        let r = daq.report();
        let idle = r.component(ComponentId::Idle);
        assert!((idle.avg_power().watts() - 4.5).abs() < 0.01);
    }
}
