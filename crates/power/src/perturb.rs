//! Per-component energy perturbations and sample extraction for the
//! energy-regression gate.
//!
//! `vmprobe-diff` compares two builds of the power stack. In a real
//! deployment the candidate side is simply a different binary; in tests and
//! CI we *simulate* a changed build by scaling individual components'
//! measured energy by known factors (e.g. "+5% GC"). The scaling is applied
//! at **sample extraction** time — cached [`Report`]s stay raw, so a
//! perturbed diff reuses the same sweep results as a clean one.

use std::fmt;

use crate::{ComponentId, Report};

/// Error from [`EnergyPerturbation::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerturbSpecError(String);

impl fmt::Display for PerturbSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad perturbation spec: {}", self.0)
    }
}

impl std::error::Error for PerturbSpecError {}

/// A set of multiplicative per-component energy scale factors.
///
/// Parsed from specs like `"gc=+5%,jit=-1.5%"`. Components not named keep a
/// factor of exactly `1.0`. The spec keys are lowercase short names:
/// `app`, `gc`, `cl`, `base`, `opt`, `jit`, `sched`, `ctrl`, `idle`.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyPerturbation {
    factors: [f64; ComponentId::ALL.len()],
}

impl Default for EnergyPerturbation {
    fn default() -> Self {
        Self::none()
    }
}

/// Spec key for a component, or `None` for components that cannot be
/// perturbed (the `Spurious` attribution bucket).
fn spec_key(c: ComponentId) -> Option<&'static str> {
    match c {
        ComponentId::Application => Some("app"),
        ComponentId::Gc => Some("gc"),
        ComponentId::ClassLoader => Some("cl"),
        ComponentId::BaseCompiler => Some("base"),
        ComponentId::OptCompiler => Some("opt"),
        ComponentId::JitCompiler => Some("jit"),
        ComponentId::Scheduler => Some("sched"),
        ComponentId::Controller => Some("ctrl"),
        ComponentId::Idle => Some("idle"),
        ComponentId::Spurious => None,
    }
}

impl EnergyPerturbation {
    /// The identity perturbation: every factor is `1.0`.
    pub fn none() -> Self {
        Self {
            factors: [1.0; ComponentId::ALL.len()],
        }
    }

    /// True when every factor is exactly `1.0`.
    pub fn is_none(&self) -> bool {
        self.factors.iter().all(|&f| f == 1.0)
    }

    /// Parse a comma-separated spec such as `"gc=+5%,jit=-1.5%"`.
    ///
    /// Each entry is `<component>=<signed percent>%`; the resulting factor is
    /// `1 + percent/100` and must stay positive. An empty spec parses to
    /// [`EnergyPerturbation::none`].
    pub fn parse(spec: &str) -> Result<Self, PerturbSpecError> {
        let mut p = Self::none();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| PerturbSpecError(format!("`{entry}` is not `component=±N%`")))?;
            let c = ComponentId::ALL
                .into_iter()
                .find(|&c| spec_key(c) == Some(key.trim()))
                .ok_or_else(|| PerturbSpecError(format!("unknown component `{key}`")))?;
            let value = value.trim();
            let percent = value
                .strip_suffix('%')
                .ok_or_else(|| PerturbSpecError(format!("`{value}` lacks a `%` suffix")))?;
            let percent: f64 = percent
                .trim()
                .parse()
                .map_err(|_| PerturbSpecError(format!("`{value}` is not a percentage")))?;
            let factor = 1.0 + percent / 100.0;
            if !(factor.is_finite() && factor > 0.0) {
                return Err(PerturbSpecError(format!("`{entry}` scales below zero")));
            }
            p.factors[c.index()] = factor;
        }
        Ok(p)
    }

    /// The multiplicative factor applied to `c`'s energy.
    pub fn factor(&self, c: ComponentId) -> f64 {
        self.factors[c.index()]
    }
}

impl fmt::Display for EnergyPerturbation {
    /// Canonical spec form: perturbed components in [`ComponentId::ALL`]
    /// order, each as `<key>=<signed percent>%`. Round-trips through
    /// [`EnergyPerturbation::parse`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for c in ComponentId::ALL {
            let factor = self.factors[c.index()];
            if factor == 1.0 {
                continue;
            }
            let Some(key) = spec_key(c) else { continue };
            if !first {
                f.write_str(",")?;
            }
            first = false;
            // `1 + pct/100` then `(factor - 1) * 100` picks up one ulp of
            // noise (1.05 → 5.000000000000004); snapping to nano-percent
            // granularity restores the spec the factor came from.
            let percent = ((factor - 1.0) * 100.0 * 1e9).round() / 1e9;
            write!(f, "{key}={percent:+}%")?;
        }
        Ok(())
    }
}

/// Total (CPU + DRAM) energy attributed to `c` in `report`, scaled by the
/// perturbation's factor for `c`. Components the run never touched yield
/// `0.0`.
///
/// This is the sample the diff engine's bootstrap resampler consumes: one
/// value per (run, component), with the candidate side's perturbation
/// standing in for a changed build.
pub fn perturbed_component_energy(report: &Report, c: ComponentId, p: &EnergyPerturbation) -> f64 {
    report
        .component(c)
        .map_or(0.0, |prof| prof.energy.joules() + prof.mem_energy.joules())
        * p.factor(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_through_display() {
        let p = EnergyPerturbation::parse("gc=+5%, jit=-1.5%").unwrap();
        assert_eq!(p.factor(ComponentId::Gc), 1.05);
        assert_eq!(p.factor(ComponentId::JitCompiler), 1.0 - 0.015);
        assert_eq!(p.factor(ComponentId::Application), 1.0);
        let canon = p.to_string();
        assert_eq!(canon, "gc=+5%,jit=-1.5%");
        assert_eq!(EnergyPerturbation::parse(&canon).unwrap(), p);
    }

    #[test]
    fn empty_spec_is_identity() {
        let p = EnergyPerturbation::parse("").unwrap();
        assert!(p.is_none());
        assert_eq!(p.to_string(), "");
        assert_eq!(p, EnergyPerturbation::none());
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(EnergyPerturbation::parse("gc").is_err());
        assert!(EnergyPerturbation::parse("turbo=+5%").is_err());
        assert!(EnergyPerturbation::parse("gc=5").is_err(), "missing %");
        assert!(EnergyPerturbation::parse("gc=zap%").is_err());
        assert!(
            EnergyPerturbation::parse("gc=-150%").is_err(),
            "negative energy"
        );
        assert!(
            EnergyPerturbation::parse("spurious=+5%").is_err(),
            "spurious is an attribution bucket, not a perturbable component"
        );
    }
}
