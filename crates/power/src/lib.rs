//! Measurement infrastructure: the paper's Section IV, in simulation.
//!
//! The physical rig the paper builds consists of (its Figure 4):
//!
//! 1. **component identification** — the JVM writes the ID of the currently
//!    executing component (GC, class loader, compiler, application) to a
//!    memory-mapped I/O register (parallel-port pins on the P6 board, GPIO
//!    pins on the DBPXA255) — here [`ComponentPort`];
//! 2. **power sampling** — precision sense resistors on the CPU and DRAM
//!    supply rails, sampled by a digital acquisition system every **40 µs**
//!    together with the component-ID register — here [`Daq`] over the
//!    activity-based [`PowerModel`];
//! 3. **performance sampling** — an OS-timer handler reads the hardware
//!    performance monitors every 1 ms (P6) / 10 ms (PXA255) along with the
//!    current component — here [`PerfMonitor`];
//! 4. **offline analysis** — power and performance traces are matched after
//!    the run to produce per-component energy, power, peak power and
//!    energy-delay product — here [`analyze`] producing a [`Report`].
//!
//! The same quantization artifacts the paper documents apply: transitions
//! inside a 40 µs window are invisible, and a sample's whole window is
//! attributed to the component on the port at the sample instant.
//!
//! A lumped-RC [`ThermalSim`] with emergency throttling reproduces the
//! paper's Figure 1 (fan-failure) experiment.
//!
//! # Example
//!
//! ```
//! use vmprobe_platform::{Exec, Machine, PlatformKind};
//! use vmprobe_power::{analyze, ComponentId, ComponentPort, Daq, PerfMonitor};
//!
//! let mut machine = Machine::new(PlatformKind::PentiumM);
//! let mut port = ComponentPort::new();
//! let mut daq = Daq::new(PlatformKind::PentiumM);
//! let mut perf = PerfMonitor::new(PlatformKind::PentiumM);
//!
//! port.push(ComponentId::Application);
//! for i in 0..200_000u64 {
//!     machine.int_ops(4);
//!     machine.load(0x1000_0000 + (i % 4096) * 8);
//!     daq.observe(&machine.snapshot(), port.current());
//!     perf.observe(&machine.snapshot(), port.current());
//! }
//! let report = analyze(&daq, &perf, &machine);
//! let app = &report.components[&ComponentId::Application];
//! assert!(app.energy.joules() > 0.0);
//! assert!(app.avg_power.watts() > 4.5); // above idle
//! ```

#![warn(missing_docs)]
mod analyzer;
mod calib;
mod component;
mod daq;
mod dvfs;
mod model;
mod perfmon;
mod perturb;
mod port;
mod probe;
mod thermal;
mod units;

pub use analyzer::{analyze, ComponentProfile, Report};
pub use calib::PowerCoeffs;
pub use component::ComponentId;
pub use daq::{ComponentPower, Daq, DaqReport, PowerSample, DAQ_PERIOD_S};
pub use dvfs::DvfsPoint;
pub use model::PowerModel;
pub use perfmon::{PerfMonitor, PerfRecord};
pub use perturb::{perturbed_component_energy, EnergyPerturbation, PerturbSpecError};
pub use port::ComponentPort;
pub use probe::{
    hpm_read_stall_cycles, ProbeSpec, ProbeStats, DAQ_ISR_LINES, DEFAULT_DAQ_PERIOD_NS,
};
pub use thermal::{ThermalConfig, ThermalSim, ThermalState};
pub use units::{Celsius, EnergyDelay, Joules, Seconds, Watts};

// Fault-injection machinery consumed by the measurement path; re-exported
// so measurement users need not depend on `vmprobe-faults` directly.
pub use vmprobe_faults::{DetRng, FaultPlan, FaultSpecError, FaultStats};
