//! The probe cost model: what measurement itself costs.
//!
//! The paper's rig treats its own instrumentation as free — the component-ID
//! port write, the 40 µs DAQ interrupt and the 1 ms / 10 ms OS-timer HPM
//! read all happen "outside" the measured system. Section IV-D concedes the
//! quantization artifact this hides (sub-window transitions are invisible),
//! and real-system monitoring studies show the probes tax the very power
//! rails they observe. Because every layer here is simulated, the rig can do
//! what the physical setup could not: charge each probe its realistic
//! cycle/energy cost and measure the observer effect *exactly*.
//!
//! [`ProbeSpec`] selects the measurement mode for a run: the DAQ sampling
//! period (default 40 µs, the paper's hardware limit) and whether probes are
//! *non-transparent* — i.e. charged into the machine like any other work:
//!
//! * each component-ID port write performs a store to the memory-mapped
//!   register at [`PROBE_BASE`](vmprobe_platform::PROBE_BASE) (on top of the
//!   existing I/O stall);
//! * each DAQ sample runs an ISR that walks [`DAQ_ISR_LINES`] cache lines of
//!   its sample ring buffer, evicting workload lines;
//! * each OS-timer HPM read takes a syscall-shaped stall
//!   ([`hpm_read_stall_cycles`]) plus one load per counter in the file
//!   ([`HPM_COUNTER_COUNT`](vmprobe_platform::HPM_COUNTER_COUNT)).
//!
//! [`ProbeStats`] is the ledger: costs actually paid, plus the
//! *misattribution exposure* every mode records for free — the number of
//! sampling windows that contained at least one component transition, and
//! the energy of those windows. A window with an interior transition is
//! attributed wholesale to whichever component holds the port at the sample
//! instant, so this energy is the exact upper bound on the §IV-D
//! quantization error, and it shrinks as the sampling period shrinks toward
//! the transition scale.

use serde::{Deserialize, Serialize};
use vmprobe_platform::PlatformKind;

use crate::daq::DAQ_PERIOD_S;

/// The default DAQ sampling period in nanoseconds: the paper's 40 µs.
pub const DEFAULT_DAQ_PERIOD_NS: u64 = 40_000;

/// Cache lines the DAQ's interrupt handler touches per sample: the ISR
/// reads the two ADC channels, the component register and the timestamp
/// into a ring buffer and advances its cursor — eight lines of traffic that
/// contend with the workload for the data cache.
pub const DAQ_ISR_LINES: u64 = 8;

/// Syscall-shaped stall for one OS-timer HPM read: ring transition, handler
/// prologue/epilogue and the serializing counter-read instructions. The P6
/// pays a deeper pipeline flush; the shallow XScale core takes a smaller
/// (but at 400 MHz proportionally similar) hit.
pub fn hpm_read_stall_cycles(kind: PlatformKind) -> f64 {
    match kind {
        PlatformKind::PentiumM => 1500.0,
        PlatformKind::Pxa255 => 600.0,
    }
}

/// Measurement-mode selector for one run.
///
/// The default spec — 40 µs period, transparent — is the classic rig and
/// must leave every byte of existing output unchanged; anything else marks
/// the experiment's cache key so perturbed results never alias clean ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProbeSpec {
    /// DAQ sampling period in nanoseconds.
    pub daq_period_ns: u64,
    /// When set, probes are charged into the machine (stores, ISR cache
    /// traffic, syscall stalls) instead of happening for free.
    pub nontransparent: bool,
}

impl Default for ProbeSpec {
    fn default() -> Self {
        Self {
            daq_period_ns: DEFAULT_DAQ_PERIOD_NS,
            nontransparent: false,
        }
    }
}

impl ProbeSpec {
    /// Transparent probes sampling every `daq_period_ns`.
    pub fn transparent_at(daq_period_ns: u64) -> Self {
        Self {
            daq_period_ns,
            nontransparent: false,
        }
    }

    /// Charged probes sampling every `daq_period_ns`.
    pub fn nontransparent_at(daq_period_ns: u64) -> Self {
        Self {
            daq_period_ns,
            nontransparent: true,
        }
    }

    /// Whether this is the classic rig (40 µs, transparent) whose behaviour
    /// — and cache identity — must be bit-identical to a spec-less run.
    pub fn is_default(&self) -> bool {
        *self == Self::default()
    }

    /// The DAQ period in seconds. At the default 40 000 ns this returns the
    /// [`DAQ_PERIOD_S`] literal itself, so the conversion cannot introduce
    /// an f64 that differs in its last bit from the classic constant.
    pub fn daq_period_s(&self) -> f64 {
        if self.daq_period_ns == DEFAULT_DAQ_PERIOD_NS {
            DAQ_PERIOD_S
        } else {
            self.daq_period_ns as f64 * 1e-9
        }
    }

    /// Cache-key marker for non-default specs. Default specs contribute
    /// nothing so classic keys stay byte-identical.
    pub fn key_marker(&self) -> String {
        format!(
            "probe:{}ns:{}",
            self.daq_period_ns,
            if self.nontransparent { "nt" } else { "t" }
        )
    }
}

/// Ledger of probe costs paid and misattribution exposure observed.
///
/// The cost fields are zero for transparent runs; the transition fields are
/// filled in every mode (tracking them mutates only DAQ-side counters, never
/// the machine, so transparent trajectories stay bit-identical).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ProbeStats {
    /// Component-ID register stores charged through the cache hierarchy.
    pub port_stores: u64,
    /// DAQ samples whose ISR cache traffic was charged.
    pub daq_samples_paid: u64,
    /// OS-timer HPM reads whose syscall stall + counter loads were charged.
    pub hpm_reads_paid: u64,
    /// Total machine cycles consumed by charged probes.
    pub cycles_paid: u64,
    /// Sampling windows that contained at least one component transition
    /// (their whole energy goes to whoever holds the port at sample time).
    pub transition_windows: u64,
    /// Clean energy of those transition windows, in joules — the exact
    /// upper bound on per-component attribution error from quantization.
    pub transition_energy_j: f64,
}

impl ProbeStats {
    /// Attribution-error bound as a fraction of `total_energy_j` (0 when
    /// the total is not positive).
    pub fn attribution_error_bound(&self, total_energy_j: f64) -> f64 {
        if total_energy_j <= 0.0 {
            0.0
        } else {
            self.transition_energy_j / total_energy_j
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_the_classic_rig() {
        let d = ProbeSpec::default();
        assert!(d.is_default());
        assert_eq!(d.daq_period_ns, 40_000);
        assert!(!d.nontransparent);
        // Bit-identity with the classic constant, not mere closeness.
        assert_eq!(d.daq_period_s().to_bits(), DAQ_PERIOD_S.to_bits());
    }

    #[test]
    fn non_default_specs_mark_the_key() {
        assert_eq!(
            ProbeSpec::transparent_at(4_000).key_marker(),
            "probe:4000ns:t"
        );
        assert_eq!(
            ProbeSpec::nontransparent_at(4_000_000).key_marker(),
            "probe:4000000ns:nt"
        );
        assert!(!ProbeSpec::nontransparent_at(40_000).is_default());
        assert!(!ProbeSpec::transparent_at(4_000).is_default());
    }

    #[test]
    fn attribution_error_bound_is_a_fraction() {
        let s = ProbeStats {
            transition_windows: 3,
            transition_energy_j: 0.5,
            ..ProbeStats::default()
        };
        assert!((s.attribution_error_bound(10.0) - 0.05).abs() < 1e-12);
        assert_eq!(s.attribution_error_bound(0.0), 0.0);
    }

    #[test]
    fn hpm_read_cost_is_platform_specific() {
        assert!(
            hpm_read_stall_cycles(PlatformKind::PentiumM)
                > hpm_read_stall_cycles(PlatformKind::Pxa255)
        );
    }
}
