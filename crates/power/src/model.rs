//! Activity-based instantaneous power model.

use vmprobe_platform::{HpmDelta, PlatformKind};

use crate::{PowerCoeffs, Watts};

/// Converts HPM counter movement over a sampling window into CPU and DRAM
/// power, playing the role of the paper's sense resistors + V·I
/// multiplication.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    coeffs: PowerCoeffs,
}

impl PowerModel {
    /// Model with the standard calibration for `kind`.
    pub fn new(kind: PlatformKind) -> Self {
        Self {
            coeffs: PowerCoeffs::of(kind),
        }
    }

    /// Model with custom coefficients (sensitivity studies).
    pub fn with_coeffs(coeffs: PowerCoeffs) -> Self {
        Self { coeffs }
    }

    /// The coefficients in force.
    pub fn coeffs(&self) -> &PowerCoeffs {
        &self.coeffs
    }

    /// Retirement-rate saturation: issue width bounds how much of the core
    /// a window can light up, so the IPC term clips here (this is also what
    /// keeps modeled peaks inside the parts' thermal design power).
    const IPC_SATURATION: f64 = 1.15;

    /// CPU power over a window of `dt_s` seconds in which the counters
    /// moved by `d`. An empty window draws idle power.
    pub fn cpu_power(&self, d: &HpmDelta, dt_s: f64) -> Watts {
        if dt_s <= 0.0 {
            return Watts::new(self.coeffs.cpu_idle_w);
        }
        let ipc = d.ipc().min(Self::IPC_SATURATION);
        let fp_per_cycle = if d.cycles == 0 {
            0.0
        } else {
            d.fp_ops as f64 / d.cycles as f64
        };
        let mem_per_us = d.mem_accesses as f64 / (dt_s * 1e6);
        Watts::new(
            self.coeffs.cpu_idle_w
                + self.coeffs.c_ipc * ipc
                + self.coeffs.c_fp * fp_per_cycle.min(0.5)
                + self.coeffs.c_mem * mem_per_us,
        )
    }

    /// DRAM power over the window.
    pub fn dram_power(&self, d: &HpmDelta, dt_s: f64) -> Watts {
        if dt_s <= 0.0 {
            return Watts::new(self.coeffs.dram_idle_w);
        }
        let access_rate = d.mem_accesses as f64 / dt_s;
        Watts::new(self.coeffs.dram_idle_w + self.coeffs.dram_energy_per_access_j * access_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(instr: u64, cycles: u64, fp: u64, mem: u64) -> HpmDelta {
        HpmDelta {
            cycles,
            instructions: instr,
            fp_ops: fp,
            mem_accesses: mem,
            ..HpmDelta::default()
        }
    }

    #[test]
    fn idle_window_draws_idle_power() {
        let m = PowerModel::new(PlatformKind::PentiumM);
        let p = m.cpu_power(&window(0, 64000, 0, 0), 40e-6);
        assert!((p.watts() - 4.5).abs() < 1e-9);
        assert!((m.cpu_power(&HpmDelta::default(), 0.0).watts() - 4.5).abs() < 1e-9);
    }

    #[test]
    fn app_like_window_lands_near_paper_app_power() {
        // IPC 0.8, light memory traffic: the paper's application component
        // runs ~13-14 W on the P6.
        let m = PowerModel::new(PlatformKind::PentiumM);
        let cycles = 64_000;
        let p = m.cpu_power(&window(51_200, cycles, 2_000, 80), 40e-6);
        assert!(
            p.watts() > 12.5 && p.watts() < 15.0,
            "app-like window should be ~13-14 W, got {p}"
        );
    }

    #[test]
    fn gc_like_window_is_lower_power_than_app() {
        // IPC 0.55 with heavy memory traffic: the paper's GenCopy collector
        // averages 12.8 W — below the application but above idle.
        let m = PowerModel::new(PlatformKind::PentiumM);
        let cycles = 64_000;
        let gc = m.cpu_power(&window(35_200, cycles, 0, 800), 40e-6);
        let app = m.cpu_power(&window(51_200, cycles, 2_000, 80), 40e-6);
        assert!(gc < app);
        assert!(gc.watts() > 10.0, "GC-like window too cold: {gc}");
    }

    #[test]
    fn dram_power_scales_with_traffic() {
        let m = PowerModel::new(PlatformKind::PentiumM);
        let quiet = m.dram_power(&window(0, 64_000, 0, 0), 40e-6);
        let busy = m.dram_power(&window(0, 64_000, 0, 400), 40e-6);
        assert!((quiet.watts() - 0.25).abs() < 1e-9);
        assert!(busy > quiet);
        // 10M accesses/s * 45nJ = 0.45 W over idle.
        assert!((busy.watts() - (0.25 + 0.45)).abs() < 1e-6);
    }

    #[test]
    fn pxa_magnitudes_are_milliwatt_scale() {
        let m = PowerModel::new(PlatformKind::Pxa255);
        // 40us at 400MHz = 16000 cycles; IPC 0.5.
        let p = m.cpu_power(&window(8_000, 16_000, 0, 40), 40e-6);
        assert!(p.watts() > 0.1 && p.watts() < 0.5, "got {p}");
    }
}
