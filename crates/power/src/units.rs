//! Unit newtypes for energy, power, time and temperature.
//!
//! The paper's metrics section (III-A) distinguishes energy (J), power (W),
//! peak power, and the energy-delay product (J·s); the newtypes keep these
//! statically distinct through the analysis pipeline.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

macro_rules! unit {
    ($(#[$doc:meta])* $name:ident, $unit:literal, $accessor:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize,
        )]
        pub struct $name(f64);

        impl $name {
            /// Wrap a raw value.
            pub const fn new(v: f64) -> Self {
                Self(v)
            }

            /// The raw value in base units.
            pub const fn $accessor(&self) -> f64 {
                self.0
            }

            /// Zero.
            pub const ZERO: Self = Self(0.0);

            /// Largest of two values.
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(p) = f.precision() {
                    write!(f, "{:.*} {}", p, self.0, $unit)
                } else {
                    write!(f, "{:.4} {}", self.0, $unit)
                }
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }
    };
}

unit!(
    /// Energy in joules.
    Joules,
    "J",
    joules
);
unit!(
    /// Power in watts.
    Watts,
    "W",
    watts
);
unit!(
    /// Time in seconds.
    Seconds,
    "s",
    seconds
);
unit!(
    /// Temperature in degrees Celsius.
    Celsius,
    "°C",
    celsius
);
unit!(
    /// Energy-delay product in joule-seconds (the paper's EDP metric,
    /// Section III-A: total energy × execution time).
    EnergyDelay,
    "J·s",
    joule_seconds
);

impl Mul<Seconds> for Watts {
    type Output = Joules;
    fn mul(self, rhs: Seconds) -> Joules {
        Joules::new(self.watts() * rhs.seconds())
    }
}

impl Mul<Seconds> for Joules {
    type Output = EnergyDelay;
    fn mul(self, rhs: Seconds) -> EnergyDelay {
        EnergyDelay::new(self.joules() * rhs.seconds())
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    fn div(self, rhs: Seconds) -> Watts {
        Watts::new(self.joules() / rhs.seconds())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensional_algebra() {
        let p = Watts::new(10.0);
        let t = Seconds::new(2.0);
        let e: Joules = p * t;
        assert_eq!(e.joules(), 20.0);
        let edp: EnergyDelay = e * t;
        assert_eq!(edp.joule_seconds(), 40.0);
        let back: Watts = e / t;
        assert_eq!(back.watts(), 10.0);
    }

    #[test]
    fn arithmetic_and_sum() {
        let a = Joules::new(1.0) + Joules::new(2.0);
        assert_eq!(a.joules(), 3.0);
        let s: Joules = [Joules::new(1.0), Joules::new(2.5)].into_iter().sum();
        assert_eq!(s.joules(), 3.5);
        let mut acc = Watts::ZERO;
        acc += Watts::new(4.0);
        assert_eq!((acc - Watts::new(1.0)).watts(), 3.0);
        assert_eq!((acc * 2.0).watts(), 8.0);
        assert_eq!((acc / 2.0).watts(), 2.0);
        assert_eq!(Watts::new(3.0).max(Watts::new(5.0)).watts(), 5.0);
    }

    #[test]
    fn display_formats_with_units() {
        assert_eq!(format!("{:.1}", Watts::new(12.75)), "12.8 W");
        assert_eq!(format!("{}", Seconds::new(1.0)), "1.0000 s");
        assert!(format!("{}", Celsius::new(99.0)).contains("°C"));
    }
}
