//! The OS-timer performance sampler.
//!
//! The paper's setup has the operating system's main timer take a snapshot
//! of the hardware performance monitors every **1 ms on the P6** and every
//! **10 ms on the DBPXA255**, tagged with the component the JVM most
//! recently announced via system call (Section IV-E). The records are the
//! raw material for the offline per-component IPC / L2-miss-rate statistics
//! in the paper's Section VI-C.

use serde::{Deserialize, Serialize};
use vmprobe_platform::{HpmDelta, HpmSnapshot, HpmUnwrapper, PlatformKind};

use crate::ComponentId;

/// One OS-timer performance sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfRecord {
    /// Simulated time of the sample in seconds.
    pub t: f64,
    /// Component executing at the sample instant.
    pub component: ComponentId,
    /// HPM movement since the previous sample.
    pub delta: HpmDelta,
}

/// The periodic HPM sampler.
#[derive(Debug, Clone)]
pub struct PerfMonitor {
    freq_hz: f64,
    /// OS-timer period in wall-clock seconds (platform-specific).
    period_s: f64,
    period_cycles: u64,
    next_due: u64,
    last: HpmSnapshot,
    /// Wall-clock seconds accumulated before the most recent clock change.
    time_base_s: f64,
    /// Cycle count at the most recent clock change.
    cycle_base: u64,
    records: Vec<PerfRecord>,
    /// When set, reads see a 32-bit counter file and are unwrapped.
    wrap32: bool,
    unwrapper: HpmUnwrapper,
}

impl PerfMonitor {
    /// Sampler for `kind` at the paper's platform-specific period.
    pub fn new(kind: PlatformKind) -> Self {
        Self::with_clock(kind, vmprobe_platform::CpuSpec::of(kind).freq_hz)
    }

    /// Sampler for `kind` against an explicit (DVFS-scaled) clock; the OS
    /// timer fires on wall-clock time, so the period in cycles scales.
    pub fn with_clock(kind: PlatformKind, freq_hz: f64) -> Self {
        let period_s = match kind {
            PlatformKind::PentiumM => 1e-3,
            PlatformKind::Pxa255 => 10e-3,
        };
        let period_cycles = crate::daq::period_cycles_at(period_s, freq_hz);
        Self {
            freq_hz,
            period_s,
            period_cycles,
            next_due: period_cycles,
            last: HpmSnapshot::default(),
            time_base_s: 0.0,
            cycle_base: 0,
            records: Vec::new(),
            wrap32: false,
            unwrapper: HpmUnwrapper::new(),
        }
    }

    /// Retarget the sampler to a new clock, effective at `now_cycles`: the
    /// OS timer keeps firing on wall-clock time, so the period in cycles is
    /// recomputed and the pending tick is rescheduled to fire after the
    /// same remaining wall-clock time at the new rate.
    pub fn set_clock(&mut self, now_cycles: u64, freq_hz: f64) {
        debug_assert!(freq_hz > 0.0, "clock must be positive");
        let remaining_s = self.next_due.saturating_sub(now_cycles) as f64 / self.freq_hz;
        self.time_base_s = self.wall_time_s(now_cycles);
        self.cycle_base = now_cycles;
        self.freq_hz = freq_hz;
        self.period_cycles = crate::daq::period_cycles_at(self.period_s, freq_hz);
        self.next_due = now_cycles + (remaining_s * freq_hz).round() as u64;
    }

    /// Wall-clock seconds for a cycle count, piecewise across clock
    /// changes; reduces to `cycles / freq_hz` exactly while the clock has
    /// never changed.
    fn wall_time_s(&self, cycles: u64) -> f64 {
        self.time_base_s + (cycles - self.cycle_base) as f64 / self.freq_hz
    }

    /// Simulate the physical 32-bit counter file: every observed snapshot is
    /// truncated to 32 bits and reconstructed with an [`HpmUnwrapper`], as
    /// the paper's offline accumulation must. Exact while each counter moves
    /// by < 2^32 per period (always true at 1–10 ms sampling).
    pub fn with_wrap32(mut self) -> Self {
        self.wrap32 = true;
        self
    }

    /// Counter wraps detected and unwrapped so far.
    pub fn wraps_detected(&self) -> u64 {
        self.unwrapper.wraps_detected()
    }

    /// Cycle count at which the next sample is due.
    pub fn next_due_cycles(&self) -> u64 {
        self.next_due
    }

    /// Take a sample if one is due.
    pub fn observe(&mut self, snap: &HpmSnapshot, component: ComponentId) {
        if snap.cycles < self.next_due {
            return;
        }
        // The cycle counter is the timebase (not wrapped); only the counter
        // file goes through the 32-bit read + unwrap path, and only at due
        // instants so the hot-path early return stays one compare.
        let snap = &if self.wrap32 {
            self.unwrapper.unwrap_snapshot(&snap.wrapped32())
        } else {
            *snap
        };
        let delta = snap.delta_since(&self.last);
        self.records.push(PerfRecord {
            t: self.wall_time_s(snap.cycles),
            component,
            delta,
        });
        self.last = *snap;
        self.next_due = snap.cycles + self.period_cycles;
    }

    /// All records, in time order.
    pub fn records(&self) -> &[PerfRecord] {
        &self.records
    }

    /// Merge all windows attributed to each component (indexed by
    /// [`ComponentId::index`]).
    pub fn aggregate(&self) -> Vec<HpmDelta> {
        let mut out = vec![HpmDelta::default(); ComponentId::ALL.len()];
        for r in &self.records {
            out[r.component.index()] = out[r.component.index()].merged(&r.delta);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmprobe_platform::{Machine, PlatformKind};

    #[test]
    fn samples_at_platform_period() {
        let mut m = Machine::new(PlatformKind::PentiumM);
        let mut pm = PerfMonitor::new(PlatformKind::PentiumM);
        // 5 ms of work = ~5 samples at 1 ms.
        while m.now() < 5e-3 {
            m.int_ops(1000);
            pm.observe(&m.snapshot(), ComponentId::Application);
        }
        assert!(
            (4..=6).contains(&pm.records().len()),
            "got {}",
            pm.records().len()
        );
    }

    #[test]
    fn pxa_period_is_ten_times_coarser() {
        let mut m = Machine::new(PlatformKind::Pxa255);
        let mut pm = PerfMonitor::new(PlatformKind::Pxa255);
        while m.now() < 35e-3 {
            m.int_ops(1000);
            pm.observe(&m.snapshot(), ComponentId::Application);
        }
        assert!(
            (2..=4).contains(&pm.records().len()),
            "got {}",
            pm.records().len()
        );
    }

    #[test]
    fn aggregate_partitions_by_component() {
        let mut m = Machine::new(PlatformKind::PentiumM);
        let mut pm = PerfMonitor::new(PlatformKind::PentiumM);
        while m.now() < 2.5e-3 {
            m.int_ops(1000);
            pm.observe(&m.snapshot(), ComponentId::Application);
        }
        while m.now() < 4.5e-3 {
            m.int_ops(500);
            m.load(0x1000_0000 + (m.cycles() % 100_000) * 64);
            pm.observe(&m.snapshot(), ComponentId::Gc);
        }
        let agg = pm.aggregate();
        let app = agg[ComponentId::Application.index()];
        let gc = agg[ComponentId::Gc.index()];
        assert!(app.instructions > 0 && gc.instructions > 0);
        let total: u64 = agg.iter().map(|d| d.instructions).sum();
        assert_eq!(total, app.instructions + gc.instructions);
        // The GC-style loop misses more.
        assert!(gc.l2_miss_rate() >= app.l2_miss_rate());
    }
}
