//! Dynamic voltage and frequency scaling (DVFS).
//!
//! The paper's future-work section (VII) names DVFS as "a very effective
//! tool in leveraging energy for performance", citing the event-driven
//! scaling work of Choi, Hsu/Kremer and Weissel/Bellosa. This module
//! implements that extension: operating points for the two modeled parts
//! and the coefficient scaling that turns the calibrated nominal power
//! model into a model for a scaled point.
//!
//! Physics of the model:
//!
//! * dynamic power scales with `f · V²`;
//! * idle power mixes leakage (`∝ V²`) with clock-tree switching
//!   (`∝ f · V²`);
//! * DRAM latency is constant in *nanoseconds*, so the miss penalty in
//!   *cycles* shrinks with the clock — memory-bound phases lose much less
//!   performance than compute-bound ones, which is exactly the lever
//!   event-driven DVFS policies exploit.

use serde::Serialize;
use vmprobe_platform::PlatformKind;

use crate::PowerCoeffs;

/// One DVFS operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DvfsPoint {
    /// Human-readable name ("1.6 GHz", "600 MHz", ...).
    pub name: &'static str,
    /// Clock frequency relative to nominal, in `(0, 1]`.
    pub freq_factor: f64,
    /// Supply voltage relative to nominal, in `(0, 1]`.
    pub voltage_factor: f64,
}

impl DvfsPoint {
    /// The nominal (full-speed) operating point.
    pub const NOMINAL: DvfsPoint = DvfsPoint {
        name: "nominal",
        freq_factor: 1.0,
        voltage_factor: 1.0,
    };

    /// The operating-point ladder for `kind`.
    ///
    /// Pentium M: the six Enhanced-SpeedStep points of the 1.6 GHz part
    /// (1.6 GHz @ 1.484 V down to 600 MHz @ 0.956 V). PXA255: the three
    /// run-mode points of the 400 MHz part.
    pub fn ladder(kind: PlatformKind) -> Vec<DvfsPoint> {
        match kind {
            PlatformKind::PentiumM => vec![
                DvfsPoint {
                    name: "1.6GHz/1.484V",
                    freq_factor: 1.0,
                    voltage_factor: 1.0,
                },
                DvfsPoint {
                    name: "1.4GHz/1.420V",
                    freq_factor: 1.4 / 1.6,
                    voltage_factor: 1.420 / 1.484,
                },
                DvfsPoint {
                    name: "1.2GHz/1.276V",
                    freq_factor: 1.2 / 1.6,
                    voltage_factor: 1.276 / 1.484,
                },
                DvfsPoint {
                    name: "1.0GHz/1.164V",
                    freq_factor: 1.0 / 1.6,
                    voltage_factor: 1.164 / 1.484,
                },
                DvfsPoint {
                    name: "800MHz/1.036V",
                    freq_factor: 0.8 / 1.6,
                    voltage_factor: 1.036 / 1.484,
                },
                DvfsPoint {
                    name: "600MHz/0.956V",
                    freq_factor: 0.6 / 1.6,
                    voltage_factor: 0.956 / 1.484,
                },
            ],
            PlatformKind::Pxa255 => vec![
                DvfsPoint {
                    name: "400MHz/1.3V",
                    freq_factor: 1.0,
                    voltage_factor: 1.0,
                },
                DvfsPoint {
                    name: "300MHz/1.1V",
                    freq_factor: 0.75,
                    voltage_factor: 1.1 / 1.3,
                },
                DvfsPoint {
                    name: "200MHz/1.0V",
                    freq_factor: 0.5,
                    voltage_factor: 1.0 / 1.3,
                },
            ],
        }
    }

    /// Whether this is the full-speed point.
    pub fn is_nominal(&self) -> bool {
        self.freq_factor >= 1.0 && self.voltage_factor >= 1.0
    }

    /// Scale the calibrated nominal coefficients to this operating point.
    pub fn scale_coeffs(&self, base: PowerCoeffs) -> PowerCoeffs {
        let v2 = self.voltage_factor * self.voltage_factor;
        let dyn_scale = self.freq_factor * v2;
        // Idle: ~35% leakage (voltage-dependent) + ~65% clock tree
        // (frequency- and voltage-dependent).
        let idle_scale = 0.35 * v2 + 0.65 * dyn_scale;
        PowerCoeffs {
            cpu_idle_w: base.cpu_idle_w * idle_scale,
            c_ipc: base.c_ipc * dyn_scale,
            c_fp: base.c_fp * dyn_scale,
            // The memory-event coefficient covers bus/pad power on the CPU
            // rail; the bus voltage does not scale with the core.
            c_mem: base.c_mem,
            dram_idle_w: base.dram_idle_w,
            dram_energy_per_access_j: base.dram_energy_per_access_j,
        }
    }
}

impl Default for DvfsPoint {
    fn default() -> Self {
        Self::NOMINAL
    }
}

impl std::fmt::Display for DvfsPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_is_identity() {
        let base = PowerCoeffs::of(PlatformKind::PentiumM);
        let scaled = DvfsPoint::NOMINAL.scale_coeffs(base);
        assert_eq!(scaled, base);
        assert!(DvfsPoint::NOMINAL.is_nominal());
    }

    #[test]
    fn ladder_is_monotonic_in_both_factors() {
        for kind in [PlatformKind::PentiumM, PlatformKind::Pxa255] {
            let ladder = DvfsPoint::ladder(kind);
            assert!(ladder[0].is_nominal());
            assert!(ladder
                .windows(2)
                .all(|w| w[1].freq_factor < w[0].freq_factor
                    && w[1].voltage_factor <= w[0].voltage_factor));
        }
    }

    #[test]
    fn lowest_point_saves_superlinear_power() {
        let base = PowerCoeffs::of(PlatformKind::PentiumM);
        let low = DvfsPoint::ladder(PlatformKind::PentiumM).pop().unwrap();
        let scaled = low.scale_coeffs(base);
        // f*V^2 at 600MHz/0.956V: 0.375 * 0.415 = ~0.156 of nominal
        // dynamic power for 0.375x the frequency.
        let dyn_ratio = scaled.c_ipc / base.c_ipc;
        assert!(
            dyn_ratio < low.freq_factor * 0.5,
            "dynamic power ratio {dyn_ratio:.3} should be well below the frequency ratio"
        );
        assert!(scaled.cpu_idle_w < base.cpu_idle_w);
    }
}
