//! End-to-end acceptance tests for `vmprobe-serve`.
//!
//! The daemon binary is spawned for real, driven over its Unix socket with
//! hand-written JSON lines, and held to the PR's acceptance bar:
//!
//! * healthy tenants receive result lines **byte-identical** to batch mode
//!   (the same `RunSummary` rendered through `protocol::result_line`);
//! * a poisoned tenant is quarantined after the configured threshold,
//!   visibly in `status`, and auto-released after its deterministic
//!   cooldown;
//! * SIGTERM (and the `shutdown` op) drain gracefully: every admitted
//!   request's response is delivered, then `bye`, then exit code 0;
//! * a mixed concurrent tenant population (size via `VMPROBE_SOAK_CLIENTS`)
//!   soaks the admission path without cross-tenant interference.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use vmprobe::serve::protocol::{observe_line, result_line, JsonValue};
use vmprobe::{ExperimentConfig, ObserveEngine, Runner, VmChoice};
use vmprobe_heap::CollectorKind;
use vmprobe_workloads::InputScale;

/// How many concurrent healthy clients the soak test drives (plus one
/// poisoned tenant). Override with `VMPROBE_SOAK_CLIENTS`.
fn soak_clients() -> usize {
    std::env::var("VMPROBE_SOAK_CLIENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .clamp(1, 64)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vmprobe-serve-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Spawn the daemon and wait for its socket to exist.
fn spawn_daemon(socket: &Path, extra: &[&str]) -> Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_vmprobe-serve"));
    cmd.arg("--socket")
        .arg(socket)
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
    let child = cmd.spawn().expect("daemon spawns");
    let deadline = Instant::now() + Duration::from_secs(30);
    while !socket.exists() {
        assert!(Instant::now() < deadline, "daemon never bound its socket");
        std::thread::sleep(Duration::from_millis(10));
    }
    child
}

struct Client {
    writer: UnixStream,
    reader: BufReader<UnixStream>,
}

impl Client {
    fn connect(socket: &Path) -> Self {
        let stream = UnixStream::connect(socket).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .expect("read timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client {
            writer: stream,
            reader,
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send newline");
    }

    /// Read lines until one matches `kind` (skipping chatter like
    /// `accepted` and `dropped`). Panics on EOF.
    fn read_kind(&mut self, kinds: &[&str]) -> (String, JsonValue) {
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line).expect("read line");
            assert!(n > 0, "daemon hung up while waiting for {kinds:?}");
            let line = line.trim_end().to_owned();
            let v = JsonValue::parse(&line).expect("daemon speaks JSON");
            let kind = v.get("kind").and_then(JsonValue::as_str).unwrap_or("");
            if kinds.contains(&kind) {
                return (line, v);
            }
        }
    }

    /// Read to EOF, returning every remaining line.
    fn drain(mut self) -> Vec<String> {
        let mut out = Vec::new();
        loop {
            let mut line = String::new();
            match self.reader.read_line(&mut line) {
                Ok(0) | Err(_) => return out,
                Ok(_) => out.push(line.trim_end().to_owned()),
            }
        }
    }
}

fn run_line(id: &str, tenant: &str, benchmark: &str, heap_mb: u32, faults: Option<&str>) -> String {
    let faults = match faults {
        Some(f) => format!(",\"faults\":\"{f}\""),
        None => String::new(),
    };
    format!(
        "{{\"op\":\"run\",\"id\":\"{id}\",\"tenant\":\"{tenant}\",\"benchmark\":\"{benchmark}\",\
         \"collector\":\"gencopy\",\"heap_mb\":{heap_mb},\"scale\":\"s10\"{faults}}}"
    )
}

/// The batch-mode baseline: the same cell run in-process, rendered
/// through the same canonical result renderer the daemon uses.
fn baseline_line(id: &str, benchmark: &str, heap_mb: u32) -> String {
    let cfg = ExperimentConfig {
        benchmark: benchmark.to_owned(),
        vm: VmChoice::Jikes(CollectorKind::GenCopy),
        heap_mb,
        platform: vmprobe_platform::PlatformKind::PentiumM,
        scale: InputScale::Reduced,
        trace_power: false,
        record_spans: false,
        verify: true,
        probe: vmprobe::ProbeSpec::default(),
    };
    let summary = Runner::new().run(&cfg).expect("baseline runs");
    result_line(id, &summary)
}

#[test]
fn healthy_results_are_byte_identical_to_batch_mode_and_sigterm_drains() {
    let dir = temp_dir("basic");
    let socket = dir.join("daemon.sock");
    let report = dir.join("report.json");
    let metrics = dir.join("metrics.prom");
    let mut daemon = spawn_daemon(
        &socket,
        &[
            "--jobs",
            "2",
            "--retries",
            "0",
            "--report-json",
            report.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
        ],
    );

    let mut alice = Client::connect(&socket);
    alice.send(&run_line("cell-1", "alice", "moldyn", 32, None));
    let (line, v) = alice.read_kind(&["result", "error"]);
    assert_eq!(v.get("kind").unwrap().as_str(), Some("result"), "{line}");
    assert_eq!(line, baseline_line("cell-1", "moldyn", 32));

    // A second tenant asking for the same cell shares the warm memo and
    // gets the exact same bytes.
    let mut bob = Client::connect(&socket);
    bob.send(&run_line("cell-1", "bob", "moldyn", 32, None));
    let (bob_line, _) = bob.read_kind(&["result", "error"]);
    assert_eq!(bob_line, line, "shared cache must not change a byte");

    // In-flight delivery across SIGTERM: admit a request, then terminate.
    // (The executor races the acceptance ack, so the result may already
    // be queued when the ack is read — tolerate both orders.)
    alice.send(&run_line("cell-2", "alice", "search", 32, None));
    let (first, v) = alice.read_kind(&["accepted", "result"]);
    Command::new("kill")
        .args(["-TERM", &daemon.id().to_string()])
        .status()
        .expect("kill runs");

    // The admitted cell's result still arrives, then the goodbye.
    let line2 = if v.get("kind").unwrap().as_str() == Some("accepted") {
        let (line2, v2) = alice.read_kind(&["result", "error"]);
        assert_eq!(v2.get("kind").unwrap().as_str(), Some("result"), "{line2}");
        line2
    } else {
        first
    };
    assert_eq!(line2, baseline_line("cell-2", "search", 32));
    alice.read_kind(&["bye"]);
    assert!(alice.drain().is_empty(), "nothing after bye");

    let status = daemon.wait().expect("daemon exits");
    assert_eq!(status.code(), Some(0), "graceful SIGTERM exit");
    // Final artifacts flushed on drain.
    let report = std::fs::read_to_string(&report).expect("report written");
    assert!(report.contains("\"runs_ok\":2"), "report: {report}");
    let metrics = std::fs::read_to_string(&metrics).expect("metrics written");
    assert!(
        metrics.contains("vmprobe_serve_requests_total 3"),
        "metrics: {metrics}"
    );
    assert!(
        metrics.contains("vmprobe_serve_results_total 3"),
        "metrics: {metrics}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn observe_requests_run_inline_and_match_the_batch_engine() {
    let dir = temp_dir("observe");
    let socket = dir.join("daemon.sock");
    let metrics = dir.join("metrics.prom");
    let mut daemon = spawn_daemon(
        &socket,
        &[
            "--jobs",
            "2",
            "--retries",
            "0",
            "--metrics-out",
            metrics.to_str().unwrap(),
        ],
    );

    let mut alice = Client::connect(&socket);
    alice.send(
        r#"{"op":"observe","id":"obs-1","tenant":"alice","benchmark":"moldyn","collector":"gencopy","heap_mb":32,"scale":"s10","periods":"40us,400us"}"#,
    );
    let (line, v) = alice.read_kind(&["observe", "error"]);
    assert_eq!(v.get("kind").unwrap().as_str(), Some("observe"), "{line}");

    // The daemon's bytes must match the in-process engine rendered through
    // the same canonical renderer — observe reports are deterministic.
    let cfg = ExperimentConfig {
        benchmark: "moldyn".to_owned(),
        vm: VmChoice::Jikes(CollectorKind::GenCopy),
        heap_mb: 32,
        platform: vmprobe_platform::PlatformKind::PentiumM,
        scale: InputScale::Reduced,
        trace_power: false,
        record_spans: false,
        verify: true,
        probe: vmprobe::ProbeSpec::default(),
    };
    let report = ObserveEngine::new(vec![40_000, 400_000])
        .run(std::slice::from_ref(&cfg))
        .expect("baseline sweep runs");
    assert_eq!(line, observe_line("obs-1", &report));

    // A grid over the serve cap is refused as a typed limit, not executed.
    alice.send(
        r#"{"op":"observe","id":"obs-2","tenant":"alice","benchmark":"moldyn","periods":"1us,2us,3us,4us,5us"}"#,
    );
    let (eline, ev) = alice.read_kind(&["error"]);
    assert_eq!(
        ev.get("code").and_then(JsonValue::as_str),
        Some("limit_exceeded"),
        "{eline}"
    );

    Command::new("kill")
        .args(["-TERM", &daemon.id().to_string()])
        .status()
        .expect("kill runs");
    alice.read_kind(&["bye"]);
    let status = daemon.wait().expect("daemon exits");
    assert_eq!(status.code(), Some(0), "graceful exit");
    let metrics = std::fs::read_to_string(&metrics).expect("metrics written");
    assert!(
        metrics.contains("vmprobe_serve_observe_total 1"),
        "metrics: {metrics}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn poisoned_tenant_is_quarantined_released_and_isolated() {
    let dir = temp_dir("quarantine");
    let socket = dir.join("daemon.sock");
    let mut daemon = spawn_daemon(
        &socket,
        &[
            "--jobs",
            "2",
            "--retries",
            "0",
            "--quarantine-threshold",
            "2",
            "--quarantine-cooldown",
            "4",
        ],
    );

    let mut mallory = Client::connect(&socket);
    // Two failing requests: vm_fault, vm_fault → quarantine entered.
    // Distinct seeds make distinct cells, so the runner's per-config
    // negative memo is not what rejects the second one.
    for seed in [1, 2] {
        mallory.send(&run_line(
            &format!("poison-{seed}"),
            "mallory",
            "moldyn",
            32,
            Some(&format!("oom@1,seed={seed}")),
        ));
        let (line, v) = mallory.read_kind(&["result", "error"]);
        assert_eq!(
            v.get("code").and_then(JsonValue::as_str),
            Some("vm_fault"),
            "{line}"
        );
    }

    // Admission seqs so far: 1, 2 (both mallory). The second failure was
    // recorded at seq 2 → release at seq 6. Seqs 3, 4, 5 must be refused,
    // seq 6 re-admitted.
    for attempt in 3..6 {
        mallory.send(&run_line(
            &format!("poison-{attempt}"),
            "mallory",
            "moldyn",
            32,
            Some("oom@1,seed=9"),
        ));
        let (line, v) = mallory.read_kind(&["error"]);
        assert_eq!(
            v.get("code").and_then(JsonValue::as_str),
            Some("quarantined"),
            "attempt {attempt}: {line}"
        );
    }

    // Quarantine is visible in status while it holds… briefly: check via
    // a second connection (status does not bump the admission clock).
    let mut observer = Client::connect(&socket);
    observer.send(r#"{"op":"status"}"#);
    let (status_line, status) = observer.read_kind(&["status"]);
    let tenants = match status.get("tenants") {
        Some(JsonValue::Arr(items)) => items.clone(),
        other => panic!("tenants missing in {status_line}: {other:?}"),
    };
    let mallory_row = tenants
        .iter()
        .find(|t| t.get("tenant").and_then(JsonValue::as_str) == Some("mallory"))
        .unwrap_or_else(|| panic!("mallory not in status: {status_line}"));
    assert_eq!(
        mallory_row.get("quarantined"),
        Some(&JsonValue::Bool(true)),
        "{status_line}"
    );
    assert_eq!(
        mallory_row
            .get("release_at_seq")
            .and_then(JsonValue::as_u64),
        Some(6),
        "{status_line}"
    );

    // Seq 6: the cooldown elapsed exactly — re-admitted (and the poison
    // fails again, as a vm_fault, not a quarantine refusal).
    mallory.send(&run_line(
        "poison-return",
        "mallory",
        "moldyn",
        32,
        Some("oom@1,seed=10"),
    ));
    let (line, v) = mallory.read_kind(&["error"]);
    assert_eq!(
        v.get("code").and_then(JsonValue::as_str),
        Some("vm_fault"),
        "released request executes again: {line}"
    );

    // A healthy tenant was never affected: bytes identical to batch mode.
    let mut alice = Client::connect(&socket);
    alice.send(&run_line("clean", "alice", "search", 32, None));
    let (result, _) = alice.read_kind(&["result"]);
    assert_eq!(result, baseline_line("clean", "search", 32));

    // The shutdown op drains exactly like SIGTERM.
    alice.send(r#"{"op":"shutdown"}"#);
    alice.read_kind(&["draining"]);
    alice.read_kind(&["bye"]);
    let status = daemon.wait().expect("daemon exits");
    assert_eq!(status.code(), Some(0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_programs_are_rejected_at_admission_without_touching_quarantine() {
    let dir = temp_dir("verify");
    let socket = dir.join("daemon.sock");
    let mut daemon = spawn_daemon(
        &socket,
        &[
            "--jobs",
            "2",
            "--retries",
            "0",
            "--quarantine-threshold",
            "2",
            "--quarantine-cooldown",
            "64",
        ],
    );

    let mut carol = Client::connect(&socket);

    // The merge-point regression program: both branch arms reach `merge`
    // at depth 1, one with an int and one with a float, and the merged
    // value feeds an integer add. The old structural verifier accepted
    // this shape (depths agree); the dataflow verifier must reject it.
    let merge_conflict = ".method main 0 0 ret\\n const_i 1\\n br_true thenarm\\n \
                          const_f 2.0\\n jump merge\\nthenarm: const_i 3\\n\
                          merge: const_i 1\\n add\\n ret_value";
    // A structurally broken program (dangling branch target).
    let dangling = ".method main 0 0\\n jump @99\\n ret";
    // One that does not even assemble.
    let garbage = ".method main 0 0\\n frobnicate\\n ret";

    // More rejections than the quarantine threshold: none of them may
    // count against the tenant.
    for (i, program) in [merge_conflict, dangling, garbage, merge_conflict]
        .iter()
        .enumerate()
    {
        carol.send(&format!(
            "{{\"op\":\"verify\",\"id\":\"v{i}\",\"program\":\"{program}\"}}"
        ));
        let (line, v) = carol.read_kind(&["error", "verified"]);
        assert_eq!(
            v.get("code").and_then(JsonValue::as_str),
            Some("verify_rejected"),
            "program {i}: {line}"
        );
        assert_eq!(
            v.get("id").and_then(JsonValue::as_str),
            Some(format!("v{i}").as_str())
        );
    }

    // A well-formed program passes both verifier tiers over the wire.
    let good = ".method main 0 1 ret\\n const_i 1\\n br_true thenarm\\n \
                const_i 2\\n jump merge\\nthenarm: const_i 3\\n\
                merge: store 0\\n load 0\\n ret_value";
    carol.send(&format!(
        "{{\"op\":\"verify\",\"id\":\"ok\",\"program\":\"{good}\"}}"
    ));
    let (line, v) = carol.read_kind(&["error", "verified"]);
    assert_eq!(v.get("kind").unwrap().as_str(), Some("verified"), "{line}");
    assert_eq!(v.get("methods").and_then(JsonValue::as_u64), Some(1));

    // The rejections consumed no pool slot and never touched quarantine:
    // the same tenant's run is admitted and bit-identical to batch mode.
    carol.send(&run_line("after-verify", "carol", "search", 32, None));
    let (result, _) = carol.read_kind(&["result"]);
    assert_eq!(result, baseline_line("after-verify", "search", 32));

    // Status reports the rejections and an empty quarantine book.
    carol.send(r#"{"op":"status"}"#);
    let (status_line, status) = carol.read_kind(&["status"]);
    assert_eq!(
        status.get("verify_rejected").and_then(JsonValue::as_u64),
        Some(4),
        "{status_line}"
    );
    assert!(
        !status_line.contains("\"quarantined\":true"),
        "verify rejections must not quarantine anyone: {status_line}"
    );

    carol.send(r#"{"op":"shutdown"}"#);
    carol.read_kind(&["draining"]);
    carol.read_kind(&["bye"]);
    let status = daemon.wait().expect("daemon exits");
    assert_eq!(status.code(), Some(0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_mixed_tenants_soak_without_interference() {
    let dir = temp_dir("soak");
    let socket = dir.join("daemon.sock");
    let metrics = dir.join("metrics.prom");
    let mut daemon = spawn_daemon(
        &socket,
        &[
            "--jobs",
            "4",
            "--retries",
            "0",
            "--quarantine-threshold",
            "2",
            "--quarantine-cooldown",
            "64",
            "--queue-cap",
            "256",
            "--metrics-out",
            metrics.to_str().unwrap(),
        ],
    );

    let clients = soak_clients();
    // Benchmarks cycle per client; baselines computed once, in-process.
    let cells: Vec<(String, u32)> = ["moldyn", "search", "_209_db"]
        .iter()
        .cycle()
        .take(clients)
        .enumerate()
        .map(|(i, b)| ((*b).to_owned(), 32 + 16 * ((i as u32) % 2)))
        .collect();
    let baselines: Vec<String> = cells
        .iter()
        .map(|(b, heap)| baseline_line("soak", b, *heap))
        .collect();

    let sock: &Path = &socket;
    std::thread::scope(|scope| {
        // One poisoned tenant hammers failing configs throughout.
        scope.spawn(move || {
            let mut poison = Client::connect(sock);
            for i in 0..6 {
                poison.send(&run_line(
                    &format!("p{i}"),
                    "poisoned",
                    "moldyn",
                    32,
                    Some(&format!("oom@1,seed={i}")),
                ));
                let (line, v) = poison.read_kind(&["error"]);
                let code = v.get("code").and_then(JsonValue::as_str).unwrap();
                assert!(
                    code == "vm_fault" || code == "quarantined",
                    "poisoned tenant saw '{code}': {line}"
                );
            }
        });
        for (i, ((bench, heap), baseline)) in cells.iter().zip(&baselines).enumerate() {
            scope.spawn(move || {
                let mut c = Client::connect(sock);
                let tenant = format!("tenant-{i}");
                // Three rounds over the same cell: first computes, the
                // rest replay from the shared memo — all byte-identical.
                for round in 0..3 {
                    c.send(&run_line("soak", &tenant, bench, *heap, None));
                    let (line, v) = c.read_kind(&["result", "error"]);
                    assert_eq!(
                        v.get("kind").unwrap().as_str(),
                        Some("result"),
                        "tenant {i} round {round}: {line}"
                    );
                    assert_eq!(
                        &line, baseline,
                        "tenant {i} round {round} diverged from batch mode"
                    );
                }
            });
        }
    });

    // Everyone is done; the queue must be empty and the poisoned tenant
    // on the books.
    let mut observer = Client::connect(&socket);
    observer.send(r#"{"op":"status"}"#);
    let (status_line, status) = observer.read_kind(&["status"]);
    assert_eq!(
        status.get("queued").and_then(JsonValue::as_u64),
        Some(0),
        "{status_line}"
    );
    assert!(
        status_line.contains("\"tenant\":\"poisoned\""),
        "poisoned tenant visible: {status_line}"
    );

    Command::new("kill")
        .args(["-TERM", &daemon.id().to_string()])
        .status()
        .expect("kill runs");
    observer.read_kind(&["bye"]);
    let status = daemon.wait().expect("daemon exits");
    assert_eq!(status.code(), Some(0), "soak ends in a clean exit");
    let metrics = std::fs::read_to_string(&metrics).expect("metrics written");
    // The poisoned tenant entered quarantine at least once (a very large
    // client count can outrun the cooldown and re-trigger it).
    let entered: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("vmprobe_serve_quarantine_entered_total "))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("quarantine counter missing: {metrics}"));
    assert!(entered >= 1, "metrics: {metrics}");
    std::fs::remove_dir_all(&dir).ok();
}
