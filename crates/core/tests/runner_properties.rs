//! Property tests for the supervised runner's retry/quarantine discipline.

use proptest::prelude::*;
use vmprobe::{ExperimentConfig, ExperimentError, FaultPlan, Runner};
use vmprobe_heap::CollectorKind;
use vmprobe_workloads::InputScale;

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    #[test]
    fn a_quarantined_config_is_never_retried(
        retries in 0u32..4,
        oom_at in 1u64..50,
        extra_runs in 1u64..4,
    ) {
        let plan = FaultPlan::parse(&format!("oom@{oom_at}")).unwrap();
        let mut runner = Runner::new().retries(retries).with_faults(plan);
        let mut cfg = ExperimentConfig::jikes("moldyn", CollectorKind::GenCopy, 32);
        cfg.scale = InputScale::Reduced;

        // First request: one initial attempt plus `retries` retries, then
        // quarantine. The underlying error surfaces on this exhaustion.
        let first = runner.run(&cfg);
        prop_assert!(first.is_err());
        let exhausted = u64::from(retries) + 1;
        prop_assert_eq!(runner.report().attempts_failed, exhausted);
        prop_assert_eq!(runner.report().retries, u64::from(retries));
        prop_assert_eq!(runner.report().quarantined.len(), 1);

        // Every later request must be refused from the negative cache
        // without executing: attempt counters stay frozen.
        for i in 0..extra_runs {
            match runner.run(&cfg) {
                Err(ExperimentError::Quarantined { attempts, .. }) => {
                    prop_assert_eq!(u64::from(attempts), exhausted);
                }
                other => prop_assert!(false, "expected Quarantined, got {other:?}"),
            }
            prop_assert_eq!(runner.report().attempts_failed, exhausted);
            prop_assert_eq!(runner.report().retries, u64::from(retries));
            prop_assert_eq!(runner.report().quarantine_hits, i + 1);
        }
        prop_assert_eq!(runner.report().quarantined.len(), 1);
    }

    /// Exhaustion edge: a retry budget of zero means exactly one attempt,
    /// zero retries, zero virtual backoff — quarantine happens on the very
    /// first failure, never a second execution.
    #[test]
    fn retry_budget_zero_quarantines_on_the_first_failure(
        oom_at in 1u64..50,
    ) {
        let plan = FaultPlan::parse(&format!("oom@{oom_at}")).unwrap();
        let mut runner = Runner::new().retries(0).with_faults(plan);
        let mut cfg = ExperimentConfig::jikes("moldyn", CollectorKind::GenCopy, 32);
        cfg.scale = InputScale::Reduced;

        let first = runner.run(&cfg);
        prop_assert!(matches!(first, Err(ExperimentError::Vm { .. })));
        prop_assert_eq!(runner.report().attempts_failed, 1);
        prop_assert_eq!(runner.report().retries, 0);
        prop_assert_eq!(runner.report().backoff_virtual_ms, 0, "no retry, no backoff");
        prop_assert_eq!(runner.report().quarantined.len(), 1);
        prop_assert_eq!(runner.report().quarantined[0].attempts, 1);
    }

    /// Exhaustion edge: quarantine fires at exactly `1 + retries`
    /// attempts — never one early, never one late — and the quarantine
    /// record agrees with the attempt ledger.
    #[test]
    fn quarantine_triggers_on_the_exact_attempt_threshold(
        retries in 0u32..5,
    ) {
        let plan = FaultPlan::parse("oom@1").unwrap();
        let mut runner = Runner::new().retries(retries).with_faults(plan);
        let mut cfg = ExperimentConfig::jikes("search", CollectorKind::GenCopy, 32);
        cfg.scale = InputScale::Reduced;

        prop_assert!(runner.run(&cfg).is_err());
        let threshold = u64::from(retries) + 1;
        prop_assert_eq!(runner.report().attempts_failed, threshold);
        prop_assert_eq!(runner.report().quarantined.len(), 1);
        prop_assert_eq!(u64::from(runner.report().quarantined[0].attempts), threshold);
        // One more request must not add a single attempt past the
        // threshold.
        prop_assert!(matches!(
            runner.run(&cfg),
            Err(ExperimentError::Quarantined { .. })
        ));
        prop_assert_eq!(runner.report().attempts_failed, threshold);
    }

    /// Exhaustion edge: the virtual backoff schedule is the capped
    /// geometric series 100, 200, 400, … ms, clamped at 10 000 ms — once
    /// the cap is reached every further retry charges exactly the cap.
    #[test]
    fn backoff_accumulates_the_capped_geometric_series(
        retries in 0u32..14,
    ) {
        let plan = FaultPlan::parse("oom@1").unwrap();
        let mut runner = Runner::new().retries(retries).with_faults(plan);
        let mut cfg = ExperimentConfig::jikes("moldyn", CollectorKind::GenCopy, 32);
        cfg.scale = InputScale::Reduced;
        prop_assert!(runner.run(&cfg).is_err());

        let expected: u64 = (1..=u64::from(retries))
            .map(|n| (100u64 << (n - 1).min(20)).min(10_000))
            .sum();
        prop_assert_eq!(runner.report().backoff_virtual_ms, expected);
        // Past the eighth retry the cap dominates: totals grow linearly,
        // not geometrically (the cap actually engaged for high budgets).
        if retries >= 8 {
            let below_cap: u64 = (1..8).map(|n| 100u64 << (n - 1)).sum();
            let capped = u64::from(retries) - 7;
            prop_assert_eq!(
                runner.report().backoff_virtual_ms,
                below_cap + capped * 10_000
            );
        }
    }
}
