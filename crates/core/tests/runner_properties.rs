//! Property tests for the supervised runner's retry/quarantine discipline.

use proptest::prelude::*;
use vmprobe::{ExperimentConfig, ExperimentError, FaultPlan, Runner};
use vmprobe_heap::CollectorKind;
use vmprobe_workloads::InputScale;

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    #[test]
    fn a_quarantined_config_is_never_retried(
        retries in 0u32..4,
        oom_at in 1u64..50,
        extra_runs in 1u64..4,
    ) {
        let plan = FaultPlan::parse(&format!("oom@{oom_at}")).unwrap();
        let mut runner = Runner::new().retries(retries).with_faults(plan);
        let mut cfg = ExperimentConfig::jikes("moldyn", CollectorKind::GenCopy, 32);
        cfg.scale = InputScale::Reduced;

        // First request: one initial attempt plus `retries` retries, then
        // quarantine. The underlying error surfaces on this exhaustion.
        let first = runner.run(&cfg);
        prop_assert!(first.is_err());
        let exhausted = u64::from(retries) + 1;
        prop_assert_eq!(runner.report().attempts_failed, exhausted);
        prop_assert_eq!(runner.report().retries, u64::from(retries));
        prop_assert_eq!(runner.report().quarantined.len(), 1);

        // Every later request must be refused from the negative cache
        // without executing: attempt counters stay frozen.
        for i in 0..extra_runs {
            match runner.run(&cfg) {
                Err(ExperimentError::Quarantined { attempts, .. }) => {
                    prop_assert_eq!(u64::from(attempts), exhausted);
                }
                other => prop_assert!(false, "expected Quarantined, got {other:?}"),
            }
            prop_assert_eq!(runner.report().attempts_failed, exhausted);
            prop_assert_eq!(runner.report().retries, u64::from(retries));
            prop_assert_eq!(runner.report().quarantine_hits, i + 1);
        }
        prop_assert_eq!(runner.report().quarantined.len(), 1);
    }
}
