//! Integration tests for the `vmprobe-run` command-line interface.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vmprobe-run"))
}

#[test]
fn runs_an_experiment_and_prints_a_report() {
    let out = bin()
        .args(["moldyn", "gencopy", "32"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("experiment : moldyn on Jikes/GenCopy @ 32 MB"));
    assert!(text.contains("components :"));
    assert!(text.contains("App"));
    assert!(text.contains("jvm energy :"));
}

#[test]
fn kaffe_and_pxa_flags_are_honoured() {
    let out = bin()
        .args(["_209_db", "kaffe", "16", "pxa255", "s10"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Kaffe"));
    assert!(text.contains("Pxa255"));
}

#[test]
fn unknown_benchmark_fails_with_usage() {
    let out = bin().args(["_999_bogus"]).output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("unknown benchmark") || err.contains("usage"),
        "stderr: {err}"
    );
}

#[test]
fn no_arguments_prints_benchmark_list() {
    let out = bin().output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage"));
    assert!(err.contains("_213_javac"));
    assert!(err.contains("moldyn"));
}
