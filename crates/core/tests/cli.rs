//! Integration tests for the `vmprobe-run` command-line interface.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vmprobe-run"))
}

#[test]
fn runs_an_experiment_and_prints_a_report() {
    let out = bin()
        .args(["moldyn", "gencopy", "32"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("experiment : moldyn on Jikes/GenCopy @ 32 MB"));
    assert!(text.contains("components :"));
    assert!(text.contains("App"));
    assert!(text.contains("jvm energy :"));
}

#[test]
fn kaffe_and_pxa_flags_are_honoured() {
    let out = bin()
        .args(["_209_db", "kaffe", "16", "pxa255", "s10"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Kaffe"));
    assert!(text.contains("Pxa255"));
}

#[test]
fn unknown_benchmark_fails_with_usage() {
    let out = bin().args(["_999_bogus"]).output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("unknown benchmark") || err.contains("usage"),
        "stderr: {err}"
    );
}

#[test]
fn no_arguments_prints_benchmark_list() {
    let out = bin().output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage"));
    assert!(err.contains("_213_javac"));
    assert!(err.contains("moldyn"));
}

#[test]
fn unknown_collector_gets_a_specific_error_not_the_usage_dump() {
    let out = bin()
        .args(["moldyn", "concmark"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("unknown collector 'concmark'"),
        "stderr: {err}"
    );
    assert!(!err.contains("benchmarks:"), "usage dump leaked: {err}");
}

#[test]
fn unknown_benchmark_gets_a_specific_error_not_the_usage_dump() {
    let out = bin().args(["_999_bogus"]).output().expect("binary runs");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("unknown benchmark '_999_bogus'"),
        "stderr: {err}"
    );
    assert!(!err.contains("benchmarks:"), "usage dump leaked: {err}");
}

#[test]
fn fault_flags_inject_and_report() {
    let out = bin()
        .args([
            "moldyn",
            "gencopy",
            "32",
            "p6",
            "s10",
            "--faults",
            "drop=0.05,dup=0.01",
            "--seed",
            "42",
            "--report-json",
            "-",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("faults     :"), "stdout: {text}");
    assert!(text.contains("degradation:"), "stdout: {text}");
    assert!(text.contains("\"runs_ok\":1"), "stdout: {text}");
    assert!(text.contains("\"samples_dropped\""), "stdout: {text}");
}

#[test]
fn injected_oom_is_retried_then_surfaces_with_attempt_count() {
    let out = bin()
        .args([
            "moldyn",
            "gencopy",
            "32",
            "p6",
            "s10",
            "--faults",
            "oom@100",
            "--retries",
            "1",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("injected heap exhaustion"), "stderr: {err}");
    assert!(err.contains("2 attempts"), "stderr: {err}");
}

#[test]
fn bad_flag_values_fail_clearly() {
    let out = bin()
        .args(["moldyn", "--retries", "lots"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--retries"), "stderr: {err}");

    let out = bin()
        .args(["moldyn", "--faults", "zap=1"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:"), "stderr: {err}");
}

#[test]
fn telemetry_flags_write_trace_and_metrics_files() {
    let dir = std::env::temp_dir().join(format!("vmprobe-cli-telemetry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace = dir.join("trace.json");
    let metrics = dir.join("metrics.prom");
    let out = bin()
        .args([
            "moldyn",
            "gencopy",
            "32",
            "p6",
            "s10",
            "--trace-out",
            trace.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let t = std::fs::read_to_string(&trace).expect("trace written");
    assert!(t.starts_with("{\"schema_version\""), "trace: {t}");
    assert!(t.contains("\"traceEvents\""), "trace: {t}");
    let m = std::fs::read_to_string(&metrics).expect("metrics written");
    assert!(m.contains("vmprobe_schema_version"), "metrics: {m}");
    assert!(m.contains("vmprobe_cells_executed_total 1"), "metrics: {m}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn default_run_is_quiet_and_verbose_narrates_to_stderr() {
    let out = bin()
        .args(["moldyn", "gencopy", "32", "p6", "s10"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert!(
        out.stderr.is_empty(),
        "default run must be quiet on stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = bin()
        .args(["moldyn", "gencopy", "32", "p6", "s10", "--verbose"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("[vmprobe] running moldyn"), "stderr: {err}");
    assert!(err.contains("telemetry summary"), "stderr: {err}");
    // The narration stays off stdout, where the report lives.
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(!text.contains("[vmprobe]"), "stdout polluted: {text}");
}

#[test]
fn telemetry_overhead_mode_reports_a_tax_line() {
    let out = bin()
        .args([
            "moldyn",
            "gencopy",
            "32",
            "p6",
            "s10",
            "--telemetry-overhead",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("telemetry overhead: bare") && text.contains("tax"),
        "stdout: {text}"
    );
}

#[test]
fn cache_dir_round_trip_hits_on_the_second_run() {
    let dir = std::env::temp_dir().join(format!("vmprobe-cli-cache-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let cache = dir.join("cache");
    let args = [
        "moldyn",
        "gencopy",
        "32",
        "p6",
        "s10",
        "--cache-dir",
        cache.to_str().unwrap(),
        "--resume",
    ];
    let cold = bin().args(args).output().expect("binary runs");
    assert!(
        cold.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&cold.stderr)
    );
    let err = String::from_utf8_lossy(&cold.stderr);
    assert!(
        err.contains("resume: 0 cells restored") && err.contains("1 recomputed (1 stored"),
        "cold stderr: {err}"
    );

    let warm = bin().args(args).output().expect("binary runs");
    assert!(warm.status.success());
    let err = String::from_utf8_lossy(&warm.stderr);
    assert!(
        err.contains("resume: 1 cells restored") && err.contains("0 recomputed"),
        "warm stderr: {err}"
    );
    // Everything but the host wall-clock reading must match.
    let strip_wall = |out: &[u8]| {
        String::from_utf8_lossy(out)
            .lines()
            .filter(|l| !l.starts_with("simulated"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip_wall(&cold.stdout), strip_wall(&warm.stdout));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn no_cache_disables_the_cache_dir() {
    let dir = std::env::temp_dir().join(format!("vmprobe-cli-nocache-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let cache = dir.join("cache");
    let out = bin()
        .args([
            "moldyn",
            "gencopy",
            "32",
            "p6",
            "s10",
            "--cache-dir",
            cache.to_str().unwrap(),
            "--no-cache",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(!cache.exists(), "--no-cache must not create the cache dir");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_without_cache_dir_is_an_error() {
    let out = bin()
        .args(["moldyn", "--resume"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--resume needs --cache-dir"), "stderr: {err}");
}

#[test]
fn no_cache_conflicts_with_resume() {
    // Fail fast, before any work: the conflict is nonsense regardless of
    // whether --cache-dir is present.
    let out = bin()
        .args(["moldyn", "--no-cache", "--resume", "--cache-dir", "x"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--no-cache cannot be combined with --resume"),
        "stderr: {err}"
    );
    assert!(out.stdout.is_empty(), "no work before the conflict check");

    let out = bin()
        .args(["moldyn", "--resume", "--no-cache"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--no-cache cannot be combined with --resume"),
        "order-independent: {err}"
    );
}

#[test]
fn cache_dir_conflicts_with_telemetry_overhead() {
    let out = bin()
        .args(["moldyn", "--cache-dir", "x", "--telemetry-overhead"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--cache-dir cannot be combined with --telemetry-overhead"),
        "stderr: {err}"
    );
}

#[test]
fn boolean_flags_reject_inline_values() {
    let out = bin()
        .args(["moldyn", "--verbose=yes"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--verbose takes no value"), "stderr: {err}");
}
