//! Acceptance tests: figure sweeps degrade gracefully under injected
//! measurement faults and persistent per-benchmark failures.

use vmprobe::{figures, ExperimentConfig, FaultPlan, Runner};
use vmprobe_heap::CollectorKind;
use vmprobe_workloads::all_benchmarks;

const HEAPS: [u32; 2] = [32, 64];

#[test]
fn fig6_sweep_completes_under_five_percent_sample_drop() {
    let plan = FaultPlan::parse("drop=0.05,seed=11").unwrap();
    let mut runner = Runner::new().with_faults(plan);
    let fig = figures::fig6(&mut runner, &figures::all_benchmark_names(), &HEAPS)
        .expect("sweep completes");

    assert!(!fig.rows.is_empty());
    assert!(
        fig.failed.is_empty(),
        "a 5% sample-drop plan must not fail cells: {:?}",
        fig.failed
    );

    // Every cell's reported energy stayed within its own documented bound.
    // These are cache hits — the sweep above already executed each config.
    for b in all_benchmarks() {
        for &h in &HEAPS {
            let cfg = ExperimentConfig::jikes(b.name, CollectorKind::SemiSpace, h);
            let run = runner.run(&cfg).expect("cached cell");
            assert!(
                run.report.energy_deviation_j() <= run.report.faults.energy_error_bound_j() + 1e-9,
                "{} @ {h} MB: deviation {} exceeds bound {}",
                b.name,
                run.report.energy_deviation_j(),
                run.report.faults.energy_error_bound_j()
            );
        }
    }

    let report = runner.report();
    assert!(report.faults.samples_dropped > 0, "plan never fired");
    assert_eq!(
        report.runs_ok,
        (all_benchmarks().len() * HEAPS.len()) as u64
    );

    let json = report.to_json();
    assert!(json.contains("\"samples_dropped\":"), "json: {json}");
    assert!(json.contains("\"energy_error_bound_j\":"), "json: {json}");
    assert!(json.contains("\"quarantined\":[]"), "json: {json}");
}

#[test]
fn persistent_failure_is_quarantined_and_other_cells_still_fill() {
    let mut runner = Runner::new()
        .retries(1)
        .fault_override("_213_javac", FaultPlan::parse("oom@1").unwrap());
    let fig = figures::fig6(&mut runner, &figures::all_benchmark_names(), &[32])
        .expect("sweep completes");

    // The poisoned benchmark produced no rows; everything else did.
    assert!(fig.rows.iter().all(|r| r.benchmark != "_213_javac"));
    let expected_ok = all_benchmarks().len() - 1;
    assert_eq!(fig.rows.len(), expected_ok);

    // Its cell is reported as failed and quarantined after the configured
    // retry budget (1 initial attempt + 1 retry).
    assert_eq!(fig.failed.len(), 1);
    assert_eq!(fig.failed[0].benchmark, "_213_javac");

    let report = runner.report();
    assert_eq!(report.quarantined.len(), 1);
    assert_eq!(report.quarantined[0].benchmark, "_213_javac");
    assert_eq!(report.quarantined[0].attempts, 2);
    assert_eq!(report.runs_ok, expected_ok as u64);
    assert_eq!(report.attempts_failed, 2);

    let json = report.to_json();
    assert!(json.contains("\"quarantined\":[{"), "json: {json}");
    assert!(json.contains("_213_javac"), "json: {json}");
    assert!(json.contains("\"injected_oom\":2"), "json: {json}");
}
