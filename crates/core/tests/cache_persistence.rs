//! Integration tests for the persistent experiment cache: warm runs must
//! restore cells bit-identically without recomputing, interrupted sweeps
//! must resume paying only for the missing cells, and on-disk damage must
//! be recomputed transparently — never trusted, never fatal.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use vmprobe::{figures, CounterId, ExperimentCache, ExperimentConfig, Runner, Telemetry};
use vmprobe_heap::CollectorKind;
use vmprobe_workloads::InputScale;

const QUICK_BENCHMARKS: [&str; 2] = ["_209_db", "moldyn"];
const QUICK_HEAPS: [u32; 2] = [32, 64];

fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "vmprobe-cachetest-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn cached_runner(dir: &PathBuf, jobs: usize) -> (Runner, Telemetry) {
    let telemetry = Telemetry::counters_only();
    let runner = Runner::new()
        .jobs(jobs)
        .scale(InputScale::Reduced)
        .with_telemetry(telemetry.clone())
        .with_cache(Arc::new(ExperimentCache::open(dir).expect("open cache")));
    (runner, telemetry)
}

fn grid() -> Vec<ExperimentConfig> {
    let mut configs = Vec::new();
    for bench in QUICK_BENCHMARKS {
        for heap in QUICK_HEAPS {
            for collector in [CollectorKind::GenCopy, CollectorKind::MarkSweep] {
                configs.push(ExperimentConfig::jikes(bench, collector, heap));
            }
        }
    }
    configs
}

#[test]
fn warm_figure_rendering_recomputes_nothing_and_is_byte_identical_across_jobs() {
    let dir = scratch_dir("warm");

    let (mut cold, cold_tel) = cached_runner(&dir, 4);
    let cold_text = figures::fig6(&mut cold, &QUICK_BENCHMARKS, &QUICK_HEAPS)
        .expect("cold sweep")
        .to_string();
    let executed = cold_tel.counter(CounterId::CellsExecuted);
    assert!(executed > 0, "cold sweep must compute its cells");
    assert_eq!(cold_tel.counter(CounterId::CacheStores), executed);
    assert_eq!(cold_tel.counter(CounterId::CacheHits), 0);

    for jobs in [1, 8] {
        let (mut warm, warm_tel) = cached_runner(&dir, jobs);
        let warm_text = figures::fig6(&mut warm, &QUICK_BENCHMARKS, &QUICK_HEAPS)
            .expect("warm sweep")
            .to_string();
        assert_eq!(
            warm_text, cold_text,
            "warm figure (jobs={jobs}) must be byte-identical to the cold one"
        );
        assert_eq!(
            warm_tel.counter(CounterId::CellsExecuted),
            0,
            "warm sweep (jobs={jobs}) recomputed cells"
        );
        assert_eq!(warm_tel.counter(CounterId::CacheHits), executed);
        assert_eq!(warm_tel.counter(CounterId::CacheCorrupt), 0);
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn killed_sweep_resumes_paying_only_for_the_missing_cells() {
    let dir = scratch_dir("resume");
    let configs = grid();
    let half = configs.len() / 2;

    // Reference pass on an uncached runner: what an uninterrupted sweep
    // produces.
    let mut reference = Runner::new().jobs(2).scale(InputScale::Reduced);
    let expect: Vec<_> = reference
        .run_batch(&configs)
        .into_iter()
        .map(|r| r.expect("reference cell"))
        .collect();

    // "Killed" sweep: a first process completes only half the grid, then
    // disappears (dropping the runner loses its in-memory memo; only the
    // cache directory survives).
    {
        let (mut partial, tel) = cached_runner(&dir, 2);
        for r in partial.run_batch(&configs[..half]) {
            r.expect("partial cell");
        }
        assert_eq!(tel.counter(CounterId::CellsExecuted), half as u64);
    }

    // Resumed sweep over the full grid: only the missing half is computed,
    // and every cell — restored or fresh — matches the reference run
    // bit for bit.
    let (mut resumed, tel) = cached_runner(&dir, 2);
    let got: Vec<_> = resumed
        .run_batch(&configs)
        .into_iter()
        .map(|r| r.expect("resumed cell"))
        .collect();
    assert_eq!(tel.counter(CounterId::CacheHits), half as u64);
    assert_eq!(
        tel.counter(CounterId::CellsExecuted),
        (configs.len() - half) as u64,
        "resume must recompute only the missing cells"
    );
    for (cfg, (a, b)) in configs.iter().zip(expect.iter().zip(&got)) {
        assert_eq!(
            a.report.total_energy.joules().to_bits(),
            b.report.total_energy.joules().to_bits(),
            "{cfg}: resumed energy differs from the uninterrupted run"
        );
        assert_eq!(
            a.report.edp.joule_seconds().to_bits(),
            b.report.edp.joule_seconds().to_bits(),
            "{cfg}: resumed EDP differs from the uninterrupted run"
        );
        assert_eq!(a.gc, b.gc, "{cfg}: GC stats differ");
        assert_eq!(a.vm, b.vm, "{cfg}: VM stats differ");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_entry_on_disk_is_recomputed_and_healed() {
    let dir = scratch_dir("corrupt");
    let cfg = ExperimentConfig::jikes("_209_db", CollectorKind::GenCopy, 32);

    let (mut cold, _) = cached_runner(&dir, 1);
    let clean = cold.run(&cfg).expect("cold run");

    // Flip bytes in the middle of the stored entry.
    let entry = std::fs::read_dir(&dir)
        .expect("read cache dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "entry"))
        .expect("one cache entry on disk");
    let mut bytes = std::fs::read(&entry).expect("read entry");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    bytes[mid + 1] ^= 0xff;
    std::fs::write(&entry, &bytes).expect("write damage");

    // A fresh runner sees the damage, recomputes, and matches the clean
    // result exactly; the rewritten entry then serves a third runner.
    let (mut hurt, tel) = cached_runner(&dir, 1);
    let recomputed = hurt.run(&cfg).expect("recomputed run");
    assert_eq!(tel.counter(CounterId::CacheCorrupt), 1);
    assert_eq!(tel.counter(CounterId::CellsExecuted), 1);
    assert_eq!(tel.counter(CounterId::CacheStores), 1);
    assert_eq!(
        clean.report.total_energy.joules().to_bits(),
        recomputed.report.total_energy.joules().to_bits(),
        "recomputed energy must match the pre-damage run"
    );

    let (mut healed, tel) = cached_runner(&dir, 1);
    let restored = healed.run(&cfg).expect("restored run");
    assert_eq!(tel.counter(CounterId::CacheHits), 1);
    assert_eq!(tel.counter(CounterId::CellsExecuted), 0);
    assert_eq!(
        clean.report.total_energy.joules().to_bits(),
        restored.report.total_energy.joules().to_bits()
    );

    std::fs::remove_dir_all(&dir).ok();
}
