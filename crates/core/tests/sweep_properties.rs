//! Concurrency properties of the sweep engine: no configuration is ever
//! executed twice, quarantined configurations are never re-run, and retry
//! accounting is exact — under real thread interleavings.
//!
//! The build is offline (no `loom`), so interleavings are explored the
//! pragmatic way: many worker threads, many repetitions, tiny tasks that
//! maximize contention on the memo shards, and atomic execution counters
//! asserted exactly.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use vmprobe::{
    ExperimentConfig, ExperimentError, FaultPlan, Runner, ShardedMemo, WorkStealingPool,
};
use vmprobe_heap::CollectorKind;
use vmprobe_workloads::InputScale;

fn quick(benchmark: &str, heap: u32) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::jikes(benchmark, CollectorKind::SemiSpace, heap);
    cfg.scale = InputScale::Reduced;
    cfg
}

#[test]
fn memo_computes_each_key_exactly_once_under_contention() {
    // 8 threads race get_or_compute over 32 keys, every thread requesting
    // every key; repeated to vary the interleaving.
    for round in 0..20 {
        let memo: ShardedMemo<usize> = ShardedMemo::new();
        let computes = AtomicUsize::new(0);
        let barrier = Barrier::new(8);
        std::thread::scope(|s| {
            for t in 0..8 {
                let memo = &memo;
                let computes = &computes;
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    for k in 0..32 {
                        // Stagger request order per thread so first-toucher
                        // varies between rounds.
                        let k = (k + t * 5 + round) % 32;
                        let key = format!("cell-{k}");
                        let (v, _) = memo.get_or_compute(&key, || {
                            computes.fetch_add(1, Ordering::SeqCst);
                            k
                        });
                        assert_eq!(v, k, "a waiter observed another key's value");
                    }
                });
            }
        });
        assert_eq!(
            computes.load(Ordering::SeqCst),
            32,
            "round {round}: some key was computed more than once (or not at all)"
        );
        assert_eq!(memo.len(), 32);
    }
}

#[test]
fn pool_runs_every_item_exactly_once_and_preserves_order() {
    for &jobs in &[1usize, 2, 3, 8, 17] {
        let pool = WorkStealingPool::new(jobs);
        let executions = AtomicUsize::new(0);
        let items: Vec<usize> = (0..203).collect();
        let out = pool.run(items, |_, i| {
            executions.fetch_add(1, Ordering::SeqCst);
            i * 2
        });
        assert_eq!(executions.load(Ordering::SeqCst), 203, "jobs={jobs}");
        assert_eq!(
            out,
            (0..203).map(|i| i * 2).collect::<Vec<_>>(),
            "jobs={jobs}: results must come back in submission order"
        );
    }
}

#[test]
fn batch_with_duplicates_executes_each_distinct_config_once() {
    // A batch that names every cell three times, executed on 8 workers:
    // the memo must collapse them to one execution each, with the report
    // counting each distinct run once.
    let mut runner = Runner::new().jobs(8);
    let mut batch = Vec::new();
    for heap in [32u32, 48, 64, 96] {
        for bench in ["_209_db", "search", "fop"] {
            for _ in 0..3 {
                batch.push(quick(bench, heap));
            }
        }
    }
    let results = runner.run_batch(&batch);
    assert_eq!(results.len(), 36);
    assert!(results.iter().all(Result::is_ok));
    assert_eq!(runner.runs_executed(), 12, "12 distinct cells");
    assert_eq!(runner.report().runs_ok, 12);
    // Same-cell duplicates share one Arc (no clone-and-rerun).
    for chunk in results.chunks(3) {
        let first = chunk[0].as_ref().unwrap();
        for r in chunk {
            assert!(Arc::ptr_eq(r.as_ref().unwrap(), first));
        }
    }
    // Resubmitting the whole batch is pure cache traffic.
    let again = runner.run_batch(&batch);
    assert_eq!(runner.runs_executed(), 12, "resubmission re-executed cells");
    assert!(again.iter().all(Result::is_ok));
}

#[test]
fn quarantined_configs_are_never_rerun_even_under_parallel_resubmission() {
    let mut runner = Runner::new()
        .jobs(8)
        .retries(2)
        .fault_override("moldyn", FaultPlan::parse("oom@1").unwrap());
    let cfg = quick("moldyn", 32);

    // Eight parallel requests for the same doomed cell: exactly one
    // execution (1 attempt + 2 retries), seven quarantine hits.
    let results = runner.run_batch(&vec![cfg.clone(); 8]);
    assert!(matches!(results[0], Err(ExperimentError::Vm { .. })));
    for r in &results[1..] {
        assert!(matches!(r, Err(ExperimentError::Quarantined { .. })));
    }
    let report = runner.report();
    assert_eq!(report.attempts_failed, 3, "1 attempt + 2 retries, once");
    assert_eq!(report.retries, 2);
    assert_eq!(report.backoff_virtual_ms, 100 + 200);
    assert_eq!(report.quarantine_hits, 7);
    assert_eq!(report.quarantined.len(), 1);
    assert_eq!(report.faults.injected_oom, 3);

    // Later batches (mixed with healthy cells) still refuse to execute it.
    let mixed = vec![quick("search", 32), cfg.clone(), quick("fop", 32), cfg];
    let results = runner.run_batch(&mixed);
    assert!(results[0].is_ok() && results[2].is_ok());
    assert!(matches!(
        results[1],
        Err(ExperimentError::Quarantined { .. })
    ));
    assert!(matches!(
        results[3],
        Err(ExperimentError::Quarantined { .. })
    ));
    let report = runner.report();
    assert_eq!(report.attempts_failed, 3, "quarantine was re-executed");
    assert_eq!(report.quarantine_hits, 9);
    assert_eq!(report.quarantined.len(), 1, "duplicate quarantine entry");
}

#[test]
fn retry_accounting_is_exact_for_concurrent_failing_cells() {
    // Three benchmarks fail persistently with different budgets consumed
    // concurrently; totals must still be the exact sums.
    let oom = FaultPlan::parse("oom@1").unwrap();
    let mut runner = Runner::new()
        .jobs(8)
        .retries(1)
        .fault_override("moldyn", oom)
        .fault_override("search", oom)
        .fault_override("euler", oom);
    let batch: Vec<ExperimentConfig> = ["moldyn", "search", "euler"]
        .iter()
        .flat_map(|b| [32u32, 64].map(|h| quick(b, h)))
        .collect();
    let results = runner.run_batch(&batch);
    assert!(results.iter().all(Result::is_err));
    let report = runner.report();
    // 6 cells × (1 attempt + 1 retry) each, no cross-talk.
    assert_eq!(report.attempts_failed, 12);
    assert_eq!(report.retries, 6);
    assert_eq!(report.backoff_virtual_ms, 6 * 100);
    assert_eq!(report.quarantined.len(), 6);
    assert_eq!(report.quarantine_hits, 0);
    assert_eq!(report.faults.injected_oom, 12);
    assert_eq!(report.runs_ok, 0);
}

#[test]
fn report_json_is_stable_across_thread_counts_for_mixed_outcomes() {
    let render = |jobs: usize| {
        let mut runner = Runner::new()
            .jobs(jobs)
            .retries(1)
            .with_faults(FaultPlan::parse("drop=0.1,seed=9").unwrap())
            .fault_override("moldyn", FaultPlan::parse("oom@1").unwrap());
        let batch: Vec<ExperimentConfig> = ["_209_db", "moldyn", "search", "fop"]
            .iter()
            .flat_map(|b| [32u32, 64].map(|h| quick(b, h)))
            .collect();
        let _ = runner.run_batch(&batch);
        runner.report().to_json()
    };
    let serial = render(1);
    for jobs in [2, 4, 8] {
        assert_eq!(serial, render(jobs), "jobs={jobs} diverged");
    }
}
