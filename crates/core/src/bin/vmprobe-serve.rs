//! The vmprobe serving daemon: a long-running, fault-contained,
//! multi-tenant front end for the experiment engine.
//!
//! ```text
//! vmprobe-serve --socket <path> [flags]
//! flags:
//!   --socket <path>             Unix socket to listen on (required)
//!   --jobs <n>                  worker threads (default: available parallelism)
//!   --cache-dir <p>             persistent experiment cache shared by all tenants
//!   --queue-cap <n>             admission queue bound (default 64); a full
//!                               queue answers queue_full immediately
//!   --outbox-cap <n>            per-connection output buffer (default 256);
//!                               chatter beyond it is dropped with a count,
//!                               results never are
//!   --quarantine-threshold <n>  consecutive failures before a tenant is
//!                               quarantined (default 3; 0 disables)
//!   --quarantine-cooldown <n>   quarantine length in admission seqs (default 16)
//!   --max-heap-mb <n>           reject requests over this heap label (0 = off)
//!   --step-budget-cap <n>       clamp per-request step budgets (0 = off)
//!   --deadline-virtual-ms <n>   fail results over this simulated time (0 = off)
//!   --retries <n>               per-cell retry budget (default 2)
//!   --report-json <p>           write the final RunReport JSON here on shutdown
//!   --metrics-out <p>           write the final Prometheus dump here on shutdown
//!   --verbose                   narrate admissions/results on stderr
//! ```
//!
//! Protocol: one JSON object per line, both directions — see DESIGN.md §13
//! and the README's "Serving mode" walkthrough. SIGTERM (or a `shutdown`
//! request) drains gracefully: queued cells finish, every in-flight
//! response is delivered, final artifacts are flushed, exit code 0.

use std::process::ExitCode;

#[cfg(unix)]
fn run() -> ExitCode {
    use std::path::PathBuf;
    use vmprobe::serve::{serve, ServeConfig};

    fn fail(msg: &str) -> ExitCode {
        eprintln!("error: {msg}");
        ExitCode::FAILURE
    }

    let mut config = ServeConfig::default();
    let mut socket: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--help" || arg == "-h" {
            eprintln!(
                "usage: vmprobe-serve --socket <path> [--jobs <n>] [--cache-dir <p>]\n\
                 \x20      [--queue-cap <n>] [--outbox-cap <n>] [--quarantine-threshold <n>]\n\
                 \x20      [--quarantine-cooldown <n>] [--max-heap-mb <n>] [--step-budget-cap <n>]\n\
                 \x20      [--deadline-virtual-ms <n>] [--retries <n>] [--report-json <p>]\n\
                 \x20      [--metrics-out <p>] [--verbose]"
            );
            return ExitCode::FAILURE;
        }
        let Some(flag) = arg.strip_prefix("--") else {
            return fail(&format!("unexpected positional argument '{arg}'"));
        };
        let (name, inline) = match flag.split_once('=') {
            Some((n, v)) => (n.to_owned(), Some(v.to_owned())),
            None => (flag.to_owned(), None),
        };
        if name == "verbose" {
            if inline.is_some() {
                return fail("--verbose takes no value");
            }
            config.verbose = true;
            continue;
        }
        let Some(value) = inline.or_else(|| args.next()) else {
            return fail(&format!("--{name} needs a value"));
        };
        macro_rules! num {
            ($ty:ty) => {
                match value.parse::<$ty>() {
                    Ok(v) => v,
                    Err(_) => {
                        return fail(&format!(
                            "--{name} expects a non-negative integer, got '{value}'"
                        ))
                    }
                }
            };
        }
        match name.as_str() {
            "socket" => socket = Some(PathBuf::from(value)),
            "cache-dir" => config.cache_dir = Some(PathBuf::from(value)),
            "report-json" => config.report_json = Some(PathBuf::from(value)),
            "metrics-out" => config.metrics_out = Some(PathBuf::from(value)),
            "jobs" => {
                let v = num!(usize);
                if v == 0 {
                    return fail("--jobs expects a positive integer");
                }
                config.jobs = v;
            }
            "queue-cap" => {
                let v = num!(usize);
                if v == 0 {
                    return fail("--queue-cap expects a positive integer");
                }
                config.queue_cap = v;
            }
            "outbox-cap" => {
                let v = num!(usize);
                if v == 0 {
                    return fail("--outbox-cap expects a positive integer");
                }
                config.outbox_cap = v;
            }
            "quarantine-threshold" => config.quarantine_threshold = num!(u32),
            "quarantine-cooldown" => config.quarantine_cooldown = num!(u64),
            "max-heap-mb" => config.envelope.max_heap_mb = num!(u32),
            "step-budget-cap" => config.envelope.step_budget_cap = num!(u64),
            "deadline-virtual-ms" => config.envelope.deadline_virtual_ms = num!(u64),
            "retries" => config.retries = num!(u32),
            other => return fail(&format!("unknown flag --{other}")),
        }
    }
    let Some(socket) = socket else {
        return fail("--socket is required (run with --help for usage)");
    };
    config.socket = socket;
    let envelope_is_default = config.envelope.max_heap_mb == 0
        && config.envelope.step_budget_cap == 0
        && config.envelope.deadline_virtual_ms == 0;
    if config.verbose && !envelope_is_default {
        eprintln!(
            "vmprobe-serve: envelope active (heap cap {} MB, step cap {}, deadline {} virtual ms)",
            config.envelope.max_heap_mb,
            config.envelope.step_budget_cap,
            config.envelope.deadline_virtual_ms
        );
    }
    match serve(config) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(&e),
    }
}

#[cfg(not(unix))]
fn run() -> ExitCode {
    eprintln!("error: vmprobe-serve requires Unix domain sockets");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    run()
}
