//! Static analysis reports and the bound-domination CI gate.
//!
//! ```text
//! vmprobe-analyze [<benchmark>...] [flags]
//!   (no benchmarks = all of them)
//! flags:
//!   --scale <full|s10>    input scale to analyze (default s10)
//!   --platform <p6|pxa255> platform the bound is calibrated for (default p6)
//!   --vm <jikes|kaffe>    compilation-tier personality (default jikes)
//!   --heap-mb <n>         simulated heap the GC term assumes (default 64)
//!   --step-budget <n>     step clamp S the bound is instantiated at
//!                         (default 50000000)
//!   --json                emit the report as JSON instead of tables
//!   --out <path>          also write the JSON report to a file
//!   --check-golden        run every golden workload on both personalities
//!                         and fail unless the static bound dominates the
//!                         measured energy (the CI gate)
//! ```
//!
//! Plain mode is purely static: it assembles each benchmark's program,
//! runs the dataflow verifier, and prints per-method worst-case bounds
//! plus the program-wide energy bound. `--check-golden` additionally
//! *executes* each workload and cross-checks `static bound ≥ measured
//! energy`, instantiating the bound at the exact step count the run
//! performed — this is what catches drift between the analyzer's
//! mirrored cost constants and the VM's real meter.

use std::process::ExitCode;

use vmprobe::json::JsonObj;
use vmprobe::{golden_cells, heap_bytes, ExperimentConfig, VmChoice};
use vmprobe_analysis::{bound_program, verify_program, BoundParams, ProgramBound, VmTier};
use vmprobe_heap::CollectorKind;
use vmprobe_platform::PlatformKind;
use vmprobe_vm::VmConfig;
use vmprobe_workloads::{all_benchmarks, benchmark, Benchmark, InputScale};

struct Cli {
    benchmarks: Vec<String>,
    scale: InputScale,
    platform: PlatformKind,
    vm: VmTier,
    heap_mb: u32,
    step_budget: u64,
    json: bool,
    out: Option<String>,
    check_golden: bool,
}

impl Default for Cli {
    fn default() -> Self {
        Self {
            benchmarks: Vec::new(),
            scale: InputScale::Reduced,
            platform: PlatformKind::PentiumM,
            vm: VmTier::Jikes,
            heap_mb: 64,
            step_budget: 50_000_000,
            json: false,
            out: None,
            check_golden: false,
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: vmprobe-analyze [<benchmark>...] [--scale full|s10] [--platform p6|pxa255]\n\
         \x20                      [--vm jikes|kaffe] [--heap-mb <n>] [--step-budget <n>]\n\
         \x20                      [--json] [--out <path>] [--check-golden]"
    );
    ExitCode::from(2)
}

fn parse_args(args: Vec<String>) -> Result<Cli, String> {
    let mut cli = Cli::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--help" || arg == "-h" {
            return Err(String::new());
        }
        let Some(flag) = arg.strip_prefix("--") else {
            cli.benchmarks.push(arg);
            continue;
        };
        let (name, inline) = match flag.split_once('=') {
            Some((n, v)) => (n.to_owned(), Some(v.to_owned())),
            None => (flag.to_owned(), None),
        };
        match name.as_str() {
            "json" => cli.json = true,
            "check-golden" => cli.check_golden = true,
            _ => {
                let Some(value) = inline.or_else(|| it.next()) else {
                    return Err(format!("--{name} needs a value"));
                };
                match name.as_str() {
                    "scale" => {
                        cli.scale = match value.as_str() {
                            "full" => InputScale::Full,
                            "s10" => InputScale::Reduced,
                            other => return Err(format!("unknown scale '{other}'")),
                        }
                    }
                    "platform" => {
                        cli.platform = match value.as_str() {
                            "p6" => PlatformKind::PentiumM,
                            "pxa255" => PlatformKind::Pxa255,
                            other => return Err(format!("unknown platform '{other}'")),
                        }
                    }
                    "vm" => {
                        cli.vm = match value.as_str() {
                            "jikes" => VmTier::Jikes,
                            "kaffe" => VmTier::Kaffe,
                            other => return Err(format!("unknown vm '{other}'")),
                        }
                    }
                    "heap-mb" => {
                        cli.heap_mb = value
                            .parse()
                            .map_err(|_| format!("--heap-mb expects an integer, got '{value}'"))?
                    }
                    "step-budget" => {
                        cli.step_budget = value.parse().map_err(|_| {
                            format!("--step-budget expects an integer, got '{value}'")
                        })?
                    }
                    "out" => cli.out = Some(value),
                    other => return Err(format!("unknown flag --{other}")),
                }
            }
        }
    }
    Ok(cli)
}

/// The scheduler quantum the VM actually uses for a platform, read off a
/// real `VmConfig` so the bound can never drift from the runtime.
fn quantum_cycles(platform: PlatformKind) -> u64 {
    VmConfig::jikes(CollectorKind::GenCopy, heap_bytes(32))
        .platform(platform)
        .quantum_cycles
}

fn bound_for(bench: &Benchmark, cli: &Cli, step_budget: u64) -> Result<ProgramBound, String> {
    let program = bench.build(cli.scale);
    verify_program(&program).map_err(|e| format!("{} rejected: {e}", bench.name))?;
    Ok(bound_program(
        &program,
        &BoundParams {
            platform: cli.platform,
            vm: cli.vm,
            heap_bytes: heap_bytes(cli.heap_mb),
            quantum_cycles: quantum_cycles(cli.platform),
            step_budget,
        },
    ))
}

fn method_json(b: &vmprobe_analysis::MethodBound) -> String {
    let mut o = JsonObj::new();
    o.str("method", &b.method.to_string())
        .str("name", &b.name)
        .u64("ops", b.ops as u64)
        .u64("blocks", b.blocks as u64)
        .bool("cyclic", b.cyclic);
    match (b.acyclic_cycles, b.acyclic_energy_j) {
        (Some(c), Some(e)) => {
            o.f64("acyclic_cycles", c).f64("acyclic_energy_j", e);
        }
        _ => {
            o.raw("acyclic_cycles", "null")
                .raw("acyclic_energy_j", "null");
        }
    }
    o.finish()
}

fn program_json(name: &str, scale: InputScale, b: &ProgramBound) -> String {
    let mut o = JsonObj::new();
    o.schema_version()
        .str("benchmark", name)
        .str("scale", &format!("{scale:?}"))
        .f64("p_max_w", b.p_max_w)
        .f64("freq_hz", b.freq_hz)
        .u64("step_budget", b.step_budget)
        .f64("classload_cycles", b.classload_cycles)
        .f64("compile_cycles", b.compile_cycles)
        .f64("interpret_cycles", b.interpret_cycles)
        .f64("gc_cycles", b.gc_cycles)
        .f64("quantum_multiplier", b.quantum_multiplier)
        .f64("core_energy_j", b.core_energy_j)
        .f64("total_energy_j", b.total_energy_j)
        .array("methods", b.methods.iter().map(method_json));
    o.finish()
}

fn print_table(name: &str, b: &ProgramBound) {
    println!(
        "{name}: P_max {:.2} W, S = {}, bound {:.3e} J (core {:.3e} J, quantum ×{:.4})",
        b.p_max_w, b.step_budget, b.total_energy_j, b.core_energy_j, b.quantum_multiplier
    );
    println!(
        "  cycles: classload {:.3e}  compile {:.3e}  interpret {:.3e}  gc {:.3e}",
        b.classload_cycles, b.compile_cycles, b.interpret_cycles, b.gc_cycles
    );
    println!(
        "  {:>6}  {:<26} {:>5} {:>6}  {:>14}  {:>12}",
        "method", "name", "ops", "blocks", "acyclic cycles", "bound (J)"
    );
    for m in &b.methods {
        let (cycles, energy) = match (m.acyclic_cycles, m.acyclic_energy_j) {
            (Some(c), Some(e)) => (format!("{c:.1}"), format!("{e:.3e}")),
            _ => ("cyclic".into(), "—".into()),
        };
        println!(
            "  {:>6}  {:<26} {:>5} {:>6}  {:>14}  {:>12}",
            m.method.to_string(),
            m.name,
            m.ops,
            m.blocks,
            cycles,
            energy
        );
    }
}

/// One golden-workload cross-check cell.
struct GoldenRow {
    benchmark: String,
    vm: String,
    platform: PlatformKind,
    bytecodes: u64,
    measured_j: f64,
    bound_j: f64,
}

impl GoldenRow {
    fn dominated(&self) -> bool {
        self.bound_j.is_finite() && self.bound_j >= self.measured_j
    }

    fn slack(&self) -> f64 {
        self.bound_j / self.measured_j
    }

    fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.str("benchmark", &self.benchmark)
            .str("vm", &self.vm)
            .str(
                "platform",
                match self.platform {
                    PlatformKind::PentiumM => "p6",
                    PlatformKind::Pxa255 => "pxa255",
                },
            )
            .u64("bytecodes", self.bytecodes)
            .f64("measured_j", self.measured_j)
            .f64("bound_j", self.bound_j)
            .f64("slack", self.slack())
            .bool("dominated", self.dominated());
        o.finish()
    }
}

/// The bound analyzer's compilation-tier personality for a cell's VM.
fn tier_for(vm: &VmChoice) -> VmTier {
    match vm {
        VmChoice::Jikes(_) => VmTier::Jikes,
        VmChoice::Kaffe => VmTier::Kaffe,
    }
}

/// Run one golden cell and bound it at exactly the step count it took.
fn golden_cell(bench: &Benchmark, cfg: &ExperimentConfig) -> Result<GoldenRow, String> {
    let summary = cfg.run().map_err(|e| e.to_string())?;
    let bound = bound_program(
        &bench.build(cfg.scale),
        &BoundParams {
            platform: cfg.platform,
            vm: tier_for(&cfg.vm),
            heap_bytes: heap_bytes(cfg.heap_mb),
            quantum_cycles: quantum_cycles(cfg.platform),
            step_budget: summary.vm.bytecodes,
        },
    );
    Ok(GoldenRow {
        benchmark: bench.name.to_owned(),
        vm: summary.config.vm.to_string(),
        platform: cfg.platform,
        bytecodes: summary.vm.bytecodes,
        measured_j: summary.report.total_energy.joules(),
        bound_j: bound.total_energy_j,
    })
}

fn check_golden(cli: &Cli) -> Result<(Vec<GoldenRow>, usize), String> {
    let mut rows = Vec::new();
    let mut violations = 0;
    // The golden grid — every benchmark on both personalities: Jikes
    // exercises baseline+opt compilation on the P6, Kaffe the
    // JIT-everything path on the PXA255. Shared with the diff gate so the
    // two CI gates can never drift apart on coverage.
    for cfg in golden_cells() {
        let bench = benchmark(&cfg.benchmark)
            .ok_or_else(|| format!("golden cell names unknown benchmark '{}'", cfg.benchmark))?;
        // The benchmark's program itself must pass the verifier before
        // anything runs — the same admission gate the daemon applies.
        verify_program(&bench.build(cfg.scale))
            .map_err(|e| format!("{} rejected by the verifier: {e}", bench.name))?;
        let row = golden_cell(&bench, &cfg)?;
        if !row.dominated() {
            violations += 1;
            eprintln!(
                "VIOLATION: {} on {} ({:?}): bound {:.3e} J < measured {:.3e} J",
                row.benchmark, row.vm, cfg.platform, row.bound_j, row.measured_j
            );
        }
        rows.push(row);
    }
    let _ = cli; // all knobs are fixed by the golden grid
    Ok((rows, violations))
}

fn golden_report(rows: &[GoldenRow], violations: usize) -> String {
    let mut o = JsonObj::new();
    o.schema_version()
        .bool("ok", violations == 0)
        .u64("violations", violations as u64)
        .array("rows", rows.iter().map(GoldenRow::to_json));
    o.finish()
}

fn main() -> ExitCode {
    let cli = match parse_args(std::env::args().skip(1).collect()) {
        Ok(cli) => cli,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("vmprobe-analyze: {msg}");
            }
            return usage();
        }
    };

    if cli.check_golden {
        let (rows, violations) = match check_golden(&cli) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("vmprobe-analyze: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "{:<16} {:<10} {:>8} {:>12} {:>12} {:>12} {:>8}",
            "benchmark", "vm", "platform", "bytecodes", "measured J", "bound J", "slack"
        );
        for r in &rows {
            println!(
                "{:<16} {:<10} {:>8} {:>12} {:>12.4e} {:>12.4e} {:>8.1}",
                r.benchmark,
                r.vm,
                match r.platform {
                    PlatformKind::PentiumM => "p6",
                    PlatformKind::Pxa255 => "pxa255",
                },
                r.bytecodes,
                r.measured_j,
                r.bound_j,
                r.slack()
            );
        }
        let report = golden_report(&rows, violations);
        if let Some(path) = &cli.out {
            if let Err(e) = std::fs::write(path, &report) {
                eprintln!("vmprobe-analyze: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        return if violations == 0 {
            println!(
                "analyze-gate: static bound dominates measured energy on all {} cells",
                rows.len()
            );
            ExitCode::SUCCESS
        } else {
            eprintln!("analyze-gate: {violations} violation(s)");
            ExitCode::FAILURE
        };
    }

    let names: Vec<String> = if cli.benchmarks.is_empty() {
        all_benchmarks().iter().map(|b| b.name.to_owned()).collect()
    } else {
        cli.benchmarks.clone()
    };
    let mut reports = Vec::new();
    for name in &names {
        let Some(bench) = benchmark(name) else {
            eprintln!("vmprobe-analyze: unknown benchmark '{name}'");
            return ExitCode::FAILURE;
        };
        let bound = match bound_for(&bench, &cli, cli.step_budget) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("vmprobe-analyze: {e}");
                return ExitCode::FAILURE;
            }
        };
        if cli.json {
            println!("{}", program_json(name, cli.scale, &bound));
        } else {
            print_table(name, &bound);
        }
        reports.push(program_json(name, cli.scale, &bound));
    }
    if let Some(path) = &cli.out {
        let mut o = JsonObj::new();
        o.schema_version().array("programs", reports);
        if let Err(e) = std::fs::write(path, o.finish()) {
            eprintln!("vmprobe-analyze: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The historical `--check-golden` enumeration, verbatim, against the
    /// shared helper: the two grids must agree cell for cell, or the
    /// analyze gate and the diff gate silently diverge on coverage.
    #[test]
    fn golden_cells_agree_with_the_legacy_enumeration() {
        let mut legacy = Vec::new();
        for bench in all_benchmarks() {
            let cells = [
                (
                    VmChoice::Jikes(CollectorKind::GenCopy),
                    PlatformKind::PentiumM,
                    64,
                ),
                (VmChoice::Kaffe, PlatformKind::Pxa255, 32),
            ];
            for (vm, platform, heap_mb) in cells {
                legacy.push(ExperimentConfig {
                    benchmark: bench.name.to_owned(),
                    vm,
                    heap_mb,
                    platform,
                    scale: InputScale::Reduced,
                    trace_power: false,
                    record_spans: false,
                    verify: true,
                    probe: vmprobe::ProbeSpec::default(),
                });
            }
        }
        assert_eq!(golden_cells(), legacy);
    }

    #[test]
    fn tiers_track_the_vm_personality() {
        assert_eq!(
            tier_for(&VmChoice::Jikes(CollectorKind::SemiSpace)),
            VmTier::Jikes
        );
        assert_eq!(tier_for(&VmChoice::Kaffe), VmTier::Kaffe);
    }
}
