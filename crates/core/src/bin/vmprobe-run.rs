//! Command-line runner for a single characterization experiment or a
//! parallel figure sweep.
//!
//! ```text
//! vmprobe-run <benchmark> [collector] [heap_mb] [platform] [scale] [flags]
//!   collector: semispace | marksweep | gencopy | genms | kaffe  (default gencopy)
//!   heap_mb:   paper heap label in MB                           (default 64)
//!   platform:  p6 | pxa255                                      (default p6)
//!   scale:     full | s10                                       (default full)
//! vmprobe-run <artifact...> [flags]
//!   artifacts: fig1 fig5 fig6 fig7 fig8 fig9 fig10 fig11 t1 t2 t3 t4 t5 | all
//! flags:
//!   --jobs <n>          worker threads for parallel sweeps (default: available
//!                       parallelism); output is bit-identical for every value
//!   --faults <spec>     inject faults, e.g. drop=0.05,dup=0.01,wrap32,oom@1000
//!   --retries <n>       attempts beyond the first before quarantine (default 2)
//!   --seed <n>          override the fault plan's seed
//!   --report-json <p>   write the supervised-run report JSON to a path ('-' = stdout)
//!   --trace-out <p>     write a Chrome trace-event JSON of the run ('-' = stdout)
//!   --metrics-out <p>   write Prometheus-style text metrics ('-' = stdout)
//!   --cache-dir <p>     persistent experiment cache: cells found there are
//!                       restored instead of recomputed, fresh cells are
//!                       written through, so an interrupted or repeated sweep
//!                       only pays for what is missing
//!   --no-cache          ignore --cache-dir (compute everything, write nothing)
//!   --no-verify         skip load-time bytecode verification (escape hatch;
//!                       verification is host-side and costs zero simulated
//!                       cycles, so results are identical either way)
//!   --resume            with --cache-dir: report on stderr how many cells the
//!                       cache restored vs. recomputed (stdout is unchanged)
//!   --telemetry-overhead  run uninstrumented first, then instrumented, and
//!                       report the telemetry tax as a percentage (timed
//!                       passes always run quiet so --verbose narration is
//!                       never billed as tax), split into a host_tax row
//!                       (wall-clock recording cost) and a probe_tax row
//!                       (simulated cycles a charged probe would cost)
//!   --observe-cost      observer-effect sweep: run every golden cell
//!                       transparent vs non-transparent across the probe
//!                       period grid and print the figure set plus a
//!                       recommendation table (--report-json then carries
//!                       the observe report instead of the runner report)
//!   --probe-period <g>  period grid for --observe-cost: comma-separated
//!                       periods (ns/us/ms suffix) or decade ranges like
//!                       4us..4ms (default)
//!   --verbose           progress logs while running and an end-of-run
//!                       telemetry summary, both on stderr
//! ```

use std::process::ExitCode;
use std::time::{Duration, Instant};

use std::sync::Arc;

use vmprobe::{
    default_jobs, figures, golden_cells, parse_period_grid, CounterId, ExperimentCache,
    ExperimentConfig, FaultPlan, HistId, NoopSink, ObserveEngine, ProbeSpec, Runner, Sink,
    StderrSink, Telemetry, VmChoice,
};
use vmprobe_heap::CollectorKind;
use vmprobe_platform::PlatformKind;
use vmprobe_power::ComponentId;
use vmprobe_workloads::InputScale;

const ARTIFACTS: [&str; 13] = [
    "fig1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "t1", "t2", "t3", "t4", "t5",
];

fn usage() -> ExitCode {
    eprintln!(
        "usage: vmprobe-run <benchmark> [semispace|marksweep|gencopy|genms|kaffe] \
         [heap_mb] [p6|pxa255] [full|s10]\n\
         \x20      [--jobs <n>] [--faults <spec>] [--retries <n>] [--seed <n>] \
         [--report-json <path>]\n\
         \x20      [--trace-out <path>] [--metrics-out <path>] [--telemetry-overhead] \
         [--verbose]\n\
         \x20      [--cache-dir <path>] [--no-cache] [--no-verify] [--resume]\n\
         \x20  or: vmprobe-run <fig1|fig5|fig6|fig7|fig8|fig9|fig10|fig11|t1..t5|all> \
         [flags]\n\
         \x20  or: vmprobe-run --observe-cost [--probe-period <grid>] [flags]"
    );
    eprintln!("fault spec keys: drop dup noise wrap32 glitch drift oom@N budget seed");
    eprintln!("benchmarks:");
    for b in vmprobe_workloads::all_benchmarks() {
        eprintln!("  {:16} ({})", b.name, b.suite);
    }
    ExitCode::FAILURE
}

/// A specific, single-line complaint — unlike [`usage`], which is reserved
/// for the no-arguments / malformed-shape cases.
fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::FAILURE
}

#[derive(Default)]
struct Cli {
    positionals: Vec<String>,
    jobs: Option<usize>,
    faults: Option<String>,
    retries: Option<u32>,
    seed: Option<u64>,
    report_json: Option<String>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    cache_dir: Option<String>,
    no_cache: bool,
    no_verify: bool,
    resume: bool,
    telemetry_overhead: bool,
    observe_cost: bool,
    probe_period: Option<String>,
    verbose: bool,
}

impl Cli {
    /// Any flag that needs a live telemetry hub attached to the runner.
    fn telemetry_requested(&self) -> bool {
        self.trace_out.is_some()
            || self.metrics_out.is_some()
            || self.telemetry_overhead
            || self.verbose
    }

    /// Span streams are kept whenever an output consumes them: the trace
    /// obviously, the metrics dump (its `cell_spans` histogram counts
    /// recorded spans), and the overhead mode (which must measure full
    /// recording, not a discounted subset). Verbose-only runs stay on the
    /// cheaper counters-only hub.
    fn spans_wanted(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some() || self.telemetry_overhead
    }

    /// Build the telemetry handle the flags ask for (disabled if none do).
    fn make_telemetry(&self) -> Telemetry {
        if !self.telemetry_requested() {
            return Telemetry::disabled();
        }
        let sink: Box<dyn Sink> = if self.verbose {
            Box::new(StderrSink::new())
        } else {
            Box::new(NoopSink)
        };
        Telemetry::with_sink(self.spans_wanted(), sink)
    }

    /// Open the persistent experiment cache the flags ask for, if any.
    /// `--no-cache` wins over `--cache-dir` so scripts can keep a standing
    /// cache argument and disable it per-invocation.
    fn open_cache(&self) -> Result<Option<Arc<ExperimentCache>>, String> {
        let Some(dir) = &self.cache_dir else {
            return Ok(None);
        };
        if self.no_cache {
            return Ok(None);
        }
        match ExperimentCache::open(dir) {
            Ok(cache) => Ok(Some(Arc::new(cache))),
            Err(e) => Err(format!("cannot open cache dir {dir}: {e}")),
        }
    }

    /// Telemetry for the *timed* instrumented passes of
    /// `--telemetry-overhead`: the same recording configuration, but
    /// always a quiet sink. `--verbose` narration is stderr I/O (mutex +
    /// write per attempt), not recording cost — letting it into the timed
    /// side would bill narration as telemetry tax. The end-of-run
    /// `--verbose` summary still prints from the final snapshot.
    fn make_overhead_telemetry(&self) -> Telemetry {
        Telemetry::with_sink(self.spans_wanted(), Box::new(NoopSink))
    }
}

enum ParseOutcome {
    Ok(Cli),
    Err(String),
    Help,
}

fn parse_args(args: Vec<String>) -> ParseOutcome {
    let mut cli = Cli::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--help" || arg == "-h" {
            return ParseOutcome::Help;
        }
        if let Some(flag) = arg.strip_prefix("--") {
            let (name, inline) = match flag.split_once('=') {
                Some((n, v)) => (n.to_owned(), Some(v.to_owned())),
                None => (flag.to_owned(), None),
            };
            // Boolean flags: never consume the next argument.
            match name.as_str() {
                "telemetry-overhead" | "observe-cost" | "verbose" | "no-cache" | "no-verify"
                | "resume" => {
                    if inline.is_some() {
                        return ParseOutcome::Err(format!("--{name} takes no value"));
                    }
                    match name.as_str() {
                        "verbose" => cli.verbose = true,
                        "no-cache" => cli.no_cache = true,
                        "no-verify" => cli.no_verify = true,
                        "resume" => cli.resume = true,
                        "observe-cost" => cli.observe_cost = true,
                        _ => cli.telemetry_overhead = true,
                    }
                    continue;
                }
                _ => {}
            }
            let Some(value) = inline.or_else(|| it.next()) else {
                return ParseOutcome::Err(format!("--{name} needs a value"));
            };
            match name.as_str() {
                "jobs" => match value.parse::<usize>() {
                    Ok(v) if v > 0 => cli.jobs = Some(v),
                    _ => {
                        return ParseOutcome::Err(format!(
                            "--jobs expects a positive integer, got '{value}'"
                        ))
                    }
                },
                "faults" => cli.faults = Some(value),
                "retries" => match value.parse() {
                    Ok(v) => cli.retries = Some(v),
                    Err(_) => {
                        return ParseOutcome::Err(format!(
                            "--retries expects a non-negative integer, got '{value}'"
                        ))
                    }
                },
                "seed" => match value.parse() {
                    Ok(v) => cli.seed = Some(v),
                    Err(_) => {
                        return ParseOutcome::Err(format!(
                            "--seed expects an unsigned integer, got '{value}'"
                        ))
                    }
                },
                "report-json" => cli.report_json = Some(value),
                "trace-out" => cli.trace_out = Some(value),
                "metrics-out" => cli.metrics_out = Some(value),
                "cache-dir" => cli.cache_dir = Some(value),
                "probe-period" => cli.probe_period = Some(value),
                other => return ParseOutcome::Err(format!("unknown flag --{other}")),
            }
        } else {
            cli.positionals.push(arg);
        }
    }
    ParseOutcome::Ok(cli)
}

/// A runner wired with everything the flags ask for. `telemetry` and
/// `verbose` are passed explicitly so the `--telemetry-overhead` timed
/// passes (bare *and* instrumented) can build runners with narration
/// switched off.
fn make_runner(
    cli: &Cli,
    plan: FaultPlan,
    telemetry: Telemetry,
    verbose: bool,
    cache: Option<Arc<ExperimentCache>>,
) -> Runner {
    let mut runner = Runner::new()
        .jobs(cli.jobs.unwrap_or_else(default_jobs))
        .with_faults(plan)
        .with_telemetry(telemetry)
        .verbose(verbose);
    if let Some(r) = cli.retries {
        runner = runner.retries(r);
    }
    if let Some(cache) = cache {
        runner = runner.with_cache(cache);
    }
    runner
}

/// The `--resume` accounting line. Stderr only: cached and cold runs must
/// produce byte-identical stdout.
fn print_resume_summary(runner: &Runner) {
    if let Some(cache) = runner.cache() {
        print_resume_cache(cache);
    }
}

fn print_resume_cache(cache: &ExperimentCache) {
    let s = cache.stats();
    eprintln!(
        "resume: {} cells restored from {}, {} recomputed ({} stored, {} corrupt entries replaced)",
        s.hits(),
        cache.dir().display(),
        s.misses() + s.corrupt(),
        s.stores(),
        s.corrupt(),
    );
}

fn write_report(runner: &Runner, dest: &str) -> Result<(), String> {
    let json = runner.report().to_json();
    if dest == "-" {
        println!("{json}");
        return Ok(());
    }
    std::fs::write(dest, json).map_err(|e| format!("cannot write report to {dest}: {e}"))
}

fn write_artifact(what: &str, dest: &str, text: &str) -> Result<(), String> {
    if dest == "-" {
        print!("{text}");
        if !text.ends_with('\n') {
            println!();
        }
        return Ok(());
    }
    std::fs::write(dest, text).map_err(|e| format!("cannot write {what} to {dest}: {e}"))
}

/// Export whatever telemetry outputs the flags requested from one snapshot.
fn write_telemetry(cli: &Cli, telemetry: &Telemetry) -> Result<(), String> {
    if cli.trace_out.is_none() && cli.metrics_out.is_none() && !cli.verbose {
        return Ok(());
    }
    let snap = telemetry.snapshot();
    if let Some(dest) = &cli.trace_out {
        write_artifact("trace", dest, &snap.chrome_trace())?;
    }
    if let Some(dest) = &cli.metrics_out {
        write_artifact("metrics", dest, &snap.prometheus())?;
    }
    if cli.verbose {
        eprint!("{}", snap.summary());
    }
    Ok(())
}

/// How many bare/instrumented pass pairs `--telemetry-overhead` runs.
/// The pairs are interleaved and the fastest of each side wins, so slow
/// ambient drift on the host (CI neighbours, thermal throttling) cancels
/// instead of masquerading as telemetry tax.
const OVERHEAD_PASSES: usize = 2;

fn print_overhead(bare: Duration, instrumented: Duration) {
    let b = bare.as_secs_f64();
    let i = instrumented.as_secs_f64();
    let tax = if b > 0.0 { 100.0 * (i - b) / b } else { 0.0 };
    println!(
        "telemetry overhead: bare {:.1} ms, instrumented {:.1} ms, tax {tax:.2}% \
         (best of {OVERHEAD_PASSES} interleaved passes)",
        1e3 * b,
        1e3 * i,
    );
}

/// The DAQ period the `--telemetry-overhead` probe-tax pass charges at:
/// the paper's stock 40 µs rig, made non-transparent.
const PROBE_TAX_SPEC: ProbeSpec = ProbeSpec {
    daq_period_ns: 40_000,
    nontransparent: true,
};

/// Host tax in parts per million of the bare wall time (0 when the bare
/// side measured nothing).
fn host_tax_ppm(bare: Duration, instrumented: Duration) -> u64 {
    let b = bare.as_secs_f64();
    if b <= 0.0 {
        return 0;
    }
    let ppm = (instrumented.as_secs_f64() - b) / b * 1e6;
    ppm.max(0.0).round() as u64
}

/// Probe tax in parts per million of the transparent simulated time
/// (deterministic: both sides are virtual durations).
fn probe_tax_ppm(transparent_us: u64, probed_us: u64) -> u64 {
    if transparent_us == 0 {
        return 0;
    }
    (probed_us.saturating_sub(transparent_us)) * 1_000_000 / transparent_us
}

/// Total simulated cell time a hub observed, in virtual microseconds.
fn virtual_us(telemetry: &Telemetry) -> u64 {
    telemetry
        .snapshot()
        .hists
        .iter()
        .find(|(id, _)| *id == HistId::CellVirtualUs)
        .map_or(0, |(_, h)| h.sum())
}

/// Stamp the two tax counters on the hub (must happen before the
/// Prometheus dump is written) so they land as `host_tax_ppm` /
/// `probe_tax_ppm`.
fn record_tax(telemetry: &Telemetry, host_ppm: u64, probe_ppm: u64) {
    telemetry.count(CounterId::HostTaxPpm, host_ppm);
    telemetry.count(CounterId::ProbeTaxPpm, probe_ppm);
}

/// The satellite split under the headline tax line: what the *host* pays
/// to record telemetry (wall clock, moves with the machine) vs what the
/// *simulated system* would pay if the probes were real (deterministic).
fn print_tax_split(host_ppm: u64, probe_ppm: u64) {
    println!(
        "  host_tax : {host_ppm} ppm of bare wall time (recording cost; host-timing dependent)"
    );
    println!(
        "  probe_tax: {probe_ppm} ppm extra simulated time under a charged {} probe (deterministic)",
        vmprobe::period_label(PROBE_TAX_SPEC.daq_period_ns)
    );
}

/// Render the requested paper artifacts to one string, stopping at the
/// first failure.
fn render_artifacts(artifacts: &[String], runner: &mut Runner) -> Result<String, String> {
    let all_names = figures::all_benchmark_names();
    let pxa_names = figures::pxa_benchmark_names();
    let (p6, pxa) = (&vmprobe::P6_HEAPS_MB, &vmprobe::PXA_HEAPS_MB);
    let mut out = String::new();
    for a in artifacts {
        let result: Result<String, vmprobe::ExperimentError> = match a.as_str() {
            "fig1" => figures::fig1(runner).map(|f| f.to_string()),
            "fig5" => Ok(figures::fig5().to_string()),
            "fig6" => figures::fig6(runner, &all_names, p6).map(|f| f.to_string()),
            "fig7" => figures::fig7(runner, &all_names, p6).map(|f| f.to_string()),
            "fig8" => figures::fig8(runner, &all_names, p6).map(|f| f.to_string()),
            "fig9" => figures::fig9(runner, &all_names, p6).map(|f| f.to_string()),
            "fig10" => figures::fig10(runner, &all_names, p6).map(|f| f.to_string()),
            "fig11" => figures::fig11(runner, &pxa_names, pxa).map(|f| f.to_string()),
            "t1" => figures::t1_collector_power(runner, p6).map(|f| f.to_string()),
            "t2" => figures::t2_l2_ipc(runner, p6).map(|f| f.to_string()),
            "t3" => figures::t3_memory_energy(runner, p6).map(|f| f.to_string()),
            "t4" => figures::t4_headlines(runner).map(|f| f.to_string()),
            "t5" => figures::t5_kaffe(runner, p6, pxa).map(|f| f.to_string()),
            other => return Err(format!("unknown artifact '{other}'")),
        };
        match result {
            Ok(text) => {
                out.push_str(&text);
                out.push('\n');
            }
            Err(e) => return Err(format!("{a} failed: {e}")),
        }
    }
    Ok(out)
}

/// Default probe-period grid for `--observe-cost`: the paper's 40 µs rig
/// bracketed by a decade below and two above.
const DEFAULT_OBSERVE_GRID: &str = "4us..4ms";

/// The observer-effect sweep: every golden cell, transparent vs
/// non-transparent, across the probe-period grid.
fn run_observe(cli: &Cli) -> ExitCode {
    if cli.telemetry_overhead {
        return fail(
            "--observe-cost cannot be combined with --telemetry-overhead: the sweep already \
             measures measurement cost, on the simulated axis",
        );
    }
    if cli.faults.is_some() || cli.seed.is_some() {
        return fail(
            "--observe-cost runs a clean sweep (probe cost must not be confounded with \
             injected faults); drop --faults/--seed",
        );
    }
    if !cli.positionals.is_empty() {
        return fail(
            "--observe-cost sweeps the golden cells; positional arguments are not accepted",
        );
    }
    let grid = match parse_period_grid(cli.probe_period.as_deref().unwrap_or(DEFAULT_OBSERVE_GRID))
    {
        Ok(g) => g,
        Err(e) => return fail(&e),
    };
    let cache = match cli.open_cache() {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };
    let telemetry = cli.make_telemetry();
    let mut engine = ObserveEngine::new(grid)
        .jobs(cli.jobs.unwrap_or_else(default_jobs))
        .with_telemetry(telemetry.clone());
    if let Some(cache) = &cache {
        engine = engine.with_cache(Arc::clone(cache));
    }
    let report = match engine.run(&golden_cells()) {
        Ok(r) => r,
        Err(e) => return fail(&e),
    };
    print!("{report}");
    if cli.resume {
        if let Some(cache) = &cache {
            print_resume_cache(cache);
        }
    }
    if let Some(dest) = &cli.report_json {
        if let Err(e) = write_artifact("observe report", dest, &report.to_json()) {
            return fail(&e);
        }
    }
    if let Err(e) = write_telemetry(cli, &telemetry) {
        return fail(&e);
    }
    ExitCode::SUCCESS
}

/// Regenerate the requested paper artifacts on the parallel sweep engine.
fn run_figures(cli: &Cli, plan: FaultPlan) -> ExitCode {
    let artifacts: Vec<String> = if cli.positionals.iter().any(|a| a == "all") {
        ARTIFACTS.map(String::from).to_vec()
    } else {
        cli.positionals.clone()
    };
    if cli.telemetry_overhead {
        // Interleaved bare/instrumented pass pairs on fresh runners and
        // fresh hubs; artifacts and the exported telemetry come from the
        // last instrumented pass, the tax from the fastest of each side.
        // Both timed sides run quiet (no verbose narration): the tax must
        // measure recording, not stderr I/O.
        let mut bare_best = Duration::MAX;
        let mut inst_best = Duration::MAX;
        let mut last: Option<(Runner, Telemetry, String)> = None;
        for _ in 0..OVERHEAD_PASSES {
            let mut bare = make_runner(cli, plan, Telemetry::disabled(), false, None);
            let t = Instant::now();
            if let Err(e) = render_artifacts(&artifacts, &mut bare) {
                return fail(&e);
            }
            bare_best = bare_best.min(t.elapsed());

            let telemetry = cli.make_overhead_telemetry();
            let mut runner = make_runner(cli, plan, telemetry.clone(), false, None);
            let t = Instant::now();
            let text = match render_artifacts(&artifacts, &mut runner) {
                Ok(text) => text,
                Err(e) => return fail(&e),
            };
            inst_best = inst_best.min(t.elapsed());
            last = Some((runner, telemetry, text));
        }
        let (runner, telemetry, text) = last.expect("at least one overhead pass");

        // Satellite split: a quiet pass with the stock probe made
        // non-transparent. Extra *simulated* time relative to the
        // instrumented pass is the deterministic probe tax.
        let probe_tel = Telemetry::with_sink(false, Box::new(NoopSink));
        let mut probed = make_runner(cli, plan, probe_tel.clone(), false, None)
            .with_probe_override(PROBE_TAX_SPEC);
        if let Err(e) = render_artifacts(&artifacts, &mut probed) {
            return fail(&e);
        }
        let host_ppm = host_tax_ppm(bare_best, inst_best);
        let probe_ppm = probe_tax_ppm(virtual_us(&telemetry), virtual_us(&probe_tel));
        record_tax(&telemetry, host_ppm, probe_ppm);

        print!("{text}");
        print_overhead(bare_best, inst_best);
        print_tax_split(host_ppm, probe_ppm);
        if let Some(dest) = &cli.report_json {
            if let Err(e) = write_report(&runner, dest) {
                return fail(&e);
            }
        }
        if let Err(e) = write_telemetry(cli, &telemetry) {
            return fail(&e);
        }
        return ExitCode::SUCCESS;
    }

    let cache = match cli.open_cache() {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };
    let telemetry = cli.make_telemetry();
    let mut runner = make_runner(cli, plan, telemetry.clone(), cli.verbose, cache);
    let text = match render_artifacts(&artifacts, &mut runner) {
        Ok(text) => text,
        Err(e) => return fail(&e),
    };
    print!("{text}");
    if cli.resume {
        print_resume_summary(&runner);
    }
    if let Some(dest) = &cli.report_json {
        if let Err(e) = write_report(&runner, dest) {
            return fail(&e);
        }
    }
    if let Err(e) = write_telemetry(cli, &telemetry) {
        return fail(&e);
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(args) {
        ParseOutcome::Ok(cli) => cli,
        ParseOutcome::Err(msg) => return fail(&msg),
        ParseOutcome::Help => return usage(),
    };
    if cli.resume && cli.no_cache {
        return fail(
            "--no-cache cannot be combined with --resume: resuming is exactly the act of \
             reading the cache --no-cache disables",
        );
    }
    if cli.resume && cli.cache_dir.is_none() {
        return fail("--resume needs --cache-dir (there is nothing to resume from)");
    }
    if cli.cache_dir.is_some() && !cli.no_cache && cli.telemetry_overhead {
        return fail(
            "--cache-dir cannot be combined with --telemetry-overhead: cache hits would \
             replace the very work the timed passes are supposed to measure",
        );
    }
    if cli.observe_cost {
        return run_observe(&cli);
    }
    if cli.probe_period.is_some() {
        return fail("--probe-period needs --observe-cost");
    }
    let Some(bench) = cli.positionals.first() else {
        return usage();
    };

    let mut plan = match cli.faults.as_deref().map(FaultPlan::parse) {
        None => FaultPlan::none(),
        Some(Ok(p)) => p,
        Some(Err(e)) => return fail(&e.to_string()),
    };
    if let Some(seed) = cli.seed {
        plan = plan.with_seed(seed);
    }

    if bench == "all" || ARTIFACTS.contains(&bench.as_str()) {
        return run_figures(&cli, plan);
    }
    if cli.positionals.len() > 5 {
        return fail(&format!(
            "unexpected extra argument '{}'",
            cli.positionals[5]
        ));
    }
    if vmprobe_workloads::benchmark(bench).is_none() {
        return fail(&format!(
            "unknown benchmark '{bench}' (run with no arguments to list benchmarks)"
        ));
    }

    let vm = match cli.positionals.get(1).map(String::as_str) {
        None | Some("gencopy") => VmChoice::Jikes(CollectorKind::GenCopy),
        Some("semispace") => VmChoice::Jikes(CollectorKind::SemiSpace),
        Some("marksweep") => VmChoice::Jikes(CollectorKind::MarkSweep),
        Some("genms") => VmChoice::Jikes(CollectorKind::GenMs),
        Some("kaffe") => VmChoice::Kaffe,
        Some(other) => {
            return fail(&format!(
            "unknown collector '{other}' (expected semispace, marksweep, gencopy, genms or kaffe)"
        ))
        }
    };
    let heap_mb: u32 = match cli.positionals.get(2).map(|s| s.parse()) {
        None => 64,
        Some(Ok(v)) => v,
        Some(Err(_)) => {
            return fail(&format!(
                "heap size must be a number of MB, got '{}'",
                cli.positionals[2]
            ))
        }
    };
    let platform = match cli.positionals.get(3).map(String::as_str) {
        None | Some("p6") => PlatformKind::PentiumM,
        Some("pxa255") => PlatformKind::Pxa255,
        Some(other) => {
            return fail(&format!(
                "unknown platform '{other}' (expected p6 or pxa255)"
            ))
        }
    };
    let scale = match cli.positionals.get(4).map(String::as_str) {
        None | Some("full") => InputScale::Full,
        Some("s10") => InputScale::Reduced,
        Some(other) => return fail(&format!("unknown scale '{other}' (expected full or s10)")),
    };

    let cfg = ExperimentConfig {
        benchmark: bench.clone(),
        vm,
        heap_mb,
        platform,
        scale,
        trace_power: false,
        record_spans: false,
        verify: !cli.no_verify,
        probe: Default::default(),
    };

    let (telemetry, runner, result, wall, bare_best);
    if cli.telemetry_overhead {
        let mut bb = Duration::MAX;
        let mut ib = Duration::MAX;
        let mut last = None;
        for _ in 0..OVERHEAD_PASSES {
            let mut bare = make_runner(&cli, plan, Telemetry::disabled(), false, None);
            let t = Instant::now();
            // A failing config fails identically on the instrumented pass,
            // which owns error reporting.
            let _ = bare.run(&cfg);
            bb = bb.min(t.elapsed());

            let tel = cli.make_overhead_telemetry();
            let mut r = make_runner(&cli, plan, tel.clone(), false, None);
            let t = Instant::now();
            let res = r.run(&cfg);
            let elapsed = t.elapsed();
            ib = ib.min(elapsed);
            last = Some((tel, r, res, elapsed));
        }
        let (tel, r, res, w) = last.expect("at least one overhead pass");

        // Satellite split (see `print_tax_split`): one quiet pass with the
        // stock probe made non-transparent; simulated durations on both
        // sides, so the ratio is deterministic.
        let mut probed = make_runner(&cli, plan, Telemetry::disabled(), false, None)
            .with_probe_override(PROBE_TAX_SPEC);
        let probe_ppm = match (&res, probed.run(&cfg)) {
            (Ok(t), Ok(nt)) => probe_tax_ppm(
                (t.report.duration.seconds() * 1e6) as u64,
                (nt.report.duration.seconds() * 1e6) as u64,
            ),
            _ => 0,
        };
        let host_ppm = host_tax_ppm(bb, ib);
        record_tax(&tel, host_ppm, probe_ppm);

        (telemetry, runner, result, wall) = (tel, r, res, w);
        bare_best = Some((bb, ib, host_ppm, probe_ppm));
    } else {
        let cache = match cli.open_cache() {
            Ok(c) => c,
            Err(e) => return fail(&e),
        };
        telemetry = cli.make_telemetry();
        let mut r = make_runner(&cli, plan, telemetry.clone(), cli.verbose, cache);
        let t = std::time::Instant::now();
        result = r.run(&cfg);
        wall = t.elapsed();
        runner = r;
        bare_best = None;
    }
    if cli.resume {
        print_resume_summary(&runner);
    }
    if let Some(dest) = &cli.report_json {
        if let Err(e) = write_report(&runner, dest) {
            return fail(&e);
        }
    }
    if let Err(e) = write_telemetry(&cli, &telemetry) {
        return fail(&e);
    }
    let run = match result {
        Ok(r) => r,
        Err(e) => {
            let report = runner.report();
            if report.retries > 0 {
                eprintln!(
                    "error: {e} ({} attempts, {} virtual backoff ms)",
                    report.attempts_failed, report.backoff_virtual_ms
                );
            } else {
                eprintln!("error: {e}");
            }
            return ExitCode::FAILURE;
        }
    };

    println!("experiment : {cfg}");
    println!(
        "simulated  : {:.3} s ({} bytecodes, {} calls, {} allocs, wall {:.2?})",
        run.duration_s(),
        run.vm.bytecodes,
        run.vm.calls,
        run.vm.allocations,
        wall
    );
    println!(
        "energy     : cpu {:.3} J + mem {:.3} J = {:.3} J; EDP {:.4} J*s; mem share {:.1}%",
        run.report.cpu_energy.joules(),
        run.report.mem_energy.joules(),
        run.report.total_energy.joules(),
        run.edp(),
        100.0 * run.report.mem_energy_fraction()
    );
    println!(
        "gc         : {} collections ({} minor / {} major / {} incr), copied {} KiB, barriers {}",
        run.gc.collections,
        run.gc.minor_collections,
        run.gc.major_collections,
        run.gc.increments,
        run.gc.total_copied_bytes >> 10,
        run.gc.barrier_stores,
    );
    println!(
        "compile    : {} base, {} jit, {} opt; classes loaded {}",
        run.compiler.baseline_compiles,
        run.compiler.jit_compiles,
        run.compiler.opt_compiles,
        run.vm.classes_loaded
    );
    println!("components :");
    for c in ComponentId::ALL {
        if let Some(p) = run.report.component(c) {
            if p.samples == 0 && p.instructions == 0 {
                continue;
            }
            println!(
                "  {:9} {:6.2}% energy | {:8.3} ms | avg {:6.2} W peak {:6.2} W | ipc {:4.2} | L2miss {:5.1}%",
                c.label(),
                100.0 * run.fraction(c),
                1e3 * p.time.seconds(),
                p.avg_power.watts(),
                p.peak_power.watts(),
                p.ipc,
                100.0 * p.l2_miss_rate,
            );
        }
    }
    println!(
        "jvm energy : {:.1}%",
        100.0 * run.report.jvm_energy_fraction()
    );
    let faults = run.report.faults;
    if !faults.is_clean() {
        println!(
            "faults     : {} samples ({} dropped, {} dup), {} glitches, {} wraps unwrapped",
            faults.samples_total,
            faults.samples_dropped,
            faults.samples_duplicated,
            faults.port_glitches,
            faults.wraps_unwrapped,
        );
        println!(
            "degradation: |measured - clean| = {:.6} J <= bound {:.6} J (clean {:.3} J)",
            run.report.energy_deviation_j(),
            faults.energy_error_bound_j(),
            run.report.clean_total_energy.joules(),
        );
    }
    if let Some((bare, instrumented, host_ppm, probe_ppm)) = bare_best {
        print_overhead(bare, instrumented);
        print_tax_split(host_ppm, probe_ppm);
    }
    ExitCode::SUCCESS
}
