//! Command-line runner for a single characterization experiment.
//!
//! ```text
//! vmprobe-run <benchmark> [collector] [heap_mb] [platform] [scale]
//!   collector: semispace | marksweep | gencopy | genms | kaffe  (default gencopy)
//!   heap_mb:   paper heap label in MB                           (default 64)
//!   platform:  p6 | pxa255                                      (default p6)
//!   scale:     full | s10                                       (default full)
//! ```

use std::process::ExitCode;

use vmprobe::{ExperimentConfig, VmChoice};
use vmprobe_heap::CollectorKind;
use vmprobe_platform::PlatformKind;
use vmprobe_power::ComponentId;
use vmprobe_workloads::InputScale;

fn usage() -> ExitCode {
    eprintln!(
        "usage: vmprobe-run <benchmark> [semispace|marksweep|gencopy|genms|kaffe] \
         [heap_mb] [p6|pxa255] [full|s10]"
    );
    eprintln!("benchmarks:");
    for b in vmprobe_workloads::all_benchmarks() {
        eprintln!("  {:16} ({})", b.name, b.suite);
    }
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(bench) = args.first() else {
        return usage();
    };

    let vm = match args.get(1).map(String::as_str) {
        None | Some("gencopy") => VmChoice::Jikes(CollectorKind::GenCopy),
        Some("semispace") => VmChoice::Jikes(CollectorKind::SemiSpace),
        Some("marksweep") => VmChoice::Jikes(CollectorKind::MarkSweep),
        Some("genms") => VmChoice::Jikes(CollectorKind::GenMs),
        Some("kaffe") => VmChoice::Kaffe,
        Some(_) => return usage(),
    };
    let heap_mb: u32 = match args.get(2).map(|s| s.parse()) {
        None => 64,
        Some(Ok(v)) => v,
        Some(Err(_)) => return usage(),
    };
    let platform = match args.get(3).map(String::as_str) {
        None | Some("p6") => PlatformKind::PentiumM,
        Some("pxa255") => PlatformKind::Pxa255,
        Some(_) => return usage(),
    };
    let scale = match args.get(4).map(String::as_str) {
        None | Some("full") => InputScale::Full,
        Some("s10") => InputScale::Reduced,
        Some(_) => return usage(),
    };

    let cfg = ExperimentConfig {
        benchmark: bench.clone(),
        vm,
        heap_mb,
        platform,
        scale,
        trace_power: false,
    };
    let wall = std::time::Instant::now();
    let run = match cfg.run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let wall = wall.elapsed();

    println!("experiment : {cfg}");
    println!(
        "simulated  : {:.3} s ({} bytecodes, {} calls, {} allocs, wall {:.2?})",
        run.duration_s(),
        run.vm.bytecodes,
        run.vm.calls,
        run.vm.allocations,
        wall
    );
    println!(
        "energy     : cpu {:.3} J + mem {:.3} J = {:.3} J; EDP {:.4} J*s; mem share {:.1}%",
        run.report.cpu_energy.joules(),
        run.report.mem_energy.joules(),
        run.report.total_energy.joules(),
        run.edp(),
        100.0 * run.report.mem_energy_fraction()
    );
    println!(
        "gc         : {} collections ({} minor / {} major / {} incr), copied {} KiB, barriers {}",
        run.gc.collections,
        run.gc.minor_collections,
        run.gc.major_collections,
        run.gc.increments,
        run.gc.total_copied_bytes >> 10,
        run.gc.barrier_stores,
    );
    println!(
        "compile    : {} base, {} jit, {} opt; classes loaded {}",
        run.compiler.baseline_compiles,
        run.compiler.jit_compiles,
        run.compiler.opt_compiles,
        run.vm.classes_loaded
    );
    println!("components :");
    for c in ComponentId::ALL {
        if let Some(p) = run.report.component(c) {
            if p.samples == 0 && p.instructions == 0 {
                continue;
            }
            println!(
                "  {:9} {:6.2}% energy | {:8.3} ms | avg {:6.2} W peak {:6.2} W | ipc {:4.2} | L2miss {:5.1}%",
                c.label(),
                100.0 * run.fraction(c),
                1e3 * p.time.seconds(),
                p.avg_power.watts(),
                p.peak_power.watts(),
                p.ipc,
                100.0 * p.l2_miss_rate,
            );
        }
    }
    println!(
        "jvm energy : {:.1}%",
        100.0 * run.report.jvm_energy_fraction()
    );
    ExitCode::SUCCESS
}
