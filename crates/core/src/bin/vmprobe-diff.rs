//! The energy-regression gate CLI.
//!
//! ```text
//! vmprobe-diff [<benchmark>...] [flags]
//!   (no benchmarks = the full golden grid, both personalities)
//! flags:
//!   --jobs <n>                 sweep worker threads (default 1; output is
//!                              byte-identical for any value)
//!   --seed <n>                 diff root seed (default 53759)
//!   --replicates <n>           runs per cell in the seed ensemble (default 5)
//!   --resamples <n>            bootstrap draws per interval (default 200)
//!   --confidence <f>           two-sided CI level in (0,1) (default 0.99)
//!   --noise <f>                ensemble sensor-noise sigma (default 0.003)
//!   --min-shift <f>            practical-significance floor on |rel shift|
//!                              (default 0.005)
//!   --perturb <spec>           scale candidate-side component energies,
//!                              e.g. "gc=+5%,jit=-1%" (simulated build change)
//!   --cache-dir <path>         persistent cache shared by both sides
//!   --baseline-fingerprint <l> address the baseline side's cache entries
//!                              (default: this build's fingerprint)
//!   --candidate-fingerprint <l> likewise for the candidate side
//!   --out <path>               write the RegressionReport JSON to a file
//!   --json                     print the JSON report on stdout
//! ```
//!
//! Exit status: 0 when no regression is flagged, 1 when at least one is,
//! 2 on usage or execution errors.

use std::process::ExitCode;
use std::sync::Arc;

use vmprobe::cache::build_fingerprint;
use vmprobe::{golden_cells, DiffEngine, DiffOptions, DiffSide, ExperimentCache, Telemetry};
use vmprobe_power::EnergyPerturbation;

struct Cli {
    benchmarks: Vec<String>,
    jobs: usize,
    options: DiffOptions,
    perturb: EnergyPerturbation,
    cache_dir: Option<String>,
    baseline_fingerprint: Option<String>,
    candidate_fingerprint: Option<String>,
    out: Option<String>,
    json: bool,
}

impl Default for Cli {
    fn default() -> Self {
        Self {
            benchmarks: Vec::new(),
            jobs: 1,
            options: DiffOptions::default(),
            perturb: EnergyPerturbation::none(),
            cache_dir: None,
            baseline_fingerprint: None,
            candidate_fingerprint: None,
            out: None,
            json: false,
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: vmprobe-diff [<benchmark>...] [--jobs <n>] [--seed <n>] [--replicates <n>]\n\
         \x20                   [--resamples <n>] [--confidence <f>] [--noise <f>]\n\
         \x20                   [--min-shift <f>] [--perturb <spec>] [--cache-dir <path>]\n\
         \x20                   [--baseline-fingerprint <l>] [--candidate-fingerprint <l>]\n\
         \x20                   [--out <path>] [--json]"
    );
    ExitCode::from(2)
}

fn parse_args(args: Vec<String>) -> Result<Cli, String> {
    let mut cli = Cli::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--help" || arg == "-h" {
            return Err(String::new());
        }
        let Some(flag) = arg.strip_prefix("--") else {
            cli.benchmarks.push(arg);
            continue;
        };
        let (name, inline) = match flag.split_once('=') {
            Some((n, v)) => (n.to_owned(), Some(v.to_owned())),
            None => (flag.to_owned(), None),
        };
        match name.as_str() {
            "json" => cli.json = true,
            _ => {
                let Some(value) = inline.or_else(|| it.next()) else {
                    return Err(format!("--{name} needs a value"));
                };
                let int = |v: &str, flag: &str| -> Result<u64, String> {
                    v.parse()
                        .map_err(|_| format!("--{flag} expects an integer, got '{v}'"))
                };
                let float = |v: &str, flag: &str| -> Result<f64, String> {
                    v.parse()
                        .map_err(|_| format!("--{flag} expects a number, got '{v}'"))
                };
                match name.as_str() {
                    "jobs" => cli.jobs = int(&value, "jobs")?.max(1) as usize,
                    "seed" => cli.options.seed = int(&value, "seed")?,
                    "replicates" => {
                        cli.options.replicates = int(&value, "replicates")?.max(1) as usize
                    }
                    "resamples" => cli.options.resamples = int(&value, "resamples")?.max(1) as u32,
                    "confidence" => {
                        let c = float(&value, "confidence")?;
                        if !(c > 0.0 && c < 1.0) {
                            return Err(format!("--confidence must be in (0,1), got {c}"));
                        }
                        cli.options.confidence = c;
                    }
                    "noise" => {
                        let s = float(&value, "noise")?;
                        if !(s >= 0.0 && s.is_finite()) {
                            return Err(format!("--noise must be >= 0, got {s}"));
                        }
                        cli.options.noise_sigma = s;
                    }
                    "min-shift" => {
                        let m = float(&value, "min-shift")?;
                        if !(m >= 0.0 && m.is_finite()) {
                            return Err(format!("--min-shift must be >= 0, got {m}"));
                        }
                        cli.options.min_rel_shift = m;
                    }
                    "perturb" => {
                        cli.perturb =
                            EnergyPerturbation::parse(&value).map_err(|e| e.to_string())?
                    }
                    "cache-dir" => cli.cache_dir = Some(value),
                    "baseline-fingerprint" => cli.baseline_fingerprint = Some(value),
                    "candidate-fingerprint" => cli.candidate_fingerprint = Some(value),
                    "out" => cli.out = Some(value),
                    other => return Err(format!("unknown flag --{other}")),
                }
            }
        }
    }
    Ok(cli)
}

fn side(dir: Option<&str>, label: &str) -> Result<DiffSide, String> {
    let mut side = DiffSide::new(label);
    if let Some(dir) = dir {
        let cache = ExperimentCache::open(dir)
            .map_err(|e| format!("cannot open cache {dir}: {e}"))?
            .with_fingerprint(label);
        side = side.with_cache(Arc::new(cache));
    }
    Ok(side)
}

fn run(cli: &Cli) -> Result<ExitCode, String> {
    let mut cells = golden_cells();
    if !cli.benchmarks.is_empty() {
        for name in &cli.benchmarks {
            if !cells.iter().any(|c| &c.benchmark == name) {
                return Err(format!("unknown benchmark '{name}'"));
            }
        }
        cells.retain(|c| cli.benchmarks.contains(&c.benchmark));
    }

    let build = build_fingerprint();
    let base_label = cli.baseline_fingerprint.as_deref().unwrap_or(&build);
    let cand_label = cli.candidate_fingerprint.as_deref().unwrap_or(&build);
    let dir = cli.cache_dir.as_deref();
    let engine = DiffEngine::new(cli.options, side(dir, base_label)?, side(dir, cand_label)?)
        .perturb(cli.perturb.clone())
        .jobs(cli.jobs)
        .with_telemetry(Telemetry::counters_only());

    let report = engine.run(&cells)?;

    if cli.json {
        println!("{}", report.to_json());
    } else {
        for (kind, deltas) in [
            ("REGRESSION", &report.regressions),
            ("improvement", &report.improvements),
        ] {
            for d in deltas {
                println!(
                    "{kind}: {} [{}]: {:.4e} J -> {:.4e} J ({:+.2}%), CI [{:.4e}, {:.4e}] vs [{:.4e}, {:.4e}]",
                    d.cell,
                    d.component,
                    d.baseline.mean,
                    d.candidate.mean,
                    d.rel_shift * 100.0,
                    d.baseline.lo,
                    d.baseline.hi,
                    d.candidate.lo,
                    d.candidate.hi,
                );
            }
        }
    }
    if let Some(path) = &cli.out {
        std::fs::write(path, report.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    let summary = if report.clean() {
        format!(
            "diff-gate: clean — no regressions across {} cells ({} comparisons)",
            report.cells, report.comparisons
        )
    } else {
        format!(
            "diff-gate: {} regression(s) in [{}] across {} cells ({} comparisons)",
            report.regressions.len(),
            report.components_flagged().join(", "),
            report.cells,
            report.comparisons
        )
    };
    // In --json mode stdout carries exactly the report, so scripts can pipe
    // it straight into a JSON parser; the human summary moves to stderr.
    if cli.json {
        eprintln!("{summary}");
    } else {
        println!("{summary}");
    }
    Ok(if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let cli = match parse_args(std::env::args().skip(1).collect()) {
        Ok(cli) => cli,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("vmprobe-diff: {msg}");
            }
            return usage();
        }
    };
    match run(&cli) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("vmprobe-diff: {e}");
            ExitCode::from(2)
        }
    }
}
