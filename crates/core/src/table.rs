//! Minimal ASCII table rendering for figure/table output.

use std::fmt;

/// A simple column-aligned text table.
///
/// # Example
///
/// ```
/// use vmprobe::Table;
///
/// let mut t = Table::new(vec!["bench".into(), "EDP".into()]);
/// t.row(vec!["_209_db".into(), "12.3".into()]);
/// let s = t.to_string();
/// assert!(s.contains("_209_db"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        Self {
            header,
            rows: Vec::new(),
        }
    }

    /// Append a row (shorter rows are padded with empty cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let measure = |widths: &mut Vec<usize>, row: &[String]| {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        };
        measure(&mut widths, &self.header);
        for r in &self.rows {
            measure(&mut widths, r);
        }

        let write_row = |f: &mut fmt::Formatter<'_>, row: &[String]| -> fmt::Result {
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                if i + 1 == widths.len() {
                    writeln!(f, "{cell:<w$}")?;
                } else {
                    write!(f, "{cell:<w$}  ")?;
                }
            }
            Ok(())
        };

        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for r in &self.rows {
            write_row(f, r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a".into(), "bench".into()]);
        t.row(vec!["1".into(), "x".into()]);
        t.row(vec!["22".into(), "yy".into()]);
        let s = t.to_string();
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("---"));
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a".into(), "b".into(), "c".into()]);
        t.row(vec!["only".into()]);
        let s = t.to_string();
        assert!(s.contains("only"));
    }
}
