//! The parallel sweep engine: a work-stealing thread pool plus a sharded
//! concurrent memo cache.
//!
//! The paper's evaluation is a large cross-product of configurations —
//! {Jikes, Kaffe} × four collectors × heap sizes × sixteen benchmarks —
//! and every cell is an independent, fully deterministic simulation. The
//! engine exploits that: a figure sweep submits its whole grid as one
//! batch, the [`WorkStealingPool`] executes the cells on however many
//! worker threads were requested, and the [`ShardedMemo`] guarantees each
//! distinct configuration is computed **at most once** no matter how many
//! sweeps or threads ask for it.
//!
//! # Determinism contract
//!
//! Thread count must never change results. The engine's side of the
//! contract:
//!
//! * **execution is order-free** — every cell is a pure function of its
//!   configuration (per-cell fault seeds are derived from the master seed
//!   and the cell key, never from shared RNG state), so cells may run in
//!   any order on any worker;
//! * **merging is ordered** — the supervised runner folds per-cell
//!   outcomes into figure rows and the campaign [`crate::RunReport`] in
//!   batch submission order, never completion order.
//!
//! Together these make a sweep's figure tables, `RunReport` JSON, and
//! fault ledgers bit-identical for `--jobs 1` and `--jobs N`
//! (`tests/parallel_determinism.rs` enforces this).

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, MutexGuard};

use vmprobe_telemetry::{CounterId, Telemetry};

/// Default worker count: the machine's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Lock a mutex, recovering from poisoning.
///
/// Every guarded section in this module is short push/pop/fold-only code
/// that cannot panic mid-invariant — tasks always run *outside* the locks
/// — so a poisoned mutex only means some worker panicked in its *task*.
/// That failure is surfaced separately (and with its cell key) as
/// [`SweepError::WorkerPanicked`]; recovering here lets the remaining
/// workers drain cleanly instead of cascading secondary panics.
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// A sweep batch failed to complete.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SweepError {
    /// A task panicked on a pool worker. The batch drains to completion
    /// (sibling results are discarded) and the panic with the *smallest
    /// submission index* is reported — the same cell the serial path
    /// would name — so the error is identical for every worker count.
    WorkerPanicked {
        /// Key of the panicking cell (the experiment cache key for
        /// supervised sweeps).
        key: String,
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::WorkerPanicked { key, message } => {
                write!(
                    f,
                    "sweep worker panicked while computing `{key}`: {message}"
                )
            }
        }
    }
}

impl std::error::Error for SweepError {}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

// ------------------------------------------------------- work-stealing pool

/// A batch-oriented work-stealing scheduler.
///
/// Each worker owns a deque seeded round-robin with the batch's tasks;
/// a worker pops its own deque from the back (LIFO, cache-warm) and, when
/// empty, steals from the front of a sibling's deque (FIFO, oldest work
/// first). Because batches are closed — no task spawns further tasks —
/// an empty scan over every deque is a correct termination condition and
/// no idle-worker parking is needed.
#[derive(Debug, Clone)]
pub struct WorkStealingPool {
    jobs: usize,
    telemetry: Telemetry,
}

impl WorkStealingPool {
    /// A pool that runs batches on `jobs` workers (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        Self {
            jobs: jobs.max(1),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry handle: successful steals bump
    /// [`CounterId::WorkerSteals`] and each worker's drain is recorded as
    /// a host span on its own `worker-N` track.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs.max(1)
    }

    /// Run `task` over every item and return the results **in item
    /// order**, regardless of which worker executed what when.
    ///
    /// With one worker (or one item) the batch runs inline on the calling
    /// thread — the serial path and the parallel path share every line of
    /// per-cell code.
    ///
    /// # Panics
    ///
    /// Panics (with the formatted [`SweepError`]) when any task panics;
    /// use [`WorkStealingPool::try_run`] to get the typed error instead.
    pub fn run<I, T, F>(&self, items: Vec<I>, task: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I) -> T + Sync,
    {
        self.try_run(items, |i, _| format!("#{i}"), task)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`WorkStealingPool::run`], but a panicking task surfaces
    /// [`SweepError::WorkerPanicked`] naming the cell — via `key_of`,
    /// which is evaluated *before* the task runs — instead of poisoning
    /// the pool or tearing the process down mid-sweep.
    ///
    /// The batch still drains every cell (steal order is timing-dependent,
    /// so an early abort would make the winning panic racy); when several
    /// tasks panic, the one with the smallest submission index wins. That
    /// is exactly the cell the inline serial path stops at, so the
    /// reported error is bit-identical for any `--jobs N`.
    pub fn try_run<I, T, K, F>(
        &self,
        items: Vec<I>,
        key_of: K,
        task: F,
    ) -> Result<Vec<T>, SweepError>
    where
        I: Send,
        T: Send,
        K: Fn(usize, &I) -> String + Sync,
        F: Fn(usize, I) -> T + Sync,
    {
        let n = items.len();
        let workers = self.jobs.min(n);
        if workers <= 1 {
            let mut out = Vec::with_capacity(n);
            for (i, item) in items.into_iter().enumerate() {
                let key = key_of(i, &item);
                match catch_unwind(AssertUnwindSafe(|| task(i, item))) {
                    Ok(t) => out.push(t),
                    Err(p) => {
                        return Err(SweepError::WorkerPanicked {
                            key,
                            message: panic_message(p.as_ref()),
                        })
                    }
                }
            }
            return Ok(out);
        }

        let deques: Vec<Mutex<VecDeque<(usize, I)>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, item) in items.into_iter().enumerate() {
            lock_unpoisoned(&deques[i % workers]).push_back((i, item));
        }

        let failure: Mutex<Option<(usize, SweepError)>> = Mutex::new(None);
        let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let deques = &deques;
                    let task = &task;
                    let key_of = &key_of;
                    let failure = &failure;
                    let telemetry = &self.telemetry;
                    scope.spawn(move || {
                        let _drain = telemetry.host_span(&format!("worker-{w}"), "drain");
                        let mut out = Vec::new();
                        loop {
                            // Pop-then-steal as two statements: chaining
                            // them keeps the guard on our own deque alive
                            // through the steal scan (temporaries live to
                            // the end of the statement), and two workers
                            // scanning each other's deques while holding
                            // their own would deadlock.
                            let own = lock_unpoisoned(&deques[w]).pop_back();
                            let job = own.or_else(|| {
                                (1..workers).find_map(|k| {
                                    let stolen =
                                        lock_unpoisoned(&deques[(w + k) % workers]).pop_front();
                                    if stolen.is_some() {
                                        telemetry.count(CounterId::WorkerSteals, 1);
                                    }
                                    stolen
                                })
                            });
                            match job {
                                Some((i, item)) => {
                                    let key = key_of(i, &item);
                                    match catch_unwind(AssertUnwindSafe(|| task(i, item))) {
                                        Ok(t) => out.push((i, t)),
                                        Err(p) => {
                                            let mut slot = lock_unpoisoned(failure);
                                            if slot.as_ref().is_none_or(|(j, _)| i < *j) {
                                                *slot = Some((
                                                    i,
                                                    SweepError::WorkerPanicked {
                                                        key,
                                                        message: panic_message(p.as_ref()),
                                                    },
                                                ));
                                            }
                                        }
                                    }
                                }
                                None => break,
                            }
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                // Workers catch task panics themselves, so a join failure
                // would be a bug in the pool, not in a task.
                for (i, t) in h.join().expect("pool worker infrastructure panicked") {
                    results[i] = Some(t);
                }
            }
        });
        if let Some((_, e)) = lock_unpoisoned(&failure).take() {
            return Err(e);
        }
        Ok(results
            .into_iter()
            .map(|t| t.expect("every cell completed"))
            .collect())
    }
}

// ------------------------------------------------------------ sharded memo

/// How many independently locked shards the memo spreads keys over.
const SHARD_COUNT: usize = 16;

#[derive(Debug)]
enum Slot<V> {
    /// Some thread claimed the key and is computing; waiters block on the
    /// shard condvar.
    InFlight,
    /// The computed value.
    Ready(V),
}

#[derive(Debug)]
struct Shard<V> {
    map: Mutex<HashMap<String, Slot<V>>>,
    ready: Condvar,
}

/// A sharded concurrent memo: at most one computation per key, ever.
///
/// `get_or_compute` claims a key under the shard lock, computes **outside**
/// the lock, then publishes and wakes waiters — so two cells hashing to
/// the same shard never serialize their (multi-second) simulations, only
/// their map accesses. This replaces the supervised runner's former
/// single-threaded positive/negative `HashMap` caches.
#[derive(Debug)]
pub struct ShardedMemo<V> {
    shards: Vec<Shard<V>>,
    telemetry: Telemetry,
}

impl<V> Default for ShardedMemo<V> {
    fn default() -> Self {
        Self {
            shards: (0..SHARD_COUNT)
                .map(|_| Shard {
                    map: Mutex::new(HashMap::new()),
                    ready: Condvar::new(),
                })
                .collect(),
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Removes an in-flight claim if the computing closure panics, so waiters
/// wake and retry instead of deadlocking on a slot no one will fill.
struct ClaimGuard<'a, V> {
    shard: &'a Shard<V>,
    key: &'a str,
    armed: bool,
}

impl<V> Drop for ClaimGuard<'_, V> {
    fn drop(&mut self) {
        if self.armed {
            let mut map = lock_unpoisoned(&self.shard.map);
            map.remove(self.key);
            self.shard.ready.notify_all();
        }
    }
}

impl<V: Clone> ShardedMemo<V> {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a telemetry handle: blocking on another thread's in-flight
    /// computation bumps [`CounterId::MemoInFlightWaits`].
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    fn shard(&self, key: &str) -> &Shard<V> {
        // FNV-1a; only shard balance matters here.
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for &b in key.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        &self.shards[(h % SHARD_COUNT as u64) as usize]
    }

    /// The value for `key` if it is already published (`None` while absent
    /// or still in flight — never blocks).
    pub fn peek(&self, key: &str) -> Option<V> {
        match lock_unpoisoned(&self.shard(key).map).get(key) {
            Some(Slot::Ready(v)) => Some(v.clone()),
            Some(Slot::InFlight) | None => None,
        }
    }

    /// Return the published value for `key`, or claim the key and compute
    /// it. Concurrent callers for the same key block until the computing
    /// thread publishes, then all observe the identical value; `compute`
    /// runs **at most once per key** across all threads for the lifetime
    /// of the memo.
    ///
    /// The boolean is `true` for the caller whose closure actually ran.
    pub fn get_or_compute<F>(&self, key: &str, compute: F) -> (V, bool)
    where
        F: FnOnce() -> V,
    {
        let shard = self.shard(key);
        {
            let mut map = lock_unpoisoned(&shard.map);
            loop {
                match map.get(key) {
                    Some(Slot::Ready(v)) => return (v.clone(), false),
                    Some(Slot::InFlight) => {
                        self.telemetry.count(CounterId::MemoInFlightWaits, 1);
                        map = shard.ready.wait(map).unwrap_or_else(|p| p.into_inner());
                    }
                    None => {
                        map.insert(key.to_owned(), Slot::InFlight);
                        break;
                    }
                }
            }
        }
        let mut guard = ClaimGuard {
            shard,
            key,
            armed: true,
        };
        let value = compute();
        guard.armed = false;
        drop(guard);
        let mut map = lock_unpoisoned(&shard.map);
        map.insert(key.to_owned(), Slot::Ready(value.clone()));
        shard.ready.notify_all();
        (value, true)
    }

    /// Number of published values across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                lock_unpoisoned(&s.map)
                    .values()
                    .filter(|v| matches!(v, Slot::Ready(_)))
                    .count()
            })
            .sum()
    }

    /// True when nothing is published yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of published values matching a predicate (e.g. successful
    /// runs vs quarantined failures).
    pub fn count_matching<F>(&self, mut pred: F) -> usize
    where
        F: FnMut(&V) -> bool,
    {
        self.shards
            .iter()
            .map(|s| {
                lock_unpoisoned(&s.map)
                    .values()
                    .filter(|v| match v {
                        Slot::Ready(v) => pred(v),
                        Slot::InFlight => false,
                    })
                    .count()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_preserves_item_order_in_results() {
        for jobs in [1, 2, 8] {
            let pool = WorkStealingPool::new(jobs);
            let out = pool.run((0..100).collect(), |_, x: u64| x * 2);
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pool_clamps_zero_jobs_to_one() {
        assert_eq!(WorkStealingPool::new(0).jobs(), 1);
    }

    #[test]
    fn pool_runs_every_task_exactly_once() {
        let counter = AtomicUsize::new(0);
        let pool = WorkStealingPool::new(4);
        let out = pool.run((0..257).collect::<Vec<u32>>(), |i, x| {
            counter.fetch_add(1, Ordering::Relaxed);
            assert_eq!(i as u32, x);
            x
        });
        assert_eq!(out.len(), 257);
        assert_eq!(counter.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn memo_computes_once_per_key() {
        let memo: ShardedMemo<u64> = ShardedMemo::new();
        let calls = AtomicUsize::new(0);
        let (a, computed_a) = memo.get_or_compute("k", || {
            calls.fetch_add(1, Ordering::Relaxed);
            7
        });
        let (b, computed_b) = memo.get_or_compute("k", || {
            calls.fetch_add(1, Ordering::Relaxed);
            99
        });
        assert_eq!((a, b), (7, 7));
        assert!(computed_a && !computed_b);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(memo.len(), 1);
        assert_eq!(memo.peek("k"), Some(7));
        assert_eq!(memo.peek("absent"), None);
    }

    #[test]
    fn memo_is_once_per_key_under_contention() {
        let memo: ShardedMemo<usize> = ShardedMemo::new();
        let calls = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for i in 0..200 {
                        let key = format!("key-{}", i % 50);
                        let (v, _) = memo.get_or_compute(&key, || {
                            calls.fetch_add(1, Ordering::Relaxed);
                            i % 50
                        });
                        assert_eq!(v, i % 50);
                    }
                });
            }
        });
        assert_eq!(calls.load(Ordering::Relaxed), 50, "a key was recomputed");
        assert_eq!(memo.len(), 50);
    }

    #[test]
    fn memo_claim_is_released_when_compute_panics() {
        let memo: ShardedMemo<u64> = ShardedMemo::new();
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            memo.get_or_compute("k", || panic!("boom"));
        }));
        assert!(attempt.is_err());
        // The key must be computable again, not deadlocked in flight.
        let (v, computed) = memo.get_or_compute("k", || 5);
        assert_eq!(v, 5);
        assert!(computed);
    }

    #[test]
    fn try_run_surfaces_panicking_cell_key() {
        for jobs in [1, 4] {
            let pool = WorkStealingPool::new(jobs);
            let err = pool
                .try_run(
                    (0..16).collect::<Vec<u32>>(),
                    |_, x| format!("cell-{x}"),
                    |_, x| {
                        if x == 7 {
                            panic!("injected task failure");
                        }
                        x * 2
                    },
                )
                .unwrap_err();
            let SweepError::WorkerPanicked { key, message } = err;
            assert_eq!(key, "cell-7");
            assert!(message.contains("injected task failure"));
        }
    }

    #[test]
    fn pool_is_usable_after_a_panicked_batch() {
        let pool = WorkStealingPool::new(4);
        let first = pool.try_run(
            vec![1u32],
            |_, _| "k".into(),
            |_, _| -> u32 { panic!("boom") },
        );
        assert!(first.is_err());
        let second = pool.try_run((0..32).collect(), |i, _| format!("#{i}"), |_, x: u32| x + 1);
        assert_eq!(second.unwrap(), (1..=32).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_panics_report_smallest_submission_index() {
        // Every task panics; whichever workers hit them, the reported cell
        // must always be the first submitted one.
        for _ in 0..8 {
            let pool = WorkStealingPool::new(8);
            let err = pool
                .try_run(
                    (0..64).collect::<Vec<u32>>(),
                    |i, _| format!("cell-{i}"),
                    |_, _| -> u32 { panic!("all fail") },
                )
                .unwrap_err();
            let SweepError::WorkerPanicked { key, .. } = err;
            assert_eq!(key, "cell-0");
        }
    }

    #[test]
    fn steals_are_counted_when_telemetry_attached() {
        let telemetry = Telemetry::counters_only();
        let pool = WorkStealingPool::new(4).with_telemetry(telemetry.clone());
        // Skewed work: worker 0's own deque drains last, so siblings steal.
        pool.run((0..64).collect::<Vec<u64>>(), |_, x| {
            if x % 4 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x
        });
        // Steals are timing-dependent; the counter existing and not
        // panicking is the contract, a non-zero value is likely but not
        // guaranteed.
        let _ = telemetry.counter(CounterId::WorkerSteals);
    }

    #[test]
    fn memo_counts_in_flight_waits() {
        let mut memo: ShardedMemo<u64> = ShardedMemo::new();
        let telemetry = Telemetry::counters_only();
        memo.set_telemetry(telemetry.clone());
        let started = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                memo.get_or_compute("k", || {
                    started.store(true, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    7
                });
            });
            while !started.load(Ordering::SeqCst) {
                std::hint::spin_loop();
            }
            let (v, computed) = memo.get_or_compute("k", || 99);
            assert_eq!(v, 7);
            assert!(!computed);
        });
        assert!(telemetry.counter(CounterId::MemoInFlightWaits) >= 1);
    }

    #[test]
    fn count_matching_filters_values() {
        let memo: ShardedMemo<u64> = ShardedMemo::new();
        for i in 0..10u64 {
            memo.get_or_compute(&format!("k{i}"), || i);
        }
        assert_eq!(memo.count_matching(|v| v % 2 == 0), 5);
        assert!(!memo.is_empty());
    }
}
