//! The parallel sweep engine: a work-stealing thread pool plus a sharded
//! concurrent memo cache.
//!
//! The paper's evaluation is a large cross-product of configurations —
//! {Jikes, Kaffe} × four collectors × heap sizes × sixteen benchmarks —
//! and every cell is an independent, fully deterministic simulation. The
//! engine exploits that: a figure sweep submits its whole grid as one
//! batch, the [`WorkStealingPool`] executes the cells on however many
//! worker threads were requested, and the [`ShardedMemo`] guarantees each
//! distinct configuration is computed **at most once** no matter how many
//! sweeps or threads ask for it.
//!
//! # Determinism contract
//!
//! Thread count must never change results. The engine's side of the
//! contract:
//!
//! * **execution is order-free** — every cell is a pure function of its
//!   configuration (per-cell fault seeds are derived from the master seed
//!   and the cell key, never from shared RNG state), so cells may run in
//!   any order on any worker;
//! * **merging is ordered** — the supervised runner folds per-cell
//!   outcomes into figure rows and the campaign [`crate::RunReport`] in
//!   batch submission order, never completion order.
//!
//! Together these make a sweep's figure tables, `RunReport` JSON, and
//! fault ledgers bit-identical for `--jobs 1` and `--jobs N`
//! (`tests/parallel_determinism.rs` enforces this).

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// Default worker count: the machine's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

// ------------------------------------------------------- work-stealing pool

/// A batch-oriented work-stealing scheduler.
///
/// Each worker owns a deque seeded round-robin with the batch's tasks;
/// a worker pops its own deque from the back (LIFO, cache-warm) and, when
/// empty, steals from the front of a sibling's deque (FIFO, oldest work
/// first). Because batches are closed — no task spawns further tasks —
/// an empty scan over every deque is a correct termination condition and
/// no idle-worker parking is needed.
#[derive(Debug, Clone)]
pub struct WorkStealingPool {
    jobs: usize,
}

impl WorkStealingPool {
    /// A pool that runs batches on `jobs` workers (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        Self { jobs: jobs.max(1) }
    }

    /// Configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Run `task` over every item and return the results **in item
    /// order**, regardless of which worker executed what when.
    ///
    /// With one worker (or one item) the batch runs inline on the calling
    /// thread — the serial path and the parallel path share every line of
    /// per-cell code.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any task after the batch winds down.
    pub fn run<I, T, F>(&self, items: Vec<I>, task: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I) -> T + Sync,
    {
        let n = items.len();
        let workers = self.jobs.min(n);
        if workers <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| task(i, item))
                .collect();
        }

        let deques: Vec<Mutex<VecDeque<(usize, I)>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, item) in items.into_iter().enumerate() {
            deques[i % workers].lock().unwrap().push_back((i, item));
        }

        let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let deques = &deques;
                    let task = &task;
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        loop {
                            let job = deques[w].lock().unwrap().pop_back().or_else(|| {
                                (1..workers).find_map(|k| {
                                    deques[(w + k) % workers].lock().unwrap().pop_front()
                                })
                            });
                            match job {
                                Some((i, item)) => out.push((i, task(i, item))),
                                None => break,
                            }
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                for (i, t) in h.join().expect("sweep worker panicked") {
                    results[i] = Some(t);
                }
            }
        });
        results
            .into_iter()
            .map(|t| t.expect("every cell completed"))
            .collect()
    }
}

// ------------------------------------------------------------ sharded memo

/// How many independently locked shards the memo spreads keys over.
const SHARD_COUNT: usize = 16;

#[derive(Debug)]
enum Slot<V> {
    /// Some thread claimed the key and is computing; waiters block on the
    /// shard condvar.
    InFlight,
    /// The computed value.
    Ready(V),
}

#[derive(Debug)]
struct Shard<V> {
    map: Mutex<HashMap<String, Slot<V>>>,
    ready: Condvar,
}

/// A sharded concurrent memo: at most one computation per key, ever.
///
/// `get_or_compute` claims a key under the shard lock, computes **outside**
/// the lock, then publishes and wakes waiters — so two cells hashing to
/// the same shard never serialize their (multi-second) simulations, only
/// their map accesses. This replaces the supervised runner's former
/// single-threaded positive/negative `HashMap` caches.
#[derive(Debug)]
pub struct ShardedMemo<V> {
    shards: Vec<Shard<V>>,
}

impl<V> Default for ShardedMemo<V> {
    fn default() -> Self {
        Self {
            shards: (0..SHARD_COUNT)
                .map(|_| Shard {
                    map: Mutex::new(HashMap::new()),
                    ready: Condvar::new(),
                })
                .collect(),
        }
    }
}

/// Removes an in-flight claim if the computing closure panics, so waiters
/// wake and retry instead of deadlocking on a slot no one will fill.
struct ClaimGuard<'a, V> {
    shard: &'a Shard<V>,
    key: &'a str,
    armed: bool,
}

impl<V> Drop for ClaimGuard<'_, V> {
    fn drop(&mut self) {
        if self.armed {
            let mut map = self.shard.map.lock().unwrap();
            map.remove(self.key);
            self.shard.ready.notify_all();
        }
    }
}

impl<V: Clone> ShardedMemo<V> {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    fn shard(&self, key: &str) -> &Shard<V> {
        // FNV-1a; only shard balance matters here.
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for &b in key.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        &self.shards[(h % SHARD_COUNT as u64) as usize]
    }

    /// The value for `key` if it is already published (`None` while absent
    /// or still in flight — never blocks).
    pub fn peek(&self, key: &str) -> Option<V> {
        match self.shard(key).map.lock().unwrap().get(key) {
            Some(Slot::Ready(v)) => Some(v.clone()),
            Some(Slot::InFlight) | None => None,
        }
    }

    /// Return the published value for `key`, or claim the key and compute
    /// it. Concurrent callers for the same key block until the computing
    /// thread publishes, then all observe the identical value; `compute`
    /// runs **at most once per key** across all threads for the lifetime
    /// of the memo.
    ///
    /// The boolean is `true` for the caller whose closure actually ran.
    pub fn get_or_compute<F>(&self, key: &str, compute: F) -> (V, bool)
    where
        F: FnOnce() -> V,
    {
        let shard = self.shard(key);
        {
            let mut map = shard.map.lock().unwrap();
            loop {
                match map.get(key) {
                    Some(Slot::Ready(v)) => return (v.clone(), false),
                    Some(Slot::InFlight) => map = shard.ready.wait(map).unwrap(),
                    None => {
                        map.insert(key.to_owned(), Slot::InFlight);
                        break;
                    }
                }
            }
        }
        let mut guard = ClaimGuard {
            shard,
            key,
            armed: true,
        };
        let value = compute();
        guard.armed = false;
        drop(guard);
        let mut map = shard.map.lock().unwrap();
        map.insert(key.to_owned(), Slot::Ready(value.clone()));
        shard.ready.notify_all();
        (value, true)
    }

    /// Number of published values across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.map
                    .lock()
                    .unwrap()
                    .values()
                    .filter(|v| matches!(v, Slot::Ready(_)))
                    .count()
            })
            .sum()
    }

    /// True when nothing is published yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of published values matching a predicate (e.g. successful
    /// runs vs quarantined failures).
    pub fn count_matching<F>(&self, mut pred: F) -> usize
    where
        F: FnMut(&V) -> bool,
    {
        self.shards
            .iter()
            .map(|s| {
                s.map
                    .lock()
                    .unwrap()
                    .values()
                    .filter(|v| match v {
                        Slot::Ready(v) => pred(v),
                        Slot::InFlight => false,
                    })
                    .count()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_preserves_item_order_in_results() {
        for jobs in [1, 2, 8] {
            let pool = WorkStealingPool::new(jobs);
            let out = pool.run((0..100).collect(), |_, x: u64| x * 2);
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pool_clamps_zero_jobs_to_one() {
        assert_eq!(WorkStealingPool::new(0).jobs(), 1);
    }

    #[test]
    fn pool_runs_every_task_exactly_once() {
        let counter = AtomicUsize::new(0);
        let pool = WorkStealingPool::new(4);
        let out = pool.run((0..257).collect::<Vec<u32>>(), |i, x| {
            counter.fetch_add(1, Ordering::Relaxed);
            assert_eq!(i as u32, x);
            x
        });
        assert_eq!(out.len(), 257);
        assert_eq!(counter.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn memo_computes_once_per_key() {
        let memo: ShardedMemo<u64> = ShardedMemo::new();
        let calls = AtomicUsize::new(0);
        let (a, computed_a) = memo.get_or_compute("k", || {
            calls.fetch_add(1, Ordering::Relaxed);
            7
        });
        let (b, computed_b) = memo.get_or_compute("k", || {
            calls.fetch_add(1, Ordering::Relaxed);
            99
        });
        assert_eq!((a, b), (7, 7));
        assert!(computed_a && !computed_b);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(memo.len(), 1);
        assert_eq!(memo.peek("k"), Some(7));
        assert_eq!(memo.peek("absent"), None);
    }

    #[test]
    fn memo_is_once_per_key_under_contention() {
        let memo: ShardedMemo<usize> = ShardedMemo::new();
        let calls = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for i in 0..200 {
                        let key = format!("key-{}", i % 50);
                        let (v, _) = memo.get_or_compute(&key, || {
                            calls.fetch_add(1, Ordering::Relaxed);
                            i % 50
                        });
                        assert_eq!(v, i % 50);
                    }
                });
            }
        });
        assert_eq!(calls.load(Ordering::Relaxed), 50, "a key was recomputed");
        assert_eq!(memo.len(), 50);
    }

    #[test]
    fn memo_claim_is_released_when_compute_panics() {
        let memo: ShardedMemo<u64> = ShardedMemo::new();
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            memo.get_or_compute("k", || panic!("boom"));
        }));
        assert!(attempt.is_err());
        // The key must be computable again, not deadlocked in flight.
        let (v, computed) = memo.get_or_compute("k", || 5);
        assert_eq!(v, 5);
        assert!(computed);
    }

    #[test]
    fn count_matching_filters_values() {
        let memo: ShardedMemo<u64> = ShardedMemo::new();
        for i in 0..10u64 {
            memo.get_or_compute(&format!("k{i}"), || i);
        }
        assert_eq!(memo.count_matching(|v| v % 2 == 0), 5);
        assert!(!memo.is_empty());
    }
}
