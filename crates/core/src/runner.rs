//! Supervised, cached, parallel experiment execution.
//!
//! Several of the paper's figures draw on the same underlying runs (the
//! SemiSpace sweep feeds both the Figure 6 decomposition and the Figure 7
//! EDP curves), and real measurement campaigns lose cells to rig faults.
//! The [`SupervisedRunner`] therefore does four jobs:
//!
//! * **memoize** — runs are fully deterministic, so each configuration is
//!   paid for exactly once per process, enforced by a sharded concurrent
//!   memo ([`crate::sweep::ShardedMemo`]) even when many workers race for
//!   the same cell;
//! * **parallelize** — figure sweeps submit their whole grid as one batch
//!   and a work-stealing pool ([`crate::sweep::WorkStealingPool`]) spreads
//!   the independent cells over [`SupervisedRunner::jobs`] workers;
//! * **supervise** — a failing configuration is retried up to a configured
//!   budget with capped, deterministic exponential backoff (recorded as
//!   *virtual* milliseconds, never slept), then **quarantined**: the
//!   failure is cached negatively and the config is never executed again;
//! * **account** — every run's injected-fault ledger, every retry, and
//!   every quarantined or failed cell is aggregated into a machine-readable
//!   [`RunReport`].
//!
//! # Determinism contract
//!
//! Batch results and the `RunReport` are **bit-identical regardless of
//! thread count**: cells are pure functions of their configuration (fault
//! seeds are derived per cell from the master seed and the cell key, see
//! [`crate::ExperimentConfig::derive_plan`]), duplicate cells are resolved
//! to their first occurrence *before* dispatch, and all report mutation
//! happens on the calling thread in batch submission order after the pool
//! drains. Only `verbose` stderr diagnostics may interleave differently.
//!
//! Fault plans are attached at the runner level: a default plan applies to
//! every configuration, and per-benchmark overrides let one benchmark fail
//! persistently (the paper-sweep robustness scenario) while the rest of the
//! sweep completes.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use vmprobe_power::{FaultPlan, FaultStats, ProbeSpec};
use vmprobe_telemetry::{CounterId, HistId, HostSpanGuard, StderrSink, Telemetry};
use vmprobe_vm::VmError;
use vmprobe_workloads::InputScale;

use crate::cache::{CacheLookup, ExperimentCache};
use crate::json::JsonObj;
use crate::sweep::{ShardedMemo, WorkStealingPool};
use crate::{ExperimentConfig, ExperimentError, RunSummary};

/// First retry waits this many virtual milliseconds.
const BACKOFF_BASE_MS: u64 = 100;
/// Backoff ceiling (the exponential doubling stops here).
const BACKOFF_CAP_MS: u64 = 10_000;
/// Default retry budget: attempts beyond the first before quarantine.
const DEFAULT_RETRIES: u32 = 2;

/// Deterministic capped exponential backoff for the `n`th retry (1-based),
/// in virtual milliseconds. Never slept — recorded in the [`RunReport`] so
/// a real deployment could replay the schedule.
fn backoff_ms(retry: u32) -> u64 {
    BACKOFF_BASE_MS
        .saturating_mul(1u64 << retry.saturating_sub(1).min(20))
        .min(BACKOFF_CAP_MS)
}

/// Terminal negative memo entry: the configuration exhausted its retry
/// budget and is quarantined.
#[derive(Debug, Clone)]
struct StoredFailure {
    attempts: u32,
    last_error: String,
    underlying: ExperimentError,
}

/// What the memo publishes per cell: the shared summary, or the quarantined
/// failure every later request replays without executing anything.
type CellResult = Result<Arc<RunSummary>, StoredFailure>;

/// How the persistent cache participated in resolving one cell.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
enum CacheProbe {
    /// No cache attached.
    #[default]
    None,
    /// Restored from a valid entry; compute was skipped.
    Hit,
    /// Probe found nothing usable; the cell was computed.
    Miss,
    /// Probe found a damaged entry; the cell was recomputed.
    Corrupt,
}

/// Everything one *resolving* cell contributes to the campaign report
/// (computed on a worker, or restored there from the persistent cache).
/// Produced on a worker thread, merged on the calling thread in batch
/// submission order.
#[derive(Debug, Default)]
struct ExecutionRecord {
    attempts_failed: u64,
    retries: u64,
    backoff_ms: u64,
    /// Host wall-clock time the cell's retry loop took (telemetry
    /// [`HistId::CellHostUs`]; excluded from golden comparisons).
    host_us: u64,
    injected_oom: u64,
    budget_exhausted: u64,
    /// Fault ledger of the successful run, when there was one.
    success_faults: Option<FaultStats>,
    quarantined: Option<QuarantinedConfig>,
    /// Persistent-cache involvement (probed once per unique key, inside
    /// the memo's in-flight window, so the derived counters are
    /// deterministic across worker counts).
    cache_probe: CacheProbe,
    /// A freshly computed summary was written through to the cache.
    cache_stored: bool,
}

/// One cell a tolerant figure sweep could not fill.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct FailedCell {
    /// Benchmark name.
    pub benchmark: String,
    /// Heap label in MB.
    pub heap_mb: u32,
    /// VM / collector label.
    pub vm: String,
    /// Rendered error.
    pub error: String,
}

impl FailedCell {
    fn new(config: &ExperimentConfig, error: &ExperimentError) -> Self {
        FailedCell {
            benchmark: config.benchmark.clone(),
            heap_mb: config.heap_mb,
            vm: config.vm.to_string(),
            error: error.to_string(),
        }
    }
}

impl std::fmt::Display for FailedCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[failed] {} on {} @ {} MB: {}",
            self.benchmark, self.vm, self.heap_mb, self.error
        )
    }
}

/// A configuration the runner refuses to execute again.
#[derive(Debug, Clone, serde::Serialize)]
pub struct QuarantinedConfig {
    /// Rendered configuration.
    pub config: String,
    /// Benchmark name (for grouping).
    pub benchmark: String,
    /// Attempts made before quarantine.
    pub attempts: u32,
    /// Rendered form of the last error.
    pub last_error: String,
}

/// Machine-readable account of a measurement campaign: what ran, what was
/// retried, what was quarantined, and every injected fault.
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct RunReport {
    /// Distinct configurations that completed successfully.
    pub runs_ok: u64,
    /// Individual attempts that failed (including retries of the same
    /// configuration).
    pub attempts_failed: u64,
    /// Retries performed (attempts beyond each configuration's first).
    pub retries: u64,
    /// Total virtual backoff the retry schedule accumulated, in ms.
    pub backoff_virtual_ms: u64,
    /// Times a quarantined configuration was requested again (and refused).
    pub quarantine_hits: u64,
    /// Configurations under quarantine.
    pub quarantined: Vec<QuarantinedConfig>,
    /// Cells tolerant figure sweeps could not fill (deduplicated).
    pub failed_cells: Vec<FailedCell>,
    /// Injected-fault ledger merged across every successful run, plus
    /// forced-fault counts (`injected_oom`, `budget_exhausted`) from failed
    /// attempts.
    pub faults: FaultStats,
}

impl RunReport {
    /// Serialize to a JSON object (hand-rolled; the build is offline).
    pub fn to_json(&self) -> String {
        let f = &self.faults;
        let mut faults = JsonObj::new();
        faults
            .u64("samples_total", f.samples_total)
            .u64("samples_dropped", f.samples_dropped)
            .u64("samples_duplicated", f.samples_duplicated)
            .u64("port_glitches", f.port_glitches)
            .u64("wraps_unwrapped", f.wraps_unwrapped)
            .u64("injected_oom", f.injected_oom)
            .u64("budget_exhausted", f.budget_exhausted)
            .f64("dropped_energy_j", f.dropped_energy_j)
            .f64("duplicated_energy_j", f.duplicated_energy_j)
            .f64("noise_abs_j", f.noise_abs_j)
            .f64("drift_abs_j", f.drift_abs_j)
            .f64("misattributed_energy_j", f.misattributed_energy_j)
            .f64("energy_error_bound_j", f.energy_error_bound_j());

        let quarantined = self.quarantined.iter().map(|q| {
            let mut o = JsonObj::new();
            o.str("config", &q.config)
                .str("benchmark", &q.benchmark)
                .u64("attempts", u64::from(q.attempts))
                .str("last_error", &q.last_error);
            o.finish()
        });
        let failed = self.failed_cells.iter().map(|c| {
            let mut o = JsonObj::new();
            o.str("benchmark", &c.benchmark)
                .u64("heap_mb", u64::from(c.heap_mb))
                .str("vm", &c.vm)
                .str("error", &c.error);
            o.finish()
        });

        let mut o = JsonObj::new();
        o.schema_version()
            .u64("runs_ok", self.runs_ok)
            .u64("attempts_failed", self.attempts_failed)
            .u64("retries", self.retries)
            .u64("backoff_virtual_ms", self.backoff_virtual_ms)
            .u64("quarantine_hits", self.quarantine_hits)
            .array("quarantined", quarantined)
            .array("failed_cells", failed)
            .raw("faults", &faults.finish());
        o.finish()
    }
}

/// Supervised memoizing parallel experiment runner (see the module docs).
#[derive(Debug, Default)]
pub struct SupervisedRunner {
    memo: ShardedMemo<CellResult>,
    jobs: usize,
    default_faults: FaultPlan,
    overrides: HashMap<String, FaultPlan>,
    max_retries: u32,
    scale_override: Option<InputScale>,
    probe_override: Option<ProbeSpec>,
    report: RunReport,
    seen_failed_cells: HashSet<(String, u32, String)>,
    verbose: bool,
    contain_panics: bool,
    telemetry: Telemetry,
    cache: Option<Arc<ExperimentCache>>,
}

/// The historical name: every figure entry point takes `&mut Runner`.
pub type Runner = SupervisedRunner;

impl SupervisedRunner {
    /// A fresh runner: empty cache, no fault plan, default retry budget,
    /// one worker.
    pub fn new() -> Self {
        Self {
            jobs: 1,
            max_retries: DEFAULT_RETRIES,
            ..Self::default()
        }
    }

    /// Log each executed configuration (and each quarantine decision) as
    /// a telemetry log event. When no telemetry hub is attached yet, a
    /// counters-only hub with a stderr sink is installed so the lines
    /// still reach a human — whole lines under a lock, never interleaved,
    /// replacing the raw `eprintln!` diagnostics this runner used to emit.
    pub fn verbose(mut self, on: bool) -> Self {
        self.verbose = on;
        if on && !self.telemetry.is_enabled() {
            self = self.with_telemetry(Telemetry::with_sink(false, Box::new(StderrSink::new())));
        }
        self
    }

    /// Attach a telemetry hub: every batch, cell, retry, quarantine and
    /// steal is counted, executed-cell span streams are collected (when
    /// the hub records spans), and verbose diagnostics route through the
    /// hub's sink.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.memo.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
        self
    }

    /// The runner's telemetry handle (disabled unless
    /// [`SupervisedRunner::with_telemetry`] was called).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Layer a persistent [`ExperimentCache`] under the in-process memo:
    /// each unique cell probes the cache exactly once before computing
    /// (hits skip the run entirely) and writes its freshly computed
    /// summary through, so an interrupted sweep resumed with the same
    /// cache directory recomputes only the missing cells. Restored cells
    /// merge in submission order like every other cell, preserving the
    /// jobs=1 ≡ jobs=N byte-identity contract.
    pub fn with_cache(mut self, cache: Arc<ExperimentCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The attached persistent cache, if any.
    pub fn cache(&self) -> Option<&Arc<ExperimentCache>> {
        self.cache.as_ref()
    }

    /// Open a host-clock span for a figure phase on the `runner` track
    /// (records when the returned guard drops) and count it.
    pub fn phase(&self, name: &str) -> HostSpanGuard {
        self.telemetry.count(CounterId::PhasesStarted, 1);
        self.telemetry.host_span("runner", name)
    }

    /// Run batches on `jobs` worker threads (clamped to at least 1).
    /// Results are bit-identical for any value — see the module docs.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Configured worker count.
    pub fn jobs_configured(&self) -> usize {
        self.jobs
    }

    /// Apply `plan` to every configuration this runner executes. Each cell
    /// derives its own independent fault stream from the plan's seed and
    /// the cell key, so results do not depend on sweep composition or
    /// execution order.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.default_faults = plan;
        self
    }

    /// Override the fault plan for one benchmark (e.g. force `oom@N` on a
    /// single benchmark to model a persistently failing workload while the
    /// rest of the sweep stays on the default plan).
    pub fn fault_override(mut self, benchmark: &str, plan: FaultPlan) -> Self {
        self.overrides.insert(benchmark.to_owned(), plan);
        self
    }

    /// Set the retry budget: a configuration is attempted `1 + retries`
    /// times before quarantine.
    pub fn retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Catch panics from individual cell runs and convert them into
    /// [`ExperimentError::Panicked`], which then flows through the normal
    /// retry/quarantine machinery instead of aborting the whole batch.
    ///
    /// Off by default: batch sweeps *want* a panicking cell to abort the
    /// figure loudly. The serving daemon turns this on so one tenant's
    /// pathological request can never take down the worker pool or the
    /// other tenants' in-flight batches.
    pub fn contain_panics(mut self, on: bool) -> Self {
        self.contain_panics = on;
        self
    }

    /// Force every configuration to the given input scale. A test/CI knob:
    /// the determinism suite sweeps the full figure grids at `Reduced`
    /// scale to keep wall-clock sane without shrinking the grid shape.
    pub fn scale(mut self, scale: InputScale) -> Self {
        self.scale_override = Some(scale);
        self
    }

    /// Force every configuration onto the given measurement-probe spec
    /// (the observer-effect sweep and the `--telemetry-overhead` probe-tax
    /// pass set this instead of rewriting each submitted config). Probed
    /// and unprobed variants of the same cell keep distinct memo/cache
    /// keys, so an override never contaminates transparent results.
    pub fn with_probe_override(mut self, probe: ProbeSpec) -> Self {
        self.probe_override = Some(probe);
        self
    }

    /// The fault plan that would apply to `benchmark` (before per-cell
    /// seed derivation).
    pub fn effective_plan(&self, benchmark: &str) -> FaultPlan {
        self.overrides
            .get(benchmark)
            .copied()
            .unwrap_or(self.default_faults)
    }

    /// The configuration as actually executed (scale override applied;
    /// span recording switched on when the attached telemetry hub keeps
    /// span streams).
    fn effective_config(&self, config: &ExperimentConfig) -> ExperimentConfig {
        let mut c = config.clone();
        if let Some(scale) = self.scale_override {
            c.scale = scale;
        }
        if let Some(probe) = self.probe_override {
            c.probe = probe;
        }
        if self.telemetry.spans_enabled() {
            c.record_spans = true;
        }
        c
    }

    /// Memo/cache key for a configuration under a specific master plan:
    /// the config key alone when the plan injects nothing, else the config
    /// key suffixed with the canonical plan spec. Per-request plans (the
    /// serving daemon) and runner-level plans share keys whenever the
    /// resulting master plan is identical, so tenants hit each other's
    /// cache entries exactly when their requests are equivalent.
    fn key_for(config: &ExperimentConfig, plan: FaultPlan) -> String {
        if plan.is_none() {
            config.key()
        } else {
            format!("{}|faults:{}", config.key(), plan)
        }
    }

    /// Run `config` (or return the cached result), retrying and
    /// quarantining per the runner's policy.
    ///
    /// # Errors
    ///
    /// The last underlying [`ExperimentError`] once the retry budget is
    /// exhausted; [`ExperimentError::Quarantined`] (without executing
    /// anything) on every subsequent request for that configuration.
    pub fn run(&mut self, config: &ExperimentConfig) -> Result<Arc<RunSummary>, ExperimentError> {
        self.run_batch(std::slice::from_ref(config))
            .pop()
            .expect("one result per submitted config")
    }

    /// Execute a whole batch of cells, in parallel on the runner's
    /// configured worker count, and return one result per submitted
    /// configuration **in submission order**.
    ///
    /// Duplicate configurations are resolved to their first occurrence
    /// before dispatch, so no cell is ever executed twice; cells already
    /// in the memo (from earlier sweeps) are served from cache. Report
    /// accounting is merged in submission order after the pool drains,
    /// making the [`RunReport`] independent of thread count.
    pub fn run_batch(
        &mut self,
        configs: &[ExperimentConfig],
    ) -> Vec<Result<Arc<RunSummary>, ExperimentError>> {
        let batch: Vec<(ExperimentConfig, Option<FaultPlan>)> =
            configs.iter().map(|c| (c.clone(), None)).collect();
        self.run_batch_with_plans(&batch)
    }

    /// [`SupervisedRunner::run_batch`] with an explicit master fault plan
    /// per cell: `Some(plan)` replaces the runner-level default/override
    /// resolution for that cell only (per-cell seed derivation still
    /// applies), `None` behaves exactly like `run_batch`.
    ///
    /// This is the serving daemon's entry point — each tenant request may
    /// carry its own fault plan, at a finer granularity than the runner's
    /// per-benchmark overrides can express.
    pub fn run_batch_with_plans(
        &mut self,
        batch: &[(ExperimentConfig, Option<FaultPlan>)],
    ) -> Vec<Result<Arc<RunSummary>, ExperimentError>> {
        let cells: Vec<(ExperimentConfig, FaultPlan, String)> = batch
            .iter()
            .map(|(c, plan_override)| {
                let effective = self.effective_config(c);
                let master =
                    plan_override.unwrap_or_else(|| self.effective_plan(&effective.benchmark));
                let key = Self::key_for(&effective, master);
                (effective, master, key)
            })
            .collect();

        // First occurrence of each key; only unresolved first occurrences
        // are dispatched to the pool.
        let mut first: HashMap<&str, usize> = HashMap::new();
        let mut tasks: Vec<usize> = Vec::new();
        for (i, (_, _, key)) in cells.iter().enumerate() {
            if !first.contains_key(key.as_str()) {
                first.insert(key, i);
                if self.memo.peek(key).is_none() {
                    tasks.push(i);
                }
            }
        }

        self.telemetry.count(CounterId::BatchesSubmitted, 1);
        let _batch_span = self.telemetry.host_span("runner", "batch");
        let pool = WorkStealingPool::new(self.jobs).with_telemetry(self.telemetry.clone());
        let memo = &self.memo;
        let max_retries = self.max_retries;
        let verbose = self.verbose;
        let contain = self.contain_panics;
        let telemetry = self.telemetry.clone();
        let cache = self.cache.clone();
        // A panicking cell aborts the batch with the cell's key in the
        // message rather than poisoning pool/memo locks (`SweepError`) —
        // unless `contain_panics` is on, in which case `execute_cell`
        // catches it first and the pool never sees a panic.
        let executed: Vec<(usize, Option<ExecutionRecord>)> = pool
            .try_run(
                tasks.iter().map(|&i| (i, &cells[i])).collect(),
                |_, item| item.1 .2.clone(),
                |_, (i, (config, master, key))| {
                    let plan = config.derive_plan(*master);
                    let mut record = None;
                    let (_, _) = memo.get_or_compute(key, || {
                        // Probe the persistent layer first: exactly one
                        // probe per unique key (concurrent duplicates are
                        // held by the memo's in-flight window), so cache
                        // counters are thread-count-independent.
                        let mut probe = CacheProbe::None;
                        if let Some(cache) = &cache {
                            let started = std::time::Instant::now();
                            match cache.lookup(key) {
                                CacheLookup::Hit(summary) => {
                                    record = Some(ExecutionRecord {
                                        cache_probe: CacheProbe::Hit,
                                        success_faults: Some(summary.report.faults),
                                        host_us: started
                                            .elapsed()
                                            .as_micros()
                                            .min(u128::from(u64::MAX))
                                            as u64,
                                        ..ExecutionRecord::default()
                                    });
                                    return Ok(summary);
                                }
                                CacheLookup::Miss => probe = CacheProbe::Miss,
                                CacheLookup::Corrupt => probe = CacheProbe::Corrupt,
                            }
                        }
                        let (result, mut rec) =
                            execute_cell(config, plan, max_retries, verbose, contain, &telemetry);
                        rec.cache_probe = probe;
                        if let (Some(cache), Ok(summary)) = (&cache, &result) {
                            cache.store(key, summary);
                            rec.cache_stored = true;
                        }
                        record = Some(rec);
                        result
                    });
                    (i, record)
                },
            )
            .unwrap_or_else(|e| panic!("{e}"));

        let mut records: HashMap<usize, ExecutionRecord> = executed
            .into_iter()
            .filter_map(|(i, rec)| rec.map(|r| (i, r)))
            .collect();

        // Merge in submission order — the determinism contract.
        let mut out = Vec::with_capacity(cells.len());
        for (i, (config, _, key)) in cells.iter().enumerate() {
            let first_here = first.get(key.as_str()) == Some(&i);
            let rec = if first_here { records.remove(&i) } else { None };
            // This occurrence resolved the cell in this batch — by
            // computing it or by restoring it from the persistent cache.
            let resolved_here = rec.is_some();
            if let Some(rec) = rec {
                if rec.cache_probe == CacheProbe::Hit {
                    self.telemetry.count(CounterId::CacheHits, 1);
                } else {
                    self.telemetry.count(CounterId::CellsExecuted, 1);
                    match rec.cache_probe {
                        CacheProbe::Miss => self.telemetry.count(CounterId::CacheMisses, 1),
                        CacheProbe::Corrupt => self.telemetry.count(CounterId::CacheCorrupt, 1),
                        CacheProbe::None | CacheProbe::Hit => {}
                    }
                    if rec.cache_stored {
                        self.telemetry.count(CounterId::CacheStores, 1);
                    }
                }
                self.apply_record(rec);
            } else if first_here {
                self.telemetry.count(CounterId::CellsFromCache, 1);
            } else {
                self.telemetry.count(CounterId::CellsDedupedInBatch, 1);
            }
            let value = self
                .memo
                .peek(key)
                .expect("every batch key resolves before merge");
            match value {
                Ok(summary) => {
                    if resolved_here {
                        // Virtual cell duration comes off the report, so
                        // counters-only hubs (`--metrics-out` without
                        // `--trace-out`) still fill this histogram.
                        self.telemetry.observe(
                            HistId::CellVirtualUs,
                            (summary.report.duration.seconds() * 1e6) as u64,
                        );
                        self.telemetry.count(
                            CounterId::CellEnergyUj,
                            (summary.report.total_energy.joules() * 1e6) as u64,
                        );
                        let probe = &summary.report.probe;
                        self.telemetry
                            .count(CounterId::ProbePortStores, probe.port_stores);
                        self.telemetry
                            .count(CounterId::ProbeDaqSamples, probe.daq_samples_paid);
                        self.telemetry
                            .count(CounterId::ProbeHpmReads, probe.hpm_reads_paid);
                        self.telemetry
                            .count(CounterId::ProbeCyclesPaid, probe.cycles_paid);
                        if let Some(trace) = &summary.spans {
                            // Appended on the calling thread in submission
                            // order: the virtual span stream is therefore
                            // byte-identical for any worker count.
                            self.telemetry.record_cell(key, trace);
                            self.telemetry
                                .observe(HistId::CellSpans, trace.len() as u64);
                        }
                    }
                    out.push(Ok(summary));
                }
                Err(failure) => {
                    if resolved_here {
                        // The executing occurrence surfaces the underlying
                        // error, exactly like the serial retry loop did.
                        out.push(Err(failure.underlying.clone()));
                    } else {
                        self.report.quarantine_hits += 1;
                        self.telemetry.count(CounterId::QuarantineHits, 1);
                        out.push(Err(ExperimentError::Quarantined {
                            config: Box::new(config.clone()),
                            attempts: failure.attempts,
                            last_error: failure.last_error.clone(),
                        }));
                    }
                }
            }
        }
        out
    }

    fn apply_record(&mut self, rec: ExecutionRecord) {
        self.report.attempts_failed += rec.attempts_failed;
        self.report.retries += rec.retries;
        self.report.backoff_virtual_ms += rec.backoff_ms;
        self.telemetry
            .count(CounterId::AttemptsFailed, rec.attempts_failed);
        self.telemetry.count(CounterId::Retries, rec.retries);
        self.telemetry
            .count(CounterId::BackoffVirtualMs, rec.backoff_ms);
        self.telemetry.observe(HistId::CellHostUs, rec.host_us);
        self.report.faults.injected_oom += rec.injected_oom;
        self.report.faults.budget_exhausted += rec.budget_exhausted;
        if let Some(faults) = rec.success_faults {
            self.report.runs_ok += 1;
            self.report.faults.merge(&faults);
        }
        if let Some(q) = rec.quarantined {
            self.telemetry.count(CounterId::CellsQuarantined, 1);
            if self.verbose {
                self.telemetry.log(&format!(
                    "quarantined {} after {} attempts",
                    q.config, q.attempts
                ));
            }
            self.report.quarantined.push(q);
        }
    }

    /// Tolerant cell execution for figure sweeps: a failure is recorded as
    /// a [`FailedCell`] (in the returned value and the [`RunReport`]) and
    /// the sweep continues with the cell empty.
    pub fn cell(
        &mut self,
        config: &ExperimentConfig,
        failed: &mut Vec<FailedCell>,
    ) -> Option<Arc<RunSummary>> {
        self.cells(std::slice::from_ref(config), failed)
            .pop()
            .expect("one result per submitted config")
    }

    /// Tolerant **batch** execution for figure sweeps: the whole grid runs
    /// in parallel, failures are recorded as [`FailedCell`]s (in `failed`
    /// and, deduplicated, in the [`RunReport`]) and the corresponding
    /// slots come back `None`.
    pub fn cells(
        &mut self,
        configs: &[ExperimentConfig],
        failed: &mut Vec<FailedCell>,
    ) -> Vec<Option<Arc<RunSummary>>> {
        let results = self.run_batch(configs);
        configs
            .iter()
            .zip(results)
            .map(|(config, result)| match result {
                Ok(summary) => Some(summary),
                Err(e) => {
                    self.telemetry.count(CounterId::CellsFailed, 1);
                    let cell = FailedCell::new(config, &e);
                    let sig = (cell.benchmark.clone(), cell.heap_mb, cell.vm.clone());
                    if self.seen_failed_cells.insert(sig) {
                        self.report.failed_cells.push(cell.clone());
                    }
                    failed.push(cell);
                    None
                }
            })
            .collect()
    }

    /// Number of distinct runs executed successfully so far.
    pub fn runs_executed(&self) -> usize {
        self.memo.count_matching(|v| v.is_ok())
    }

    /// The campaign report accumulated so far.
    pub fn report(&self) -> &RunReport {
        &self.report
    }
}

/// Render a panic payload: the string it carried, or a placeholder.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// The per-cell retry loop: runs on a pool worker, touches no shared
/// state, and reports everything it did through the returned record.
/// With `contain` set, a panicking run is caught and mapped to
/// [`ExperimentError::Panicked`], entering the same retry/quarantine path
/// as any other failure.
fn execute_cell(
    config: &ExperimentConfig,
    plan: FaultPlan,
    max_retries: u32,
    verbose: bool,
    contain: bool,
    telemetry: &Telemetry,
) -> (CellResult, ExecutionRecord) {
    let started = std::time::Instant::now();
    let mut rec = ExecutionRecord::default();
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        if verbose {
            telemetry.log(&format!("running {config} (attempt {attempts})"));
        }
        let outcome = if contain {
            // AssertUnwindSafe: the closure only touches `config` and the
            // Copy `plan`; `run_with_faults` builds all VM state afresh, so
            // no shared state can be observed half-mutated after a panic.
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                config.run_with_faults(plan)
            }))
            .unwrap_or_else(|payload| {
                Err(ExperimentError::Panicked {
                    config: Box::new(config.clone()),
                    message: panic_message(payload.as_ref()),
                })
            })
        } else {
            config.run_with_faults(plan)
        };
        match outcome {
            Ok(summary) => {
                rec.success_faults = Some(summary.report.faults);
                rec.host_us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                return (Ok(Arc::new(summary)), rec);
            }
            Err(e) => {
                rec.attempts_failed += 1;
                if let ExperimentError::Vm { source, .. } = &e {
                    match source {
                        VmError::InjectedOom { .. } => rec.injected_oom += 1,
                        VmError::StepBudgetExhausted { .. } => rec.budget_exhausted += 1,
                        _ => {}
                    }
                }
                if attempts > max_retries {
                    rec.quarantined = Some(QuarantinedConfig {
                        config: config.to_string(),
                        benchmark: config.benchmark.clone(),
                        attempts,
                        last_error: e.to_string(),
                    });
                    rec.host_us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                    return (
                        Err(StoredFailure {
                            attempts,
                            last_error: e.to_string(),
                            underlying: e,
                        }),
                        rec,
                    );
                }
                rec.retries += 1;
                rec.backoff_ms += backoff_ms(attempts);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmprobe_heap::CollectorKind;
    use vmprobe_workloads::InputScale;

    fn quick(benchmark: &str) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::jikes(benchmark, CollectorKind::SemiSpace, 32);
        cfg.scale = InputScale::Reduced;
        cfg
    }

    #[test]
    fn cache_hits_do_not_rerun() {
        let mut r = Runner::new();
        let mut cfg = ExperimentConfig::jikes("moldyn", CollectorKind::SemiSpace, 32);
        cfg.scale = InputScale::Reduced;
        let a = r.run(&cfg).expect("runs");
        let b = r.run(&cfg).expect("cached");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(r.runs_executed(), 1);
    }

    #[test]
    fn backoff_is_capped_exponential() {
        assert_eq!(backoff_ms(1), 100);
        assert_eq!(backoff_ms(2), 200);
        assert_eq!(backoff_ms(3), 400);
        assert_eq!(backoff_ms(8), 10_000);
        assert_eq!(backoff_ms(u32::MAX), 10_000);
    }

    #[test]
    fn persistent_failure_is_retried_then_quarantined() {
        let oom = FaultPlan::parse("oom@1").unwrap();
        let mut r = Runner::new().retries(2).fault_override("moldyn", oom);
        let cfg = quick("moldyn");

        let err = r.run(&cfg).expect_err("oom@1 always fails");
        assert!(matches!(err, ExperimentError::Vm { .. }));
        assert_eq!(r.report().retries, 2, "retried to budget");
        assert_eq!(r.report().attempts_failed, 3, "1 + 2 retries");
        assert_eq!(r.report().backoff_virtual_ms, 100 + 200);
        assert_eq!(r.report().quarantined.len(), 1);
        assert_eq!(r.report().faults.injected_oom, 3);

        // Subsequent requests are refused without executing anything.
        let err = r.run(&cfg).expect_err("quarantined");
        assert!(matches!(err, ExperimentError::Quarantined { .. }));
        assert_eq!(r.report().attempts_failed, 3, "no new attempts");
        assert_eq!(r.report().quarantine_hits, 1);
    }

    #[test]
    fn override_only_hits_its_benchmark() {
        let oom = FaultPlan::parse("oom@1").unwrap();
        let mut r = Runner::new().retries(0).fault_override("moldyn", oom);
        assert!(r.run(&quick("moldyn")).is_err());
        assert!(r.run(&quick("search")).is_ok());
        assert!(r.report().faults.is_clean() || r.report().faults.injected_oom > 0);
    }

    #[test]
    fn tolerant_cell_records_failures_and_continues() {
        let oom = FaultPlan::parse("oom@1").unwrap();
        let mut r = Runner::new().retries(0).fault_override("moldyn", oom);
        let mut failed = Vec::new();
        assert!(r.cell(&quick("moldyn"), &mut failed).is_none());
        assert!(r.cell(&quick("search"), &mut failed).is_some());
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].benchmark, "moldyn");
        assert_eq!(r.report().failed_cells.len(), 1);
        // Re-requesting the same dead cell does not duplicate the report
        // entry.
        let mut more = Vec::new();
        assert!(r.cell(&quick("moldyn"), &mut more).is_none());
        assert_eq!(r.report().failed_cells.len(), 1);
    }

    #[test]
    fn report_serializes_to_json() {
        let oom = FaultPlan::parse("oom@1").unwrap();
        let mut r = Runner::new().retries(1).fault_override("moldyn", oom);
        let _ = r.run(&quick("moldyn"));
        let _ = r.run(&quick("search"));
        let json = r.report().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"runs_ok\":1"));
        assert!(json.contains("\"retries\":1"));
        assert!(json.contains("\"injected_oom\":2"));
        assert!(json.contains("\"quarantined\":[{"));
        assert!(json.contains("moldyn"));
    }

    #[test]
    fn default_fault_plan_applies_to_every_run() {
        let plan = FaultPlan::parse("drop=0.5,seed=3").unwrap();
        let mut r = Runner::new().with_faults(plan);
        let run = r.run(&quick("search")).expect("faulted run completes");
        assert!(run.report.faults.samples_dropped > 0);
        assert!(r.report().faults.samples_dropped > 0);
        // Degradation contract at the campaign level.
        assert!(run.report.energy_deviation_j() <= run.report.faults.energy_error_bound_j() + 1e-9);
    }

    #[test]
    fn batch_resolves_duplicates_without_reexecution() {
        let mut r = Runner::new().jobs(4);
        let cfg = quick("search");
        let batch = vec![cfg.clone(), cfg.clone(), cfg.clone()];
        let results = r.run_batch(&batch);
        assert_eq!(results.len(), 3);
        let first = results[0].as_ref().expect("runs").clone();
        for res in &results {
            assert!(Arc::ptr_eq(res.as_ref().unwrap(), &first));
        }
        assert_eq!(r.runs_executed(), 1);
        assert_eq!(r.report().runs_ok, 1);
    }

    #[test]
    fn batch_duplicate_of_quarantined_cell_counts_a_hit() {
        let oom = FaultPlan::parse("oom@1").unwrap();
        let mut r = Runner::new().retries(1).fault_override("moldyn", oom);
        let cfg = quick("moldyn");
        let results = r.run_batch(&[cfg.clone(), cfg.clone()]);
        // First occurrence surfaces the underlying error, the duplicate is
        // a quarantine hit — exactly as two sequential run() calls.
        assert!(matches!(results[0], Err(ExperimentError::Vm { .. })));
        assert!(matches!(
            results[1],
            Err(ExperimentError::Quarantined { .. })
        ));
        assert_eq!(r.report().attempts_failed, 2, "1 + 1 retry, once");
        assert_eq!(r.report().quarantine_hits, 1);
        assert_eq!(r.report().quarantined.len(), 1);
    }

    #[test]
    fn per_request_plans_override_runner_policy() {
        let oom = FaultPlan::parse("oom@1").unwrap();
        let mut r = Runner::new().retries(0).jobs(2);
        let cfg = quick("moldyn");
        let results = r.run_batch_with_plans(&[(cfg.clone(), Some(oom)), (cfg.clone(), None)]);
        // Same benchmark, different plans: distinct cells, the poisoned
        // one fails while the clean one succeeds.
        assert!(matches!(results[0], Err(ExperimentError::Vm { .. })));
        assert!(results[1].is_ok());
        assert_eq!(r.report().quarantined.len(), 1);
        assert_eq!(r.report().runs_ok, 1);

        // An explicit plan equal to the runner's resolution shares the
        // memoized cell (no re-execution).
        let executed = r.runs_executed();
        let again = r.run_batch_with_plans(&[(cfg.clone(), Some(FaultPlan::none()))]);
        assert!(Arc::ptr_eq(
            again[0].as_ref().unwrap(),
            results[1].as_ref().unwrap()
        ));
        assert_eq!(r.runs_executed(), executed);
    }

    #[test]
    fn contained_batch_preserves_normal_results() {
        // With containment on and nothing panicking, results are the same
        // object graph a plain batch produces (same memo, same report).
        let mut plain = Runner::new();
        let mut contained = Runner::new().contain_panics(true);
        let cfg = quick("search");
        let a = plain.run(&cfg).expect("runs");
        let b = contained.run(&cfg).expect("runs under containment");
        assert_eq!(a.report.cpu_energy.joules(), b.report.cpu_energy.joules());
        assert_eq!(plain.report().runs_ok, contained.report().runs_ok);
    }

    #[test]
    fn panic_payloads_render_to_strings() {
        let s: Box<dyn std::any::Any + Send> = Box::new("boom");
        assert_eq!(panic_message(s.as_ref()), "boom");
        let owned: Box<dyn std::any::Any + Send> = Box::new(String::from("kaboom"));
        assert_eq!(panic_message(owned.as_ref()), "kaboom");
        let opaque: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(opaque.as_ref()), "<non-string panic payload>");
    }

    #[test]
    fn contained_panic_is_typed_and_quarantines() {
        // Drive a real panic through execute_cell by catching one
        // ourselves: the public surface is exercised end-to-end in the
        // serve tests; here we pin the containment mapping itself.
        let err = std::panic::catch_unwind(|| panic!("worker died"))
            .map_err(|p| ExperimentError::Panicked {
                config: Box::new(quick("moldyn")),
                message: panic_message(p.as_ref()),
            })
            .expect_err("panicked");
        assert!(err.to_string().contains("panicked: worker died"));
        assert!(matches!(err, ExperimentError::Panicked { .. }));
    }

    #[test]
    fn probe_override_pays_costs_without_sharing_cells() {
        let cfg = quick("search");
        let mut bare = Runner::new();
        let clean = bare.run(&cfg).expect("runs");
        assert_eq!(clean.report.probe.cycles_paid, 0);

        let mut probed = Runner::new().with_probe_override(ProbeSpec::nontransparent_at(4_000));
        let paid = probed.run(&cfg).expect("runs probed");
        assert!(paid.report.probe.cycles_paid > 0, "probe charges cycles");
        assert!(
            paid.report.total_energy.joules() > clean.report.total_energy.joules(),
            "observer effect shows up in total energy"
        );
        // The override rewrites the effective config, so requesting the
        // probed config directly hits the same memo cell.
        let direct = cfg.clone().with_probe(ProbeSpec::nontransparent_at(4_000));
        let again = probed.run(&direct).expect("cached");
        assert!(Arc::ptr_eq(&paid, &again));
        assert_eq!(probed.runs_executed(), 1);
    }

    #[test]
    fn scale_override_rewrites_every_config() {
        let mut r = Runner::new().scale(InputScale::Reduced);
        let full = ExperimentConfig::jikes("search", CollectorKind::SemiSpace, 32);
        let run = r.run(&full).expect("runs");
        assert_eq!(run.config.scale, InputScale::Reduced);
        // The cache key is the effective (reduced) one: requesting the
        // reduced config directly hits the same entry.
        let mut reduced = full;
        reduced.scale = InputScale::Reduced;
        let again = r.run(&reduced).expect("cached");
        assert!(Arc::ptr_eq(&run, &again));
        assert_eq!(r.runs_executed(), 1);
    }
}
