//! Cached experiment execution.
//!
//! Several of the paper's figures draw on the same underlying runs (the
//! SemiSpace sweep feeds both the Figure 6 decomposition and the Figure 7
//! EDP curves); the [`Runner`] memoizes each configuration so every figure
//! regeneration pays for a run exactly once per process. Runs are fully
//! deterministic, so caching is sound.

use std::collections::HashMap;
use std::sync::Arc;

use crate::{ExperimentConfig, ExperimentError, RunSummary};

/// Memoizing experiment runner.
#[derive(Debug, Default)]
pub struct Runner {
    cache: HashMap<String, Arc<RunSummary>>,
    verbose: bool,
}

impl Runner {
    /// A fresh runner with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Log each executed configuration to stderr.
    pub fn verbose(mut self, on: bool) -> Self {
        self.verbose = on;
        self
    }

    /// Run `config` (or return the cached result).
    ///
    /// # Errors
    ///
    /// Propagates [`ExperimentError`]; failures are not cached.
    pub fn run(&mut self, config: &ExperimentConfig) -> Result<Arc<RunSummary>, ExperimentError> {
        let key = config.key();
        if let Some(hit) = self.cache.get(&key) {
            return Ok(Arc::clone(hit));
        }
        if self.verbose {
            eprintln!("[vmprobe] running {config}");
        }
        let summary = Arc::new(config.run()?);
        self.cache.insert(key, Arc::clone(&summary));
        Ok(summary)
    }

    /// Number of distinct runs executed so far.
    pub fn runs_executed(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmprobe_heap::CollectorKind;
    use vmprobe_workloads::InputScale;

    #[test]
    fn cache_hits_do_not_rerun() {
        let mut r = Runner::new();
        let mut cfg = ExperimentConfig::jikes("moldyn", CollectorKind::SemiSpace, 32);
        cfg.scale = InputScale::Reduced;
        let a = r.run(&cfg).expect("runs");
        let b = r.run(&cfg).expect("cached");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(r.runs_executed(), 1);
    }
}
