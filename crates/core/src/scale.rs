//! Heap-size scaling between paper labels and simulated bytes.
//!
//! The paper sweeps fixed heaps of 32–128 MB on the P6 and 12–32 MB on the
//! DBPXA255. Simulating full-size heaps would make full figure sweeps take
//! hours, so the suite divides all sizes by [`SIM_SCALE`]: a "32 MB" heap
//! is simulated as 4 MiB, and every workload blueprint sizes its live set
//! against the scaled heap. The live-set : heap : cache ratios — which are
//! what drive GC frequency, copy cost and locality — are preserved for the
//! heap-sensitive range; only the absolute byte counts shrink.

/// Denominator applied to every paper heap label.
pub const SIM_SCALE: u64 = 8;

/// The paper's P6 heap sweep, in MB labels (Section IV-A).
pub const P6_HEAPS_MB: [u32; 7] = [32, 48, 64, 80, 96, 112, 128];

/// The paper's PXA255 heap sweep, in MB labels (Section VI-E).
pub const PXA_HEAPS_MB: [u32; 6] = [12, 16, 20, 24, 28, 32];

/// Convert a paper heap label (MB) into simulated heap bytes.
pub fn heap_bytes(label_mb: u32) -> u64 {
    u64::from(label_mb) * (1 << 20) / SIM_SCALE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_scale_down_by_sim_scale() {
        assert_eq!(heap_bytes(32), 4 << 20);
        assert_eq!(heap_bytes(128), 16 << 20);
        assert_eq!(heap_bytes(12), 3 * (1 << 20) / 2);
    }

    #[test]
    fn sweeps_match_paper() {
        assert_eq!(P6_HEAPS_MB.len(), 7);
        assert_eq!(PXA_HEAPS_MB.len(), 6);
        assert!(P6_HEAPS_MB.windows(2).all(|w| w[1] - w[0] == 16));
        assert!(PXA_HEAPS_MB.windows(2).all(|w| w[1] - w[0] == 4));
    }
}
