//! The energy-regression gate: compare per-component energy between two
//! builds with bootstrap confidence intervals.
//!
//! Point-estimate energy diffs drown in run-to-run noise, so the diff
//! engine works on *distributions*: each scenario cell is executed under a
//! deterministic **seed ensemble** — `replicates` runs whose fault plans
//! inject only bounded Gaussian sensor noise, each seeded from an
//! independent stream of the diff seed — and every component's energy
//! samples are bootstrap-resampled into a confidence interval per side. A
//! regression is flagged only when the candidate CI sits strictly above the
//! baseline CI *and* the mean shift clears a practical-significance floor
//! ([`DiffOptions::min_rel_shift`]); the symmetric case is reported as an
//! improvement.
//!
//! Everything is deterministic: the ensemble seeds, the resampler (a
//! [`DetRng`] percentile bootstrap — no `rand`), and the submission-order
//! merge in the runner, so a [`RegressionReport`] is byte-identical for any
//! `--jobs N` and a fixed seed.
//!
//! The two sides are addressed by **cache fingerprint**
//! ([`ExperimentCache::with_fingerprint`]): the baseline side of a diff
//! against an older build is usually served entirely from that build's
//! cache entries. When both sides carry the same fingerprint (a self-diff,
//! or a perturbation experiment), the sweep runs once and is shared.

use std::collections::BTreeSet;
use std::sync::Arc;

use vmprobe_heap::CollectorKind;
use vmprobe_platform::PlatformKind;
use vmprobe_power::{
    perturbed_component_energy, ComponentId, DetRng, EnergyPerturbation, FaultPlan,
};
use vmprobe_telemetry::{CounterId, HistId, Telemetry};
use vmprobe_workloads::{all_benchmarks, InputScale};

use crate::cache::ExperimentCache;
use crate::experiment::{ExperimentConfig, RunSummary};
use crate::json::JsonObj;
use crate::runner::SupervisedRunner;

/// The golden sweep grid shared by `vmprobe-analyze --check-golden` and the
/// diff gate: every benchmark in the registry on both VM personalities —
/// Jikes/GenCopy at 64 MB on the P6 board and Kaffe at 32 MB on the
/// DBPXA255 — at the reduced input scale.
///
/// Enumeration order is benchmark-major (Jikes cell first), matching the
/// historical `--check-golden` loop, so reports keyed off this list stay
/// stable.
pub fn golden_cells() -> Vec<ExperimentConfig> {
    let mut cells = Vec::new();
    for bench in all_benchmarks() {
        let mut jikes = ExperimentConfig::jikes(bench.name, CollectorKind::GenCopy, 64);
        jikes.scale = InputScale::Reduced;
        cells.push(jikes);
        cells.push(ExperimentConfig::kaffe_pxa(bench.name, 32));
    }
    cells
}

/// Statistical knobs of the diff engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffOptions {
    /// Root seed: ensemble fault-plan seeds and every bootstrap stream
    /// derive from it.
    pub seed: u64,
    /// Runs per cell in the seed ensemble (the sample count fed to the
    /// bootstrap).
    pub replicates: usize,
    /// Bootstrap resample draws per confidence interval.
    pub resamples: u32,
    /// Two-sided confidence level of the intervals, in (0, 1).
    pub confidence: f64,
    /// Relative sigma of the per-sample sensor noise the ensemble injects
    /// (see [`FaultPlan::noise_sigma`]).
    pub noise_sigma: f64,
    /// Practical-significance floor: CI separation alone does not flag a
    /// comparison unless `|rel_shift|` also reaches this value. Per-sample
    /// noise averages down by √samples over a run, so intervals are tight
    /// enough to separate on microscopic drifts; the floor keeps the gate
    /// honest about effect size.
    pub min_rel_shift: f64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        Self {
            seed: 0xD1FF,
            replicates: 5,
            resamples: 200,
            confidence: 0.99,
            noise_sigma: 0.003,
            min_rel_shift: 0.005,
        }
    }
}

/// A percentile-bootstrap confidence interval for a sample mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapCi {
    /// The sample mean (point estimate).
    pub mean: f64,
    /// Lower CI bound.
    pub lo: f64,
    /// Upper CI bound.
    pub hi: f64,
}

/// Deterministic percentile bootstrap of the mean of `samples`.
///
/// Draws `resamples` with-replacement resamples from `rng`, takes each
/// resample's mean, and reads the two-sided `confidence` quantiles off the
/// sorted draws. The interval is widened to contain the sample mean itself
/// (a conservative clamp that matters only for degenerate draw counts), so
/// `lo <= mean <= hi` always holds, and for a fixed `rng` seed the bounds
/// are monotone in `confidence`.
///
/// # Panics
///
/// When `samples` is empty, `resamples` is zero, or `confidence` is outside
/// (0, 1) — caller bugs, not data properties.
pub fn bootstrap_ci(
    samples: &[f64],
    confidence: f64,
    resamples: u32,
    rng: &mut DetRng,
) -> BootstrapCi {
    assert!(!samples.is_empty(), "bootstrap over an empty sample set");
    assert!(resamples > 0, "bootstrap with zero resamples");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1), got {confidence}"
    );
    let n = samples.len();
    let mean = samples.iter().sum::<f64>() / n as f64;
    let mut draws: Vec<f64> = (0..resamples)
        .map(|_| {
            let sum: f64 = (0..n)
                .map(|_| samples[(rng.next_u64() % n as u64) as usize])
                .sum();
            sum / n as f64
        })
        .collect();
    draws.sort_by(|a, b| a.partial_cmp(b).expect("finite energies"));
    let alpha = (1.0 - confidence) / 2.0;
    let last = (draws.len() - 1) as f64;
    let lo_idx = (alpha * last).floor() as usize;
    let hi_idx = ((1.0 - alpha) * last).ceil() as usize;
    BootstrapCi {
        mean,
        lo: draws[lo_idx].min(mean),
        hi: draws[hi_idx].max(mean),
    }
}

/// One flagged (cell, component) comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentDelta {
    /// The scenario cell that moved.
    pub cell: ExperimentConfig,
    /// The component that moved.
    pub component: ComponentId,
    /// Baseline-side interval over the seed ensemble, in joules.
    pub baseline: BootstrapCi,
    /// Candidate-side interval over the seed ensemble, in joules.
    pub candidate: BootstrapCi,
    /// `(candidate mean − baseline mean) / baseline mean` (infinite when
    /// the component consumed nothing on the baseline side).
    pub rel_shift: f64,
}

impl ComponentDelta {
    fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.str("benchmark", &self.cell.benchmark)
            .str("vm", &self.cell.vm.to_string())
            .u64("heap_mb", u64::from(self.cell.heap_mb))
            .str("platform", platform_label(self.cell.platform))
            .str("scale", scale_label(self.cell.scale))
            .str("component", self.component.label())
            .f64("baseline_mean_j", self.baseline.mean)
            .f64("baseline_lo_j", self.baseline.lo)
            .f64("baseline_hi_j", self.baseline.hi)
            .f64("candidate_mean_j", self.candidate.mean)
            .f64("candidate_lo_j", self.candidate.lo)
            .f64("candidate_hi_j", self.candidate.hi)
            .f64("rel_shift", self.rel_shift);
        o.finish()
    }
}

fn platform_label(p: PlatformKind) -> &'static str {
    match p {
        PlatformKind::PentiumM => "p6",
        PlatformKind::Pxa255 => "pxa255",
    }
}

fn scale_label(s: InputScale) -> &'static str {
    match s {
        InputScale::Full => "full",
        InputScale::Reduced => "s10",
    }
}

/// Machine-readable outcome of a diff run.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionReport {
    /// Fingerprint label the baseline side was addressed by.
    pub baseline_label: String,
    /// Fingerprint label the candidate side was addressed by.
    pub candidate_label: String,
    /// Canonical candidate-side perturbation spec (empty when none).
    pub perturb: String,
    /// The statistical knobs the comparison ran under.
    pub options: DiffOptions,
    /// Scenario cells compared.
    pub cells: usize,
    /// (cell, component) comparisons performed.
    pub comparisons: u64,
    /// Comparisons whose candidate CI sits strictly above baseline with a
    /// shift past the floor.
    pub regressions: Vec<ComponentDelta>,
    /// The symmetric improvements.
    pub improvements: Vec<ComponentDelta>,
}

impl RegressionReport {
    /// True when no regression was flagged (improvements do not gate).
    pub fn clean(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Distinct components named by the regressions, in
    /// [`ComponentId::ALL`] order.
    pub fn components_flagged(&self) -> Vec<&'static str> {
        self.regressions
            .iter()
            .map(|d| d.component)
            .collect::<BTreeSet<_>>()
            .into_iter()
            .map(ComponentId::label)
            .collect()
    }

    /// Render the report as schema-stamped JSON.
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.schema_version()
            .str("kind", "regression_report")
            .str("baseline", &self.baseline_label)
            .str("candidate", &self.candidate_label)
            .str("perturb", &self.perturb)
            .u64("seed", self.options.seed)
            .u64("replicates", self.options.replicates as u64)
            .u64("resamples", u64::from(self.options.resamples))
            .f64("confidence", self.options.confidence)
            .f64("noise_sigma", self.options.noise_sigma)
            .f64("min_rel_shift", self.options.min_rel_shift)
            .u64("cells", self.cells as u64)
            .u64("comparisons", self.comparisons)
            .bool("clean", self.clean())
            .array(
                "components_flagged",
                self.components_flagged()
                    .into_iter()
                    .map(|l| format!("\"{l}\"")),
            )
            .array(
                "regressions",
                self.regressions.iter().map(ComponentDelta::to_json),
            )
            .array(
                "improvements",
                self.improvements.iter().map(ComponentDelta::to_json),
            );
        o.finish()
    }
}

/// One side of a diff: a fingerprint label plus the cache handle that
/// addresses that build's entries (if any cache is attached).
#[derive(Debug, Clone)]
pub struct DiffSide {
    /// Fingerprint label recorded in the report and stamped on cache
    /// entries.
    pub label: String,
    /// Cache handle whose fingerprint matches `label`.
    pub cache: Option<Arc<ExperimentCache>>,
}

impl DiffSide {
    /// A cache-less side addressed by `label`.
    pub fn new(label: &str) -> Self {
        Self {
            label: label.to_owned(),
            cache: None,
        }
    }

    /// Attach the cache handle for this side.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<ExperimentCache>) -> Self {
        self.cache = Some(cache);
        self
    }
}

/// The diff engine: two sides, a perturbation, and the statistical knobs.
#[derive(Debug)]
pub struct DiffEngine {
    options: DiffOptions,
    perturb: EnergyPerturbation,
    jobs: usize,
    telemetry: Telemetry,
    baseline: DiffSide,
    candidate: DiffSide,
}

impl DiffEngine {
    /// An engine comparing `baseline` to `candidate` under `options`, with
    /// no perturbation, one worker, and disabled telemetry.
    pub fn new(options: DiffOptions, baseline: DiffSide, candidate: DiffSide) -> Self {
        Self {
            options,
            perturb: EnergyPerturbation::none(),
            jobs: 1,
            telemetry: Telemetry::disabled(),
            baseline,
            candidate,
        }
    }

    /// Scale the candidate side's extracted per-component energies — the
    /// test corpus's stand-in for an actually changed build. Cached runs
    /// stay raw; the factors apply at extraction time only.
    #[must_use]
    pub fn perturb(mut self, p: EnergyPerturbation) -> Self {
        self.perturb = p;
        self
    }

    /// Worker threads for the ensemble sweeps (reports are byte-identical
    /// for any value).
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Record diff counters/histograms (and the underlying sweep metrics)
    /// into `telemetry`.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The ensemble master plan for replicate `r`: sensor noise only, on an
    /// independent deterministic seed stream. The runner further derives a
    /// per-cell seed from each master, so cells are decorrelated too.
    fn replicate_plan(&self, r: usize) -> FaultPlan {
        let mut plan = FaultPlan::none();
        plan.noise_sigma = self.options.noise_sigma;
        plan.seed = DetRng::new(self.options.seed)
            .derive(&format!("diff-ensemble|{r}"))
            .next_u64();
        plan
    }

    /// Run the seed ensemble for every cell on one side; returns
    /// `replicates` summaries per cell, in cell order.
    fn sweep(
        &self,
        cells: &[ExperimentConfig],
        cache: Option<&Arc<ExperimentCache>>,
    ) -> Result<Vec<Vec<Arc<RunSummary>>>, String> {
        // Panics are contained so a crashing cell surfaces as a typed
        // error to the gate (or the daemon's reader thread) instead of
        // unwinding through it.
        let mut runner = SupervisedRunner::new()
            .jobs(self.jobs)
            .contain_panics(true)
            .with_telemetry(self.telemetry.clone());
        if let Some(cache) = cache {
            runner = runner.with_cache(Arc::clone(cache));
        }
        let batch: Vec<(ExperimentConfig, Option<FaultPlan>)> = cells
            .iter()
            .flat_map(|cell| {
                (0..self.options.replicates).map(|r| (cell.clone(), Some(self.replicate_plan(r))))
            })
            .collect();
        self.telemetry.count(CounterId::DiffSweeps, 1);
        let results = runner.run_batch_with_plans(&batch);
        let mut per_cell = Vec::with_capacity(cells.len());
        let mut it = results.into_iter();
        for cell in cells {
            let mut replicates = Vec::with_capacity(self.options.replicates);
            for _ in 0..self.options.replicates {
                let summary = it
                    .next()
                    .expect("one result per submitted cell")
                    .map_err(|e| format!("{cell}: {e}"))?;
                replicates.push(summary);
            }
            per_cell.push(replicates);
        }
        Ok(per_cell)
    }

    /// Execute the diff over `cells` and assemble the report.
    ///
    /// # Errors
    ///
    /// A rendered [`crate::ExperimentError`] with its cell identity when
    /// any ensemble run fails on either side — the gate never compares
    /// partial ensembles.
    pub fn run(&self, cells: &[ExperimentConfig]) -> Result<RegressionReport, String> {
        assert!(
            self.options.replicates > 0,
            "diff needs at least one replicate"
        );
        let base_runs = self.sweep(cells, self.baseline.cache.as_ref())?;
        // A self-diff (same fingerprint on both sides) shares one sweep:
        // the sides differ only by the extraction-time perturbation.
        let cand_runs = if self.baseline.label == self.candidate.label {
            None
        } else {
            Some(self.sweep(cells, self.candidate.cache.as_ref())?)
        };

        let mut report = RegressionReport {
            baseline_label: self.baseline.label.clone(),
            candidate_label: self.candidate.label.clone(),
            perturb: self.perturb.to_string(),
            options: self.options,
            cells: cells.len(),
            comparisons: 0,
            regressions: Vec::new(),
            improvements: Vec::new(),
        };

        for (i, cell) in cells.iter().enumerate() {
            self.telemetry.count(CounterId::DiffCellsCompared, 1);
            let base = &base_runs[i];
            let cand = cand_runs.as_ref().map_or(base, |runs| &runs[i]);
            // Every component either side's ensemble ever attributed a
            // sample to, in display order.
            let touched: BTreeSet<ComponentId> = base
                .iter()
                .chain(cand.iter())
                .flat_map(|run| run.report.components.keys().copied())
                .collect();
            for component in touched {
                let none = EnergyPerturbation::none();
                let extract = |runs: &[Arc<RunSummary>], p: &EnergyPerturbation| -> Vec<f64> {
                    runs.iter()
                        .map(|run| perturbed_component_energy(&run.report, component, p))
                        .collect()
                };
                let base_samples = extract(base, &none);
                let cand_samples = extract(cand, &self.perturb);
                let base_ci = self.ci(&base_samples, cell, component, "base");
                let cand_ci = self.ci(&cand_samples, cell, component, "cand");
                report.comparisons += 1;
                let rel_shift = if base_ci.mean == 0.0 {
                    if cand_ci.mean == 0.0 {
                        0.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    (cand_ci.mean - base_ci.mean) / base_ci.mean
                };
                if rel_shift.is_finite() {
                    self.telemetry
                        .observe(HistId::DiffShiftPpm, (rel_shift.abs() * 1e6).round() as u64);
                }
                let delta = ComponentDelta {
                    cell: cell.clone(),
                    component,
                    baseline: base_ci,
                    candidate: cand_ci,
                    rel_shift,
                };
                if cand_ci.lo > base_ci.hi && rel_shift >= self.options.min_rel_shift {
                    self.telemetry.count(CounterId::DiffRegressions, 1);
                    report.regressions.push(delta);
                } else if cand_ci.hi < base_ci.lo && rel_shift <= -self.options.min_rel_shift {
                    report.improvements.push(delta);
                }
            }
        }
        Ok(report)
    }

    /// Bootstrap one side of one comparison on its own derived stream, so
    /// the interval depends only on (seed, cell, component, side).
    fn ci(
        &self,
        samples: &[f64],
        cell: &ExperimentConfig,
        component: ComponentId,
        side: &str,
    ) -> BootstrapCi {
        let mut rng = DetRng::new(self.options.seed).derive(&format!(
            "diff-boot|{}|{}|{side}",
            cell.key(),
            component.label()
        ));
        self.telemetry
            .count(CounterId::DiffResamples, u64::from(self.options.resamples));
        bootstrap_ci(
            samples,
            self.options.confidence,
            self.options.resamples,
            &mut rng,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::new(0xB007)
    }

    const SAMPLES: [f64; 8] = [10.0, 10.2, 9.9, 10.1, 10.05, 9.95, 10.15, 9.85];

    #[test]
    fn bootstrap_is_deterministic_for_a_fixed_seed() {
        let a = bootstrap_ci(&SAMPLES, 0.95, 300, &mut rng());
        let b = bootstrap_ci(&SAMPLES, 0.95, 300, &mut rng());
        assert_eq!(a, b);
        let c = bootstrap_ci(&SAMPLES, 0.95, 300, &mut DetRng::new(0x5EED));
        assert_ne!(a, c, "different seeds must explore different resamples");
    }

    #[test]
    fn bootstrap_ci_contains_the_sample_mean() {
        let mean = SAMPLES.iter().sum::<f64>() / SAMPLES.len() as f64;
        for conf in [0.5, 0.9, 0.95, 0.99, 0.999] {
            let ci = bootstrap_ci(&SAMPLES, conf, 200, &mut rng());
            assert!(
                ci.lo <= mean && mean <= ci.hi,
                "CI [{}, {}] at {conf} excludes mean {mean}",
                ci.lo,
                ci.hi
            );
            assert_eq!(ci.mean, mean);
        }
    }

    #[test]
    fn bootstrap_bounds_are_monotone_in_confidence() {
        let mut prev: Option<BootstrapCi> = None;
        for conf in [0.5, 0.8, 0.9, 0.95, 0.99, 0.999] {
            let ci = bootstrap_ci(&SAMPLES, conf, 400, &mut rng());
            if let Some(p) = prev {
                assert!(
                    ci.lo <= p.lo && ci.hi >= p.hi,
                    "interval at {conf} must contain the narrower one"
                );
            }
            prev = Some(ci);
        }
    }

    #[test]
    fn single_sample_degenerates_to_a_point() {
        let ci = bootstrap_ci(&[42.0], 0.99, 50, &mut rng());
        assert_eq!((ci.lo, ci.mean, ci.hi), (42.0, 42.0, 42.0));
    }

    #[test]
    fn golden_cells_cover_both_personalities_per_benchmark() {
        let cells = golden_cells();
        let benchmarks = all_benchmarks();
        assert_eq!(cells.len(), 2 * benchmarks.len());
        for (pair, bench) in cells.chunks(2).zip(benchmarks) {
            assert_eq!(pair[0].benchmark, bench.name);
            assert_eq!(pair[0].vm, crate::VmChoice::Jikes(CollectorKind::GenCopy));
            assert_eq!(pair[0].platform, PlatformKind::PentiumM);
            assert_eq!(pair[0].heap_mb, 64);
            assert_eq!(pair[0].scale, InputScale::Reduced);
            assert_eq!(pair[1].benchmark, bench.name);
            assert_eq!(pair[1].vm, crate::VmChoice::Kaffe);
            assert_eq!(pair[1].platform, PlatformKind::Pxa255);
            assert_eq!(pair[1].heap_mb, 32);
            assert_eq!(pair[1].scale, InputScale::Reduced);
        }
    }

    #[test]
    fn empty_report_is_clean_and_flags_nothing() {
        let report = RegressionReport {
            baseline_label: "a".into(),
            candidate_label: "b".into(),
            perturb: String::new(),
            options: DiffOptions::default(),
            cells: 0,
            comparisons: 0,
            regressions: Vec::new(),
            improvements: Vec::new(),
        };
        assert!(report.clean());
        assert!(report.components_flagged().is_empty());
        let json = report.to_json();
        assert!(json.contains("\"clean\":true"));
        assert!(json.contains("\"schema_version\":"));
        assert!(json.contains("\"regressions\":[]"));
    }
}
