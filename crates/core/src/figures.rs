//! Regeneration of every figure and in-text table of the paper's
//! evaluation (Section VI), one entry point per artifact.
//!
//! Each function returns a typed data structure that also implements
//! [`Display`](std::fmt::Display) so the `figures` binary (and the
//! criterion benches) can print the same rows/series the paper reports.
//! Absolute values differ from the paper's silicon — the substrate here is
//! a calibrated simulator — but the *shapes* (who wins, by what factor,
//! where crossovers fall) are the reproduction target; `EXPERIMENTS.md`
//! records paper-vs-measured for each.

use std::fmt;
use std::sync::Arc;

use serde::Serialize;
use vmprobe_heap::CollectorKind;
use vmprobe_power::{ComponentId, ThermalConfig, ThermalSim, Watts};
use vmprobe_workloads::{all_benchmarks, pxa255_benchmarks, suite_benchmarks, Suite};

use crate::{
    ExperimentConfig, ExperimentError, FailedCell, RunSummary, Runner, Table, P6_HEAPS_MB,
};

/// Names of every registered benchmark, in registry order — the default
/// benchmark list for the full paper-scope sweeps.
pub fn all_benchmark_names() -> Vec<&'static str> {
    all_benchmarks().iter().map(|b| b.name).collect()
}

/// Names of the PXA255 benchmark subset (SpecJVM98 `-s10`).
pub fn pxa_benchmark_names() -> Vec<&'static str> {
    pxa255_benchmarks().iter().map(|b| b.name).collect()
}

/// Propagate the first failure (in submission order) of a strict sweep.
///
/// Unlike the serial loops these replaced, the whole grid has already run
/// in parallel by the time the first error surfaces — later cells are
/// executed (and cached, and accounted) rather than skipped. The surfaced
/// error is deterministic: always the earliest failing cell in submission
/// order, regardless of thread count.
fn strict(
    results: Vec<Result<Arc<RunSummary>, ExperimentError>>,
) -> Result<Vec<Arc<RunSummary>>, ExperimentError> {
    results.into_iter().collect()
}

fn write_failed(f: &mut fmt::Formatter<'_>, failed: &[FailedCell]) -> fmt::Result {
    for cell in failed {
        writeln!(f, "{cell}")?;
    }
    Ok(())
}

/// The components the paper monitors for Jikes RVM, in its legend order.
pub const JIKES_COMPONENTS: [ComponentId; 4] = [
    ComponentId::OptCompiler,
    ComponentId::BaseCompiler,
    ComponentId::ClassLoader,
    ComponentId::Gc,
];

/// The components the paper monitors for Kaffe.
pub const KAFFE_COMPONENTS: [ComponentId; 3] = [
    ComponentId::Gc,
    ComponentId::ClassLoader,
    ComponentId::JitCompiler,
];

fn pct(v: f64) -> String {
    format!("{:5.1}%", 100.0 * v)
}

// ---------------------------------------------------------------- Figure 1

/// One sample of the thermal trace.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ThermalPoint {
    /// Elapsed seconds.
    pub t_s: f64,
    /// Die temperature in °C.
    pub temp_c: f64,
    /// Effective clock duty cycle (0.5 while throttled).
    pub duty: f64,
}

/// Figure 1: processor temperature under repetitive `_222_mpegaudio` with
/// the fan enabled vs disabled, including the 99 °C emergency throttle.
#[derive(Debug, Clone, Serialize)]
pub struct Fig1 {
    /// Average chip power of the underlying run, in watts.
    pub run_power_w: f64,
    /// Fan-enabled trace (settles near 60 °C).
    pub fan_on: Vec<ThermalPoint>,
    /// Fan-disabled trace (trips the throttle near 99 °C).
    pub fan_off: Vec<ThermalPoint>,
    /// Seconds until the throttle first engages in the fan-off trace.
    pub throttle_onset_s: Option<f64>,
}

/// Regenerate Figure 1.
///
/// # Errors
///
/// Propagates [`ExperimentError`] from the underlying mpegaudio run.
pub fn fig1(runner: &mut Runner) -> Result<Fig1, ExperimentError> {
    let _phase = runner.phase("fig1");
    let cfg = ExperimentConfig::jikes("_222_mpegaudio", CollectorKind::GenCopy, 64);
    let run = runner.run(&cfg)?;
    let power =
        Watts::new(run.report.cpu_energy.joules() / run.report.duration.seconds().max(1e-12));
    let idle = Watts::new(4.5);

    // Package calibration anchored to the paper's Figure 1: the fan-on
    // steady state sits near 60 °C and the fan-off steady state well above
    // the 99 °C trip point, for *this* workload's measured power.
    let thermal_cfg = ThermalConfig {
        r_fan_on: 35.0 / power.watts().max(1.0),
        r_fan_off: 82.0 / power.watts().max(1.0),
        capacitance: 2.4 * power.watts().max(1.0),
        ..ThermalConfig::default()
    };

    let simulate = |fan: bool, start_warm: bool| {
        let mut sim = ThermalSim::new(thermal_cfg, true);
        if start_warm {
            // Reach fan-on steady state first (the paper's scenario starts
            // from normal operation).
            for _ in 0..6_000 {
                sim.step(power, idle, vmprobe_power::Seconds::new(0.1));
            }
        }
        sim.set_fan(fan);
        let mut trace = Vec::new();
        let dt = vmprobe_power::Seconds::new(0.1);
        for i in 0..6_000 {
            let s = sim.step(power, idle, dt);
            if i % 20 == 0 {
                trace.push(ThermalPoint {
                    t_s: i as f64 * 0.1,
                    temp_c: s.temp.celsius(),
                    duty: if s.throttled { 0.5 } else { 1.0 },
                });
            }
        }
        trace
    };

    let fan_on = simulate(true, false);
    let fan_off = simulate(false, true);
    let throttle_onset_s = fan_off.iter().find(|p| p.duty < 1.0).map(|p| p.t_s);
    Ok(Fig1 {
        run_power_w: power.watts(),
        fan_on,
        fan_off,
        throttle_onset_s,
    })
}

impl fmt::Display for Fig1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 1: thermal behaviour, repetitive _222_mpegaudio (GenCopy), \
             chip power {:.1} W",
            self.run_power_w
        )?;
        let mut t = Table::new(vec![
            "t (s)".into(),
            "fan-on temp (C)".into(),
            "fan-off temp (C)".into(),
            "fan-off duty".into(),
        ]);
        for (a, b) in self.fan_on.iter().zip(&self.fan_off) {
            t.row(vec![
                format!("{:.0}", a.t_s),
                format!("{:.1}", a.temp_c),
                format!("{:.1}", b.temp_c),
                format!("{:.2}", b.duty),
            ]);
        }
        write!(f, "{t}")?;
        match self.throttle_onset_s {
            Some(s) => writeln!(
                f,
                "emergency throttle engaged after {s:.0} s (paper: ~240 s)"
            ),
            None => writeln!(f, "throttle never engaged"),
        }
    }
}

// ---------------------------------------------------------------- Figure 5

/// Figure 5: the benchmark inventory.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5 {
    /// (suite, name, description, modeled alloc bytes, modeled live bytes).
    pub rows: Vec<(String, String, String, u64, u64)>,
}

/// Regenerate Figure 5 (the workload table).
pub fn fig5() -> Fig5 {
    Fig5 {
        rows: all_benchmarks()
            .into_iter()
            .map(|b| {
                (
                    b.suite.to_string(),
                    b.name.to_string(),
                    b.description.to_string(),
                    b.blueprint.est_alloc_bytes(),
                    b.blueprint.est_live_bytes(),
                )
            })
            .collect(),
    }
}

impl fmt::Display for Fig5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 5: benchmark suites")?;
        let mut t = Table::new(vec![
            "Suite".into(),
            "Benchmark".into(),
            "Description".into(),
            "alloc (KiB)".into(),
            "live (KiB)".into(),
        ]);
        for (s, n, d, a, l) in &self.rows {
            t.row(vec![
                s.clone(),
                n.clone(),
                d.clone(),
                format!("{}", a >> 10),
                format!("{}", l >> 10),
            ]);
        }
        write!(f, "{t}")
    }
}

// ---------------------------------------------------------------- Figure 6

/// One energy-decomposition bar.
#[derive(Debug, Clone, Serialize)]
pub struct BreakdownRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Heap label (MB).
    pub heap_mb: u32,
    /// Fractions per monitored component, in legend order, with the
    /// application holding the remainder.
    pub fractions: Vec<(ComponentId, f64)>,
    /// Application (mutator) fraction: the remainder after the monitored
    /// VM components.
    pub app_fraction: f64,
}

/// Figure 6: per-component energy decomposition under Jikes + SemiSpace.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6 {
    /// All bars, benchmark-major then heap order.
    pub rows: Vec<BreakdownRow>,
    /// Cells that could not be filled (failed or quarantined runs).
    pub failed: Vec<FailedCell>,
}

/// Regenerate Figure 6 for the given benchmarks (paper scope:
/// [`all_benchmark_names`]) across the given heap labels (defaults:
/// [`P6_HEAPS_MB`]). The whole grid executes as one parallel batch on the
/// runner's configured workers.
///
/// Degrades gracefully: a failing or quarantined cell is recorded in
/// [`Fig6::failed`] (and the runner's [`crate::RunReport`]) and the sweep
/// continues.
///
/// # Errors
///
/// Reserved for sweep-level failures; per-cell failures no longer
/// propagate.
pub fn fig6(
    runner: &mut Runner,
    benchmarks: &[&str],
    heaps: &[u32],
) -> Result<Fig6, ExperimentError> {
    let _phase = runner.phase("fig6");
    let configs: Vec<ExperimentConfig> = benchmarks
        .iter()
        .flat_map(|&b| {
            heaps
                .iter()
                .map(move |&h| ExperimentConfig::jikes(b, CollectorKind::SemiSpace, h))
        })
        .collect();
    let mut failed = Vec::new();
    let runs = runner.cells(&configs, &mut failed);
    let rows = configs
        .iter()
        .zip(&runs)
        .filter_map(|(cfg, run)| {
            run.as_ref()
                .map(|r| breakdown_row(&cfg.benchmark, cfg.heap_mb, r, &JIKES_COMPONENTS))
        })
        .collect();
    Ok(Fig6 { rows, failed })
}

fn breakdown_row(
    name: &str,
    heap_mb: u32,
    run: &crate::RunSummary,
    components: &[ComponentId],
) -> BreakdownRow {
    let fractions: Vec<(ComponentId, f64)> =
        components.iter().map(|&c| (c, run.fraction(c))).collect();
    let monitored: f64 = fractions.iter().map(|(_, v)| v).sum();
    BreakdownRow {
        benchmark: name.to_owned(),
        heap_mb,
        fractions,
        app_fraction: (1.0 - monitored).max(0.0),
    }
}

impl fmt::Display for Fig6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 6: energy decomposition, Jikes RVM + SemiSpace")?;
        let mut t = Table::new(vec![
            "benchmark".into(),
            "heap".into(),
            "opt_comp".into(),
            "base_comp".into(),
            "CL".into(),
            "GC".into(),
            "App".into(),
        ]);
        for r in &self.rows {
            let mut cells = vec![r.benchmark.clone(), format!("{}MB", r.heap_mb)];
            cells.extend(r.fractions.iter().map(|(_, v)| pct(*v)));
            cells.push(pct(r.app_fraction));
            t.row(cells);
        }
        write!(f, "{t}")?;
        write_failed(f, &self.failed)
    }
}

// ---------------------------------------------------------------- Figure 7

/// EDP of one benchmark under one collector across heaps.
#[derive(Debug, Clone, Serialize)]
pub struct EdpCurve {
    /// Benchmark name.
    pub benchmark: String,
    /// Collector.
    pub collector: CollectorKind,
    /// `(heap MB, EDP J·s)` points.
    pub points: Vec<(u32, f64)>,
}

/// Figure 7: energy-delay product vs heap size for the four Jikes
/// collectors.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7 {
    /// One curve per (benchmark, collector).
    pub curves: Vec<EdpCurve>,
    /// Cells that could not be filled; their `(heap, EDP)` points are
    /// simply absent from the affected curves.
    pub failed: Vec<FailedCell>,
}

impl Fig7 {
    /// The curve for (benchmark, collector), if present.
    pub fn curve(&self, benchmark: &str, collector: CollectorKind) -> Option<&EdpCurve> {
        self.curves
            .iter()
            .find(|c| c.benchmark == benchmark && c.collector == collector)
    }
}

impl EdpCurve {
    /// EDP at a heap label, if that point exists.
    pub fn at(&self, heap_mb: u32) -> Option<f64> {
        self.points
            .iter()
            .find(|(h, _)| *h == heap_mb)
            .map(|(_, e)| *e)
    }
}

/// Regenerate Figure 7 for the given benchmarks and heaps (defaults: all
/// benchmarks, [`P6_HEAPS_MB`]). The full benchmark × collector × heap
/// grid executes as one parallel batch.
///
/// Degrades gracefully: failing cells leave gaps in the affected curves
/// and are listed in [`Fig7::failed`].
///
/// # Errors
///
/// Reserved for sweep-level failures; per-cell failures no longer
/// propagate.
pub fn fig7(
    runner: &mut Runner,
    benchmarks: &[&str],
    heaps: &[u32],
) -> Result<Fig7, ExperimentError> {
    let _phase = runner.phase("fig7");
    let mut configs = Vec::new();
    for &name in benchmarks {
        for collector in CollectorKind::jikes_collectors() {
            for &h in heaps {
                configs.push(ExperimentConfig::jikes(name, collector, h));
            }
        }
    }
    let mut failed = Vec::new();
    let mut runs = runner.cells(&configs, &mut failed).into_iter();
    let mut curves = Vec::new();
    for &name in benchmarks {
        for collector in CollectorKind::jikes_collectors() {
            let mut points = Vec::new();
            for &h in heaps {
                if let Some(run) = runs.next().expect("one result per cell") {
                    points.push((h, run.edp()));
                }
            }
            curves.push(EdpCurve {
                benchmark: name.to_owned(),
                collector,
                points,
            });
        }
    }
    Ok(Fig7 { curves, failed })
}

impl fmt::Display for Fig7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 7: energy-delay product (J*s) vs heap size, Jikes RVM"
        )?;
        let heaps: Vec<u32> = self
            .curves
            .first()
            .map(|c| c.points.iter().map(|(h, _)| *h).collect())
            .unwrap_or_default();
        let mut header = vec!["benchmark".into(), "collector".into()];
        header.extend(heaps.iter().map(|h| format!("{h}MB")));
        let mut t = Table::new(header);
        for c in &self.curves {
            let mut cells = vec![c.benchmark.clone(), c.collector.to_string()];
            cells.extend(
                heaps
                    .iter()
                    .map(|&h| c.at(h).map_or_else(|| "--".into(), |e| format!("{e:.4}"))),
            );
            t.row(cells);
        }
        write!(f, "{t}")?;
        write_failed(f, &self.failed)
    }
}

// ---------------------------------------------------------------- Figure 8

/// Average and peak power of one component for one benchmark.
#[derive(Debug, Clone, Serialize)]
pub struct PowerRow {
    /// Benchmark name.
    pub benchmark: String,
    /// `(component, avg W, peak W)` for App, GC, CL.
    pub components: Vec<(ComponentId, f64, f64)>,
}

/// Figure 8: average (top) and peak (bottom) power per component under
/// GenCopy, aggregated across the heap sweep.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8 {
    /// One row per benchmark.
    pub rows: Vec<PowerRow>,
    /// Cells excluded from the aggregation because their runs failed.
    pub failed: Vec<FailedCell>,
}

/// Regenerate Figure 8 for the given benchmarks (paper scope:
/// [`all_benchmark_names`]), GenCopy, aggregated over `heaps`. The grid
/// executes as one parallel batch.
///
/// Degrades gracefully: failing cells are excluded from each benchmark's
/// aggregate and listed in [`Fig8::failed`].
///
/// # Errors
///
/// Reserved for sweep-level failures; per-cell failures no longer
/// propagate.
pub fn fig8(
    runner: &mut Runner,
    benchmarks: &[&str],
    heaps: &[u32],
) -> Result<Fig8, ExperimentError> {
    let _phase = runner.phase("fig8");
    let comps = [
        ComponentId::Application,
        ComponentId::Gc,
        ComponentId::ClassLoader,
    ];
    let configs: Vec<ExperimentConfig> = benchmarks
        .iter()
        .flat_map(|&b| {
            heaps
                .iter()
                .map(move |&h| ExperimentConfig::jikes(b, CollectorKind::GenCopy, h))
        })
        .collect();
    let mut failed = Vec::new();
    let mut runs = runner.cells(&configs, &mut failed).into_iter();
    let mut rows = Vec::new();
    for &name in benchmarks {
        let mut acc: Vec<(f64, f64, f64)> = vec![(0.0, 0.0, 0.0); comps.len()]; // (energy, time, peak)
        for _ in heaps {
            let Some(run) = runs.next().expect("one result per cell") else {
                continue;
            };
            for (i, &c) in comps.iter().enumerate() {
                if let Some(p) = run.report.component(c) {
                    acc[i].0 += p.energy.joules();
                    acc[i].1 += p.time.seconds();
                    acc[i].2 = acc[i].2.max(p.peak_power.watts());
                }
            }
        }
        rows.push(PowerRow {
            benchmark: name.to_owned(),
            components: comps
                .iter()
                .zip(&acc)
                .map(|(&c, &(e, t, pk))| (c, if t > 0.0 { e / t } else { 0.0 }, pk))
                .collect(),
        });
    }
    Ok(Fig8 { rows, failed })
}

impl fmt::Display for Fig8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 8: average and peak power per component, Jikes RVM + GenCopy"
        )?;
        let mut t = Table::new(vec![
            "benchmark".into(),
            "App avg W".into(),
            "App peak W".into(),
            "GC avg W".into(),
            "GC peak W".into(),
            "CL avg W".into(),
            "CL peak W".into(),
        ]);
        for r in &self.rows {
            let mut cells = vec![r.benchmark.clone()];
            for &(_, avg, peak) in &r.components {
                cells.push(format!("{avg:.2}"));
                cells.push(format!("{peak:.2}"));
            }
            t.row(cells);
        }
        write!(f, "{t}")?;
        write_failed(f, &self.failed)
    }
}

// ------------------------------------------------------- Figures 9 and 10

/// Figure 9: Kaffe energy distribution on the P6 platform.
#[derive(Debug, Clone, Serialize)]
pub struct Fig9 {
    /// One bar per (benchmark, heap).
    pub rows: Vec<BreakdownRow>,
    /// Cells that could not be filled (failed or quarantined runs).
    pub failed: Vec<FailedCell>,
}

/// Regenerate Figure 9 for the given benchmarks (paper scope:
/// [`all_benchmark_names`]). The grid executes as one parallel batch.
///
/// Degrades gracefully: failing cells are listed in [`Fig9::failed`] and
/// the sweep continues.
///
/// # Errors
///
/// Reserved for sweep-level failures; per-cell failures no longer
/// propagate.
pub fn fig9(
    runner: &mut Runner,
    benchmarks: &[&str],
    heaps: &[u32],
) -> Result<Fig9, ExperimentError> {
    let _phase = runner.phase("fig9");
    let configs: Vec<ExperimentConfig> = benchmarks
        .iter()
        .flat_map(|&b| heaps.iter().map(move |&h| ExperimentConfig::kaffe(b, h)))
        .collect();
    let mut failed = Vec::new();
    let runs = runner.cells(&configs, &mut failed);
    let rows = configs
        .iter()
        .zip(&runs)
        .filter_map(|(cfg, run)| {
            run.as_ref()
                .map(|r| breakdown_row(&cfg.benchmark, cfg.heap_mb, r, &KAFFE_COMPONENTS))
        })
        .collect();
    Ok(Fig9 { rows, failed })
}

impl fmt::Display for Fig9 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 9: energy distribution, Kaffe on Pentium M")?;
        let mut t = Table::new(vec![
            "benchmark".into(),
            "heap".into(),
            "GC".into(),
            "CL".into(),
            "JIT".into(),
            "App".into(),
        ]);
        for r in &self.rows {
            let mut cells = vec![r.benchmark.clone(), format!("{}MB", r.heap_mb)];
            cells.extend(r.fractions.iter().map(|(_, v)| pct(*v)));
            cells.push(pct(r.app_fraction));
            t.row(cells);
        }
        write!(f, "{t}")?;
        write_failed(f, &self.failed)
    }
}

/// Figure 10: Kaffe energy-delay product vs heap on the P6.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10 {
    /// One curve per benchmark.
    pub curves: Vec<EdpCurve>,
    /// Cells that could not be filled; their points are absent from the
    /// affected curves.
    pub failed: Vec<FailedCell>,
}

/// Regenerate Figure 10 for the given benchmarks (paper scope:
/// [`all_benchmark_names`]). The grid executes as one parallel batch —
/// and entirely from cache when Figure 9 already ran on the same runner.
///
/// Degrades gracefully: failing cells leave gaps in the affected curves
/// and are listed in [`Fig10::failed`].
///
/// # Errors
///
/// Reserved for sweep-level failures; per-cell failures no longer
/// propagate.
pub fn fig10(
    runner: &mut Runner,
    benchmarks: &[&str],
    heaps: &[u32],
) -> Result<Fig10, ExperimentError> {
    let _phase = runner.phase("fig10");
    let configs: Vec<ExperimentConfig> = benchmarks
        .iter()
        .flat_map(|&b| heaps.iter().map(move |&h| ExperimentConfig::kaffe(b, h)))
        .collect();
    let mut failed = Vec::new();
    let mut runs = runner.cells(&configs, &mut failed).into_iter();
    let mut curves = Vec::new();
    for &name in benchmarks {
        let mut points = Vec::new();
        for &h in heaps {
            if let Some(run) = runs.next().expect("one result per cell") {
                points.push((h, run.edp()));
            }
        }
        curves.push(EdpCurve {
            benchmark: name.to_owned(),
            collector: CollectorKind::KaffeIncremental,
            points,
        });
    }
    Ok(Fig10 { curves, failed })
}

impl fmt::Display for Fig10 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 10: energy-delay product (J*s) vs heap, Kaffe on Pentium M"
        )?;
        let heaps: Vec<u32> = self
            .curves
            .first()
            .map(|c| c.points.iter().map(|(h, _)| *h).collect())
            .unwrap_or_default();
        let mut header = vec!["benchmark".into()];
        header.extend(heaps.iter().map(|h| format!("{h}MB")));
        let mut t = Table::new(header);
        for c in &self.curves {
            let mut cells = vec![c.benchmark.clone()];
            cells.extend(
                heaps
                    .iter()
                    .map(|&h| c.at(h).map_or_else(|| "--".into(), |e| format!("{e:.4}"))),
            );
            t.row(cells);
        }
        write!(f, "{t}")?;
        write_failed(f, &self.failed)
    }
}

// --------------------------------------------------------------- Figure 11

/// Figure 11: Kaffe on the PXA255 (five SpecJVM98 benchmarks, `-s10`).
#[derive(Debug, Clone, Serialize)]
pub struct Fig11 {
    /// One bar per (benchmark, heap).
    pub rows: Vec<BreakdownRow>,
    /// Cells that could not be filled (failed or quarantined runs).
    pub failed: Vec<FailedCell>,
}

/// Regenerate Figure 11 for the given benchmarks (paper scope:
/// [`pxa_benchmark_names`]) across the PXA255 heap sweep (defaults:
/// [`crate::PXA_HEAPS_MB`]). The grid executes as one parallel batch.
///
/// Degrades gracefully: failing cells are listed in [`Fig11::failed`] and
/// the sweep continues.
///
/// # Errors
///
/// Reserved for sweep-level failures; per-cell failures no longer
/// propagate.
pub fn fig11(
    runner: &mut Runner,
    benchmarks: &[&str],
    heaps: &[u32],
) -> Result<Fig11, ExperimentError> {
    let _phase = runner.phase("fig11");
    let configs: Vec<ExperimentConfig> = benchmarks
        .iter()
        .flat_map(|&b| {
            heaps
                .iter()
                .map(move |&h| ExperimentConfig::kaffe_pxa(b, h))
        })
        .collect();
    let mut failed = Vec::new();
    let runs = runner.cells(&configs, &mut failed);
    let rows = configs
        .iter()
        .zip(&runs)
        .filter_map(|(cfg, run)| {
            run.as_ref()
                .map(|r| breakdown_row(&cfg.benchmark, cfg.heap_mb, r, &KAFFE_COMPONENTS))
        })
        .collect();
    Ok(Fig11 { rows, failed })
}

impl fmt::Display for Fig11 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 11: energy decomposition, Kaffe on Intel PXA255 (s10)"
        )?;
        let mut t = Table::new(vec![
            "benchmark".into(),
            "heap".into(),
            "GC".into(),
            "CL".into(),
            "JIT".into(),
            "App".into(),
        ]);
        for r in &self.rows {
            let mut cells = vec![r.benchmark.clone(), format!("{}MB", r.heap_mb)];
            cells.extend(r.fractions.iter().map(|(_, v)| pct(*v)));
            cells.push(pct(r.app_fraction));
            t.row(cells);
        }
        write!(f, "{t}")?;
        write_failed(f, &self.failed)
    }
}

// ------------------------------------------------------------ Tables T1-T5

/// T1 (§VI-C in-text): average GC power per collector over SpecJVM98.
#[derive(Debug, Clone, Serialize)]
pub struct T1CollectorPower {
    /// `(collector, average GC watts)`.
    pub rows: Vec<(CollectorKind, f64)>,
}

/// Regenerate T1 across `heaps`. The full collector × benchmark × heap
/// grid executes as one parallel batch before aggregation.
///
/// # Errors
///
/// Propagates the first failing run (in submission order, after the whole
/// grid has executed).
pub fn t1_collector_power(
    runner: &mut Runner,
    heaps: &[u32],
) -> Result<T1CollectorPower, ExperimentError> {
    let _phase = runner.phase("t1");
    let benches = suite_benchmarks(Suite::SpecJvm98);
    let mut configs = Vec::new();
    for collector in CollectorKind::jikes_collectors() {
        for b in &benches {
            for &h in heaps {
                configs.push(ExperimentConfig::jikes(b.name, collector, h));
            }
        }
    }
    let mut runs = strict(runner.run_batch(&configs))?.into_iter();
    let mut rows = Vec::new();
    for collector in CollectorKind::jikes_collectors() {
        let mut energy = 0.0;
        let mut time = 0.0;
        for _ in &benches {
            for _ in heaps {
                let run = runs.next().expect("one result per cell");
                if let Some(gc) = run.report.component(ComponentId::Gc) {
                    energy += gc.energy.joules();
                    time += gc.time.seconds();
                }
            }
        }
        rows.push((collector, if time > 0.0 { energy / time } else { 0.0 }));
    }
    Ok(T1CollectorPower { rows })
}

impl fmt::Display for T1CollectorPower {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "T1: average GC power per collector (SpecJVM98)")?;
        writeln!(
            f,
            "    paper: GenCopy 12.8 W, SemiSpace 12.3 W, GenMS 12.7 W, MarkSweep 11.7 W"
        )?;
        let mut t = Table::new(vec!["collector".into(), "avg GC power (W)".into()]);
        for (c, w) in &self.rows {
            t.row(vec![c.to_string(), format!("{w:.2}")]);
        }
        write!(f, "{t}")
    }
}

/// T2 (§VI-C in-text): per-component IPC and L2 miss rate (GenCopy).
#[derive(Debug, Clone, Serialize)]
pub struct T2L2Ipc {
    /// `(component, suite, ipc, l2 miss rate)`.
    pub rows: Vec<(ComponentId, Suite, f64, f64)>,
}

/// Regenerate T2 for SpecJVM98 and DaCapo under GenCopy at `heaps`. Each
/// suite's benchmark × heap grid executes as one parallel batch.
///
/// # Errors
///
/// Propagates the first failing run (in submission order, after the whole
/// grid has executed).
pub fn t2_l2_ipc(runner: &mut Runner, heaps: &[u32]) -> Result<T2L2Ipc, ExperimentError> {
    let _phase = runner.phase("t2");
    let mut rows = Vec::new();
    for suite in [Suite::SpecJvm98, Suite::DaCapo] {
        let benches = suite_benchmarks(suite);
        let mut configs = Vec::new();
        for b in &benches {
            for &h in heaps {
                configs.push(ExperimentConfig::jikes(b.name, CollectorKind::GenCopy, h));
            }
        }
        let runs = strict(runner.run_batch(&configs))?;
        for comp in [
            ComponentId::Gc,
            ComponentId::ClassLoader,
            ComponentId::Application,
        ] {
            let mut ipc_num = 0.0;
            let mut cycles = 0.0;
            let mut l2m = 0.0;
            let mut l2a = 0.0;
            for run in &runs {
                {
                    if let Some(p) = run.report.component(comp) {
                        // Reconstruct sums from the profile's ratios and
                        // instruction counts.
                        if p.ipc > 0.0 {
                            let cyc = p.instructions as f64 / p.ipc;
                            ipc_num += p.instructions as f64;
                            cycles += cyc;
                        }
                        // Weight miss rate by instructions as a proxy for
                        // access volume.
                        l2m += p.l2_miss_rate * p.instructions as f64;
                        l2a += p.instructions as f64;
                    }
                }
            }
            rows.push((
                comp,
                suite,
                if cycles > 0.0 { ipc_num / cycles } else { 0.0 },
                if l2a > 0.0 { l2m / l2a } else { 0.0 },
            ));
        }
    }
    Ok(T2L2Ipc { rows })
}

impl fmt::Display for T2L2Ipc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "T2: per-component IPC and L2 miss rate (Jikes + GenCopy)"
        )?;
        writeln!(
            f,
            "    paper: GC misses 54%/56% (Spec/DaCapo), CL 12%/21%, App 11%; \
             IPC App ~0.8, GC ~0.55"
        )?;
        let mut t = Table::new(vec![
            "component".into(),
            "suite".into(),
            "IPC".into(),
            "L2 miss rate".into(),
        ]);
        for (c, s, ipc, miss) in &self.rows {
            t.row(vec![
                c.to_string(),
                s.to_string(),
                format!("{ipc:.2}"),
                pct(*miss),
            ]);
        }
        write!(f, "{t}")
    }
}

/// T3 (§VI-B in-text): memory energy as a share of total energy, per suite.
#[derive(Debug, Clone, Serialize)]
pub struct T3MemoryEnergy {
    /// `(suite, memory energy fraction)`.
    pub rows: Vec<(Suite, f64)>,
}

/// Regenerate T3 under Jikes + SemiSpace at `heaps`. Each suite's
/// benchmark × heap grid executes as one parallel batch.
///
/// # Errors
///
/// Propagates the first failing run (in submission order, after the whole
/// grid has executed).
pub fn t3_memory_energy(
    runner: &mut Runner,
    heaps: &[u32],
) -> Result<T3MemoryEnergy, ExperimentError> {
    let _phase = runner.phase("t3");
    let mut rows = Vec::new();
    for suite in [Suite::SpecJvm98, Suite::DaCapo, Suite::JavaGrande] {
        let mut configs = Vec::new();
        for b in suite_benchmarks(suite) {
            for &h in heaps {
                configs.push(ExperimentConfig::jikes(b.name, CollectorKind::SemiSpace, h));
            }
        }
        let mut mem = 0.0;
        let mut total = 0.0;
        for run in strict(runner.run_batch(&configs))? {
            mem += run.report.mem_energy.joules();
            total += run.report.total_energy.joules();
        }
        rows.push((suite, if total > 0.0 { mem / total } else { 0.0 }));
    }
    Ok(T3MemoryEnergy { rows })
}

impl fmt::Display for T3MemoryEnergy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "T3: main-memory energy share of total (Jikes + SemiSpace)"
        )?;
        writeln!(f, "    paper: ~7% SpecJVM98, ~5% DaCapo, ~8% Java Grande")?;
        let mut t = Table::new(vec!["suite".into(), "memory energy share".into()]);
        for (s, v) in &self.rows {
            t.row(vec![s.to_string(), pct(*v)]);
        }
        write!(f, "{t}")
    }
}

/// T4 (§VI-A/B in-text): the paper's headline numbers.
#[derive(Debug, Clone, Serialize)]
pub struct T4Headlines {
    /// Maximum JVM energy fraction and where it occurs (paper: 60%,
    /// `_213_javac` @ 32 MB).
    pub max_jvm_fraction: (String, u32, f64),
    /// Average GC fraction for SpecJVM98 at 32 MB and 128 MB (paper: 37% →
    /// 10%).
    pub spec_gc_32_vs_128: (f64, f64),
    /// Average GC fraction for DaCapo at 48 MB and 128 MB (paper: 32% →
    /// 11%).
    pub dacapo_gc_48_vs_128: (f64, f64),
    /// EDP improvement of GenMS over SemiSpace for `_213_javac` at 32 MB
    /// (paper: up to 70%).
    pub javac_genms_vs_semispace_32: f64,
    /// EDP advantage of SemiSpace over GenCopy for `_209_db` at 128 MB
    /// (paper: 5%).
    pub db_semispace_vs_gencopy_128: f64,
    /// EDP reduction from 32→48 MB under SemiSpace for `_213_javac`,
    /// `_227_mtrt`, `euler` (paper: 56%, 50%, 27%).
    pub semispace_32_to_48: [(String, f64); 3],
    /// Same transition under GenCopy (paper: 20%, 2%, 3%).
    pub gencopy_32_to_48: [(String, f64); 3],
    /// Average/maximum fractions of the small components under SemiSpace:
    /// (base avg, opt avg, opt max, CL avg, CL max); paper: <1%, 3%, 7%
    /// (`_222_mpegaudio`), 3%, 24% (`fop`).
    pub small_components: (f64, f64, f64, f64, f64),
}

/// Regenerate T4 from Figure 6/7 data.
///
/// # Errors
///
/// Propagates the first failing run.
pub fn t4_headlines(runner: &mut Runner) -> Result<T4Headlines, ExperimentError> {
    let _phase = runner.phase("t4");
    let fig6 = fig6(runner, &all_benchmark_names(), &P6_HEAPS_MB)?;
    let names: Vec<&str> = ["_213_javac", "_227_mtrt", "euler", "_209_db"].to_vec();
    let fig7 = fig7(runner, &names, &P6_HEAPS_MB)?;

    let frac = |r: &BreakdownRow, c: ComponentId| {
        r.fractions
            .iter()
            .find(|(x, _)| *x == c)
            .map_or(0.0, |(_, v)| *v)
    };

    // Max JVM fraction.
    let mut max_jvm = (String::new(), 0u32, 0.0f64);
    for r in &fig6.rows {
        let jvm: f64 = r.fractions.iter().map(|(_, v)| v).sum();
        if jvm > max_jvm.2 {
            max_jvm = (r.benchmark.clone(), r.heap_mb, jvm);
        }
    }

    let suite_avg_gc = |suite: Suite, heap: u32| -> f64 {
        let names: Vec<_> = suite_benchmarks(suite).iter().map(|b| b.name).collect();
        let vals: Vec<f64> = fig6
            .rows
            .iter()
            .filter(|r| r.heap_mb == heap && names.contains(&r.benchmark.as_str()))
            .map(|r| frac(r, ComponentId::Gc))
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };

    let edp = |bench: &str, col: CollectorKind, heap: u32| -> f64 {
        fig7.curve(bench, col)
            .and_then(|c| c.at(heap))
            .unwrap_or(f64::NAN)
    };
    let drop_pct = |a: f64, b: f64| (a - b) / a;

    let three = |col: CollectorKind| -> [(String, f64); 3] {
        ["_213_javac", "_227_mtrt", "euler"]
            .map(|n| (n.to_owned(), drop_pct(edp(n, col, 32), edp(n, col, 48))))
    };

    // Small components under SemiSpace across all bars.
    let avg = |c: ComponentId| -> f64 {
        fig6.rows.iter().map(|r| frac(r, c)).sum::<f64>() / fig6.rows.len() as f64
    };
    let max = |c: ComponentId| -> f64 { fig6.rows.iter().map(|r| frac(r, c)).fold(0.0, f64::max) };

    Ok(T4Headlines {
        max_jvm_fraction: max_jvm,
        spec_gc_32_vs_128: (
            suite_avg_gc(Suite::SpecJvm98, 32),
            suite_avg_gc(Suite::SpecJvm98, 128),
        ),
        dacapo_gc_48_vs_128: (
            suite_avg_gc(Suite::DaCapo, 48),
            suite_avg_gc(Suite::DaCapo, 128),
        ),
        javac_genms_vs_semispace_32: drop_pct(
            edp("_213_javac", CollectorKind::SemiSpace, 32),
            edp("_213_javac", CollectorKind::GenMs, 32),
        ),
        db_semispace_vs_gencopy_128: drop_pct(
            edp("_209_db", CollectorKind::GenCopy, 128),
            edp("_209_db", CollectorKind::SemiSpace, 128),
        ),
        semispace_32_to_48: three(CollectorKind::SemiSpace),
        gencopy_32_to_48: three(CollectorKind::GenCopy),
        small_components: (
            avg(ComponentId::BaseCompiler),
            avg(ComponentId::OptCompiler),
            max(ComponentId::OptCompiler),
            avg(ComponentId::ClassLoader),
            max(ComponentId::ClassLoader),
        ),
    })
}

impl fmt::Display for T4Headlines {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "T4: headline claims (measured vs paper)")?;
        let (b, h, v) = &self.max_jvm_fraction;
        writeln!(
            f,
            "  max JVM energy:        {} @ {}MB = {} (paper: _213_javac @32MB, 60%)",
            b,
            h,
            pct(*v)
        )?;
        writeln!(
            f,
            "  Spec GC 32->128MB:     {} -> {} (paper: 37% -> 10%)",
            pct(self.spec_gc_32_vs_128.0),
            pct(self.spec_gc_32_vs_128.1)
        )?;
        writeln!(
            f,
            "  DaCapo GC 48->128MB:   {} -> {} (paper: 32% -> 11%)",
            pct(self.dacapo_gc_48_vs_128.0),
            pct(self.dacapo_gc_48_vs_128.1)
        )?;
        writeln!(
            f,
            "  javac GenMS vs SS @32: {} EDP improvement (paper: up to 70%)",
            pct(self.javac_genms_vs_semispace_32)
        )?;
        writeln!(
            f,
            "  db SS vs GenCopy @128: {} EDP improvement (paper: 5%)",
            pct(self.db_semispace_vs_gencopy_128)
        )?;
        for ((n, ss), (_, gc)) in self.semispace_32_to_48.iter().zip(&self.gencopy_32_to_48) {
            writeln!(
                f,
                "  {n} 32->48MB EDP drop: SemiSpace {} vs GenCopy {}",
                pct(*ss),
                pct(*gc)
            )?;
        }
        let (ba, oa, om, ca, cm) = self.small_components;
        writeln!(
            f,
            "  base avg {} | opt avg {} max {} | CL avg {} max {}",
            pct(ba),
            pct(oa),
            pct(om),
            pct(ca),
            pct(cm)
        )?;
        writeln!(
            f,
            "  (paper: base <1%; opt 3% avg, 7% max; CL 3% avg, 24% max)"
        )
    }
}

/// T5 (§VI-D/E in-text): Kaffe component shares and PXA255 power.
#[derive(Debug, Clone, Serialize)]
pub struct T5Kaffe {
    /// P6 average fractions `(GC, CL, JIT)` (paper: 7%, 1%, <1%).
    pub p6_fractions: (f64, f64, f64),
    /// P6 average GC power in watts (paper: 12.8 W).
    pub p6_gc_power_w: f64,
    /// PXA255 average fractions `(GC, CL, JIT)` (paper: 5%, 18%, 5%).
    pub pxa_fractions: (f64, f64, f64),
    /// PXA255 average powers in watts `(GC, App, CL)` (paper: GC 270 mW,
    /// ~7% above the app; CL lowest).
    pub pxa_powers_w: (f64, f64, f64),
}

/// Regenerate T5 (`p6_heaps` for the P6 sweep, `pxa_heaps` for the board).
/// Both grids execute as one parallel batch each.
///
/// # Errors
///
/// Propagates the first failing run (in submission order, after the whole
/// grid has executed).
pub fn t5_kaffe(
    runner: &mut Runner,
    p6_heaps: &[u32],
    pxa_heaps: &[u32],
) -> Result<T5Kaffe, ExperimentError> {
    let _phase = runner.phase("t5");
    let mut p6_configs = Vec::new();
    for b in all_benchmarks() {
        for &h in p6_heaps {
            p6_configs.push(ExperimentConfig::kaffe(b.name, h));
        }
    }
    let mut pxa_configs = Vec::new();
    for b in pxa255_benchmarks() {
        for &h in pxa_heaps {
            pxa_configs.push(ExperimentConfig::kaffe_pxa(b.name, h));
        }
    }

    let mut p6 = [0.0f64; 3];
    let mut n = 0usize;
    let mut gc_energy = 0.0;
    let mut gc_time = 0.0;
    {
        for run in strict(runner.run_batch(&p6_configs))? {
            p6[0] += run.fraction(ComponentId::Gc);
            p6[1] += run.fraction(ComponentId::ClassLoader);
            p6[2] += run.fraction(ComponentId::JitCompiler);
            if let Some(gc) = run.report.component(ComponentId::Gc) {
                gc_energy += gc.energy.joules();
                gc_time += gc.time.seconds();
            }
            n += 1;
        }
    }
    let nf = n.max(1) as f64;

    let mut pxa = [0.0f64; 3];
    let mut powers = [(0.0f64, 0.0f64); 3]; // (energy, time) for GC, App, CL
    let mut m = 0usize;
    {
        for run in strict(runner.run_batch(&pxa_configs))? {
            pxa[0] += run.fraction(ComponentId::Gc);
            pxa[1] += run.fraction(ComponentId::ClassLoader);
            pxa[2] += run.fraction(ComponentId::JitCompiler);
            for (i, c) in [
                ComponentId::Gc,
                ComponentId::Application,
                ComponentId::ClassLoader,
            ]
            .into_iter()
            .enumerate()
            {
                if let Some(p) = run.report.component(c) {
                    powers[i].0 += p.energy.joules();
                    powers[i].1 += p.time.seconds();
                }
            }
            m += 1;
        }
    }
    let mf = m.max(1) as f64;
    let p = |i: usize| {
        if powers[i].1 > 0.0 {
            powers[i].0 / powers[i].1
        } else {
            0.0
        }
    };

    Ok(T5Kaffe {
        p6_fractions: (p6[0] / nf, p6[1] / nf, p6[2] / nf),
        p6_gc_power_w: if gc_time > 0.0 {
            gc_energy / gc_time
        } else {
            0.0
        },
        pxa_fractions: (pxa[0] / mf, pxa[1] / mf, pxa[2] / mf),
        pxa_powers_w: (p(0), p(1), p(2)),
    })
}

impl fmt::Display for T5Kaffe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "T5: Kaffe component shares and PXA255 power")?;
        writeln!(
            f,
            "  P6 avg fractions: GC {} CL {} JIT {} (paper: 7%, 1%, <1%)",
            pct(self.p6_fractions.0),
            pct(self.p6_fractions.1),
            pct(self.p6_fractions.2)
        )?;
        writeln!(
            f,
            "  P6 GC power: {:.2} W (paper: 12.8 W)",
            self.p6_gc_power_w
        )?;
        writeln!(
            f,
            "  PXA avg fractions: GC {} CL {} JIT {} (paper: 5%, 18%, 5%)",
            pct(self.pxa_fractions.0),
            pct(self.pxa_fractions.1),
            pct(self.pxa_fractions.2)
        )?;
        writeln!(
            f,
            "  PXA power: GC {:.0} mW, App {:.0} mW, CL {:.0} mW (paper: GC 270 mW, +7% over App, CL lowest)",
            1e3 * self.pxa_powers_w.0,
            1e3 * self.pxa_powers_w.1,
            1e3 * self.pxa_powers_w.2
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_lists_all_sixteen_benchmarks() {
        let f = fig5();
        assert_eq!(f.rows.len(), 16);
        let text = f.to_string();
        for name in ["_201_compress", "_213_javac", "fop", "euler", "search"] {
            assert!(text.contains(name), "missing {name}");
        }
        assert!(text.contains("SpecJVM98"));
        // Every benchmark allocates more than it keeps live.
        for (_, name, _, alloc, live) in &f.rows {
            assert!(alloc >= live, "{name}: alloc {alloc} < live {live}");
        }
    }

    #[test]
    fn edp_curve_lookup() {
        let curve = EdpCurve {
            benchmark: "_209_db".into(),
            collector: CollectorKind::SemiSpace,
            points: vec![(32, 1.5), (48, 1.0)],
        };
        assert_eq!(curve.at(32), Some(1.5));
        assert_eq!(curve.at(64), None);
        let fig = Fig7 {
            curves: vec![curve],
            failed: Vec::new(),
        };
        assert!(fig.curve("_209_db", CollectorKind::SemiSpace).is_some());
        assert!(fig.curve("_209_db", CollectorKind::GenMs).is_none());
        assert!(fig.to_string().contains("32MB"));
    }

    #[test]
    fn component_legend_orders_match_paper() {
        assert_eq!(JIKES_COMPONENTS[0], ComponentId::OptCompiler);
        assert_eq!(JIKES_COMPONENTS[3], ComponentId::Gc);
        assert_eq!(
            KAFFE_COMPONENTS,
            [
                ComponentId::Gc,
                ComponentId::ClassLoader,
                ComponentId::JitCompiler
            ]
        );
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(pct(0.5), " 50.0%");
        assert_eq!(pct(0.0314), "  3.1%");
    }
}
