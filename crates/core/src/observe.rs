//! The observer-effect sweep: measure what measurement costs.
//!
//! The paper's rig is transparent — probes happen "outside" the machine —
//! which leaves two questions it cannot answer: how much would the probes
//! perturb the system if they were real ([`ProbeSpec::nontransparent_at`]),
//! and how much per-component attribution error does the sampling window
//! hide (§IV-D quantization)? Both move with the sampling period, in
//! opposite directions: a shorter period shrinks the attribution-error
//! bound (fewer Joules per transition window) but pays more probe work per
//! second, while a longer period is nearly free and nearly blind.
//!
//! The [`ObserveEngine`] maps that trade-off empirically. Each cell runs
//! **transparent** and **non-transparent** at every period of a grid; per
//! (cell, period) point it extracts
//!
//! * `perturbation_ppm` — the total-energy observer effect,
//!   `(E_nt − E_t) / E_t`, in parts per million;
//! * `misattr_ppm` — the transparent run's attribution-error bound,
//!   transition-window energy over total energy;
//! * `share_shift_ppm` — the largest per-component energy-share movement
//!   between the two modes, the attribution error the probes *cause*;
//!
//! and the report recommends the period minimizing the worst of the blind
//! spot and the perturbation. Everything rides the deterministic runner and
//! the persistent cache (the probe spec is part of the cache key, so
//! perturbed entries never alias clean ones), and the whole sweep is
//! byte-identical for any `--jobs N`.

use std::collections::BTreeSet;
use std::sync::Arc;

use vmprobe_power::{ComponentId, ProbeSpec};
use vmprobe_telemetry::{CounterId, HistId, Telemetry};

use crate::cache::ExperimentCache;
use crate::experiment::{ExperimentConfig, RunSummary};
use crate::json::JsonObj;
use crate::runner::SupervisedRunner;
use crate::table::Table;

/// Hard cap on the probe-period grid: bounds every sweep (CLI and the
/// serving daemon's `op:"observe"`) at `cells × MAX_OBSERVE_PERIODS × 2`
/// runs.
pub const MAX_OBSERVE_PERIODS: usize = 8;

/// Smallest accepted probe period: below ~1 µs the ISR would outrun its
/// own sampling window on the PXA board.
pub const MIN_PERIOD_NS: u64 = 1_000;

/// Largest accepted probe period: 100 ms is already 100× blinder than the
/// paper's coarsest (10 ms PXA255) HPM timer.
pub const MAX_PERIOD_NS: u64 = 100_000_000;

/// Parse one period literal: an integer with a `ns`, `us` or `ms` suffix.
fn parse_period(s: &str) -> Result<u64, String> {
    let s = s.trim();
    let (digits, scale) = if let Some(d) = s.strip_suffix("ns") {
        (d, 1u64)
    } else if let Some(d) = s.strip_suffix("us") {
        (d, 1_000)
    } else if let Some(d) = s.strip_suffix("ms") {
        (d, 1_000_000)
    } else {
        return Err(format!("period '{s}' needs a ns/us/ms suffix"));
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("period '{s}' is not an integer"))?;
    let ns = n
        .checked_mul(scale)
        .ok_or_else(|| format!("period '{s}' overflows"))?;
    if !(MIN_PERIOD_NS..=MAX_PERIOD_NS).contains(&ns) {
        return Err(format!(
            "period '{s}' outside [{MIN_PERIOD_NS}ns, {MAX_PERIOD_NS}ns]"
        ));
    }
    Ok(ns)
}

/// Parse a probe-period grid spec: comma-separated terms, each a single
/// period (`40us`) or a decade range (`4us..4ms`, expanded ×10 from the
/// low end, end included). Duplicates collapse and the grid comes back
/// sorted ascending.
///
/// # Errors
///
/// A rendered message on bad syntax, an inverted range, out-of-bounds
/// periods, or a grid larger than [`MAX_OBSERVE_PERIODS`].
pub fn parse_period_grid(spec: &str) -> Result<Vec<u64>, String> {
    let mut grid = BTreeSet::new();
    for term in spec.split(',') {
        let term = term.trim();
        if term.is_empty() {
            return Err(format!("empty term in period grid '{spec}'"));
        }
        if let Some((lo, hi)) = term.split_once("..") {
            let (lo, hi) = (parse_period(lo)?, parse_period(hi)?);
            if lo > hi {
                return Err(format!("inverted range '{term}'"));
            }
            let mut p = lo;
            loop {
                grid.insert(p);
                match p.checked_mul(10) {
                    Some(next) if next <= hi => p = next,
                    _ => break,
                }
            }
            grid.insert(hi);
        } else {
            grid.insert(parse_period(term)?);
        }
    }
    if grid.len() > MAX_OBSERVE_PERIODS {
        return Err(format!(
            "period grid has {} points, cap is {MAX_OBSERVE_PERIODS}",
            grid.len()
        ));
    }
    Ok(grid.into_iter().collect())
}

/// Render a period for humans: `4us`, `400us`, `4ms`, falling back to
/// nanoseconds when it is not a whole number of the larger unit.
pub fn period_label(ns: u64) -> String {
    if ns.is_multiple_of(1_000_000) {
        format!("{}ms", ns / 1_000_000)
    } else if ns.is_multiple_of(1_000) {
        format!("{}us", ns / 1_000)
    } else {
        format!("{ns}ns")
    }
}

/// One (cell, period) point of the sweep: the transparent and
/// non-transparent runs side by side.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservePoint {
    /// The scenario cell.
    pub cell: ExperimentConfig,
    /// Probe period, in nanoseconds.
    pub period_ns: u64,
    /// Transparent-mode total energy, joules.
    pub energy_t_j: f64,
    /// Non-transparent-mode total energy, joules.
    pub energy_nt_j: f64,
    /// Cycles the non-transparent run charged directly to probes.
    pub probe_cycles: u64,
    /// Total-energy observer effect, `(E_nt − E_t)/E_t`, in ppm.
    pub perturbation_ppm: f64,
    /// Transparent-mode attribution-error bound (transition-window energy
    /// over total energy), in ppm.
    pub misattr_ppm: f64,
    /// Largest per-component energy-share shift between the modes, in ppm.
    pub share_shift_ppm: f64,
}

impl ObservePoint {
    fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.str("benchmark", &self.cell.benchmark)
            .str("vm", &self.cell.vm.to_string())
            .u64("heap_mb", u64::from(self.cell.heap_mb))
            .u64("period_ns", self.period_ns)
            .f64("energy_t_j", self.energy_t_j)
            .f64("energy_nt_j", self.energy_nt_j)
            .u64("probe_cycles", self.probe_cycles)
            .f64("perturbation_ppm", self.perturbation_ppm)
            .f64("misattr_ppm", self.misattr_ppm)
            .f64("share_shift_ppm", self.share_shift_ppm);
        o.finish()
    }
}

/// Per-period aggregate across every cell of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PeriodSummary {
    /// Probe period, in nanoseconds.
    pub period_ns: u64,
    /// Mean perturbation across cells, ppm.
    pub mean_perturbation_ppm: f64,
    /// Worst-cell perturbation, ppm.
    pub max_perturbation_ppm: f64,
    /// Mean attribution-error bound across cells, ppm.
    pub mean_misattr_ppm: f64,
    /// Worst-cell attribution-error bound, ppm.
    pub max_misattr_ppm: f64,
    /// Worst-cell per-component share shift, ppm.
    pub max_share_shift_ppm: f64,
}

impl PeriodSummary {
    /// The quantity the recommendation minimizes: the worse of the mean
    /// blind spot and the mean perturbation.
    pub fn score_ppm(&self) -> f64 {
        self.mean_misattr_ppm.max(self.mean_perturbation_ppm)
    }
}

/// The sweep's full outcome: every point, the per-period aggregates and
/// the recommended period.
#[derive(Debug, Clone, PartialEq)]
pub struct ObserveReport {
    /// Scenario cells swept.
    pub cells: usize,
    /// The period grid, ascending, in nanoseconds.
    pub periods: Vec<u64>,
    /// One point per (cell, period), cell-major in submission order.
    pub points: Vec<ObservePoint>,
    /// One aggregate per period, grid order.
    pub summaries: Vec<PeriodSummary>,
    /// The period with the lowest [`PeriodSummary::score_ppm`] (ties go to
    /// the shorter period), in nanoseconds.
    pub recommended_ns: u64,
}

impl ObserveReport {
    /// Render the report as schema-stamped JSON (raw energies included so
    /// the CI gate can compare totals without reparsing tables).
    pub fn to_json(&self) -> String {
        let summaries = self.summaries.iter().map(|s| {
            let mut o = JsonObj::new();
            o.u64("period_ns", s.period_ns)
                .f64("mean_perturbation_ppm", s.mean_perturbation_ppm)
                .f64("max_perturbation_ppm", s.max_perturbation_ppm)
                .f64("mean_misattr_ppm", s.mean_misattr_ppm)
                .f64("max_misattr_ppm", s.max_misattr_ppm)
                .f64("max_share_shift_ppm", s.max_share_shift_ppm)
                .f64("score_ppm", s.score_ppm());
            o.finish()
        });
        let mut o = JsonObj::new();
        o.schema_version()
            .str("kind", "observe_report")
            .u64("cells", self.cells as u64)
            .array("periods_ns", self.periods.iter().map(u64::to_string))
            .u64("recommended_ns", self.recommended_ns)
            .array("summaries", summaries)
            .array("points", self.points.iter().map(ObservePoint::to_json));
        o.finish()
    }
}

impl std::fmt::Display for ObserveReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "observer-effect sweep: {} cells x {} periods x 2 modes",
            self.cells,
            self.periods.len()
        )?;
        writeln!(f)?;

        // Figure set: one per-cell panel, points in period order.
        let mut seen = Vec::new();
        for point in &self.points {
            if !seen.contains(&&point.cell) {
                seen.push(&point.cell);
            }
        }
        for cell in seen {
            writeln!(f, "[observe] {cell}")?;
            let mut t = Table::new(vec![
                "period".into(),
                "E_t (J)".into(),
                "E_nt (J)".into(),
                "perturb (ppm)".into(),
                "misattr (ppm)".into(),
                "share shift (ppm)".into(),
                "probe cycles".into(),
            ]);
            for p in self.points.iter().filter(|p| p.cell == *cell) {
                t.row(vec![
                    period_label(p.period_ns),
                    format!("{:.6}", p.energy_t_j),
                    format!("{:.6}", p.energy_nt_j),
                    format!("{:.1}", p.perturbation_ppm),
                    format!("{:.1}", p.misattr_ppm),
                    format!("{:.1}", p.share_shift_ppm),
                    p.probe_cycles.to_string(),
                ]);
            }
            writeln!(f, "{t}")?;
        }

        writeln!(f, "[observe] recommendation")?;
        let mut t = Table::new(vec![
            "period".into(),
            "mean perturb (ppm)".into(),
            "max perturb (ppm)".into(),
            "mean misattr (ppm)".into(),
            "max misattr (ppm)".into(),
            "score (ppm)".into(),
            "verdict".into(),
        ]);
        for s in &self.summaries {
            t.row(vec![
                period_label(s.period_ns),
                format!("{:.1}", s.mean_perturbation_ppm),
                format!("{:.1}", s.max_perturbation_ppm),
                format!("{:.1}", s.mean_misattr_ppm),
                format!("{:.1}", s.max_misattr_ppm),
                format!("{:.1}", s.score_ppm()),
                if s.period_ns == self.recommended_ns {
                    "<= recommended".into()
                } else {
                    String::new()
                },
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "recommended probe period: {} (minimizes max of attribution blind spot and observer perturbation)",
            period_label(self.recommended_ns)
        )
    }
}

/// The observer-effect sweep engine (see the module docs).
#[derive(Debug)]
pub struct ObserveEngine {
    periods: Vec<u64>,
    jobs: usize,
    telemetry: Telemetry,
    cache: Option<Arc<ExperimentCache>>,
}

impl ObserveEngine {
    /// An engine sweeping `periods` (nanoseconds; deduplicated and
    /// sorted), one worker, disabled telemetry, no cache.
    ///
    /// # Panics
    ///
    /// When `periods` is empty or larger than [`MAX_OBSERVE_PERIODS`] —
    /// callers validate grids via [`parse_period_grid`] first.
    pub fn new(periods: Vec<u64>) -> Self {
        let periods: Vec<u64> = periods
            .into_iter()
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        assert!(
            !periods.is_empty(),
            "observe sweep needs at least one period"
        );
        assert!(
            periods.len() <= MAX_OBSERVE_PERIODS,
            "observe grid exceeds MAX_OBSERVE_PERIODS"
        );
        Self {
            periods,
            jobs: 1,
            telemetry: Telemetry::disabled(),
            cache: None,
        }
    }

    /// Worker threads for the sweep (reports are byte-identical for any
    /// value).
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Record observe counters/histograms (and the underlying sweep
    /// metrics) into `telemetry`.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Layer a persistent cache under the sweep. Probe specs are part of
    /// each entry's key, so transparent and charged runs never alias.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<ExperimentCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The period grid the engine will sweep, ascending.
    pub fn periods(&self) -> &[u64] {
        &self.periods
    }

    /// Sweep `cells` across the period grid in both modes and assemble
    /// the report.
    ///
    /// # Errors
    ///
    /// A rendered [`crate::ExperimentError`] with its cell identity when
    /// any run fails — partial sweeps would bias the aggregates.
    pub fn run(&self, cells: &[ExperimentConfig]) -> Result<ObserveReport, String> {
        self.telemetry.count(CounterId::ObserveSweeps, 1);
        let mut runner = SupervisedRunner::new()
            .jobs(self.jobs)
            .contain_panics(true)
            .with_telemetry(self.telemetry.clone());
        if let Some(cache) = &self.cache {
            runner = runner.with_cache(Arc::clone(cache));
        }

        // Cell-major, period-minor, transparent before charged: one batch,
        // so the whole grid shares the worker pool.
        let batch: Vec<ExperimentConfig> = cells
            .iter()
            .flat_map(|cell| {
                self.periods.iter().flat_map(|&p| {
                    [
                        cell.clone().with_probe(ProbeSpec::transparent_at(p)),
                        cell.clone().with_probe(ProbeSpec::nontransparent_at(p)),
                    ]
                })
            })
            .collect();
        let results = runner.run_batch(&batch);

        let mut it = results.into_iter();
        let mut next = |cfg: &ExperimentConfig| -> Result<Arc<RunSummary>, String> {
            it.next()
                .expect("one result per submitted config")
                .map_err(|e| format!("{cfg}: {e}"))
        };

        let mut points = Vec::with_capacity(cells.len() * self.periods.len());
        for cell in cells {
            for &period_ns in &self.periods {
                let t = next(cell)?;
                let nt = next(cell)?;
                self.telemetry.count(CounterId::ObservePoints, 2);
                let us = period_ns / 1_000;
                self.telemetry.observe(HistId::ProbePeriodUs, us);
                self.telemetry.observe(HistId::ProbePeriodUs, us);
                points.push(Self::point(cell, period_ns, &t, &nt));
            }
        }

        let summaries: Vec<PeriodSummary> = self
            .periods
            .iter()
            .map(|&period_ns| {
                let at: Vec<&ObservePoint> =
                    points.iter().filter(|p| p.period_ns == period_ns).collect();
                let n = at.len().max(1) as f64;
                let mean =
                    |f: &dyn Fn(&ObservePoint) -> f64| at.iter().map(|p| f(p)).sum::<f64>() / n;
                let max = |f: &dyn Fn(&ObservePoint) -> f64| {
                    at.iter().map(|p| f(p)).fold(0.0f64, f64::max)
                };
                PeriodSummary {
                    period_ns,
                    mean_perturbation_ppm: mean(&|p| p.perturbation_ppm),
                    max_perturbation_ppm: max(&|p| p.perturbation_ppm),
                    mean_misattr_ppm: mean(&|p| p.misattr_ppm),
                    max_misattr_ppm: max(&|p| p.misattr_ppm),
                    max_share_shift_ppm: max(&|p| p.share_shift_ppm),
                }
            })
            .collect();

        // Ascending grid + strict `<` keep ties on the shorter period.
        let recommended_ns = summaries
            .iter()
            .fold(None::<&PeriodSummary>, |best, s| match best {
                Some(b) if b.score_ppm() <= s.score_ppm() => Some(b),
                _ => Some(s),
            })
            .expect("at least one period")
            .period_ns;

        Ok(ObserveReport {
            cells: cells.len(),
            periods: self.periods.clone(),
            points,
            summaries,
            recommended_ns,
        })
    }

    /// Extract one point from a transparent/charged run pair.
    fn point(
        cell: &ExperimentConfig,
        period_ns: u64,
        t: &RunSummary,
        nt: &RunSummary,
    ) -> ObservePoint {
        let e_t = t.report.total_energy.joules();
        let e_nt = nt.report.total_energy.joules();
        let perturbation_ppm = if e_t > 0.0 {
            (e_nt - e_t) / e_t * 1e6
        } else {
            0.0
        };
        let misattr_ppm = t.report.probe.attribution_error_bound(e_t) * 1e6;

        let share = |run: &RunSummary, c: ComponentId| -> f64 {
            let total = run.report.total_energy.joules();
            if total <= 0.0 {
                return 0.0;
            }
            run.report
                .components
                .get(&c)
                .map_or(0.0, |p| (p.energy.joules() + p.mem_energy.joules()) / total)
        };
        let touched: BTreeSet<ComponentId> = t
            .report
            .components
            .keys()
            .chain(nt.report.components.keys())
            .copied()
            .collect();
        let share_shift_ppm = touched
            .iter()
            .map(|&c| (share(nt, c) - share(t, c)).abs() * 1e6)
            .fold(0.0f64, f64::max);

        ObservePoint {
            cell: cell.clone(),
            period_ns,
            energy_t_j: e_t,
            energy_nt_j: e_nt,
            probe_cycles: nt.report.probe.cycles_paid,
            perturbation_ppm,
            misattr_ppm,
            share_shift_ppm,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmprobe_heap::CollectorKind;
    use vmprobe_workloads::InputScale;

    #[test]
    fn period_literals_parse_with_units() {
        assert_eq!(parse_period("4us").unwrap(), 4_000);
        assert_eq!(parse_period("4ms").unwrap(), 4_000_000);
        assert_eq!(parse_period("40000ns").unwrap(), 40_000);
        assert!(parse_period("4").is_err(), "suffix required");
        assert!(parse_period("4s").is_err());
        assert!(parse_period("999ns").is_err(), "below floor");
        assert!(parse_period("101ms").is_err(), "above ceiling");
        assert!(parse_period("4.5us").is_err(), "integers only");
    }

    #[test]
    fn decade_range_expands_times_ten() {
        assert_eq!(
            parse_period_grid("4us..4ms").unwrap(),
            vec![4_000, 40_000, 400_000, 4_000_000]
        );
        // A non-decade end is included as its own point.
        assert_eq!(
            parse_period_grid("4us..5ms").unwrap(),
            vec![4_000, 40_000, 400_000, 4_000_000, 5_000_000]
        );
        assert_eq!(parse_period_grid("40us").unwrap(), vec![40_000]);
        assert_eq!(
            parse_period_grid("40us,4us,40us").unwrap(),
            vec![4_000, 40_000],
            "duplicates collapse, sorted ascending"
        );
        assert!(parse_period_grid("4ms..4us").is_err(), "inverted");
        assert!(parse_period_grid("").is_err());
        assert_eq!(
            parse_period_grid("1us..100ms").unwrap().len(),
            6,
            "the full legal span is still under the cap"
        );
        assert!(
            parse_period_grid("1us,2us,3us,4us,5us,6us,7us,8us,9us").is_err(),
            "nine points blow the cap"
        );
    }

    #[test]
    fn period_labels_pick_the_largest_whole_unit() {
        assert_eq!(period_label(4_000), "4us");
        assert_eq!(period_label(4_000_000), "4ms");
        assert_eq!(period_label(1_500), "1500ns");
        assert_eq!(period_label(400_000), "400us");
    }

    fn quick_cell() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::jikes("search", CollectorKind::SemiSpace, 32);
        cfg.scale = InputScale::Reduced;
        cfg
    }

    #[test]
    fn sweep_reports_positive_perturbation_and_recommends_a_grid_period() {
        // Periods shorter than the (reduced-scale) run: a grid point
        // longer than the run samples nothing and reads 0 J in both modes.
        let engine = ObserveEngine::new(vec![4_000, 400_000]);
        let report = engine.run(&[quick_cell()]).expect("sweep runs");
        assert_eq!(report.cells, 1);
        assert_eq!(report.points.len(), 2);
        assert!(report.periods.contains(&report.recommended_ns));
        for p in &report.points {
            assert!(
                p.energy_nt_j > p.energy_t_j,
                "charged probes must raise total energy at {}",
                period_label(p.period_ns)
            );
            assert!(p.perturbation_ppm > 0.0);
            assert!(p.probe_cycles > 0);
        }
        // Faster sampling pays more probe work.
        assert!(report.points[0].perturbation_ppm > report.points[1].perturbation_ppm);
        let json = report.to_json();
        assert!(json.contains("\"kind\":\"observe_report\""));
        assert!(json.contains("\"recommended_ns\":"));
        let text = report.to_string();
        assert!(text.contains("recommended probe period:"));
        assert!(text.contains("<= recommended"));
    }

    #[test]
    fn sweep_is_jobs_independent_and_counts_points() {
        let t1 = Telemetry::recording();
        let a = ObserveEngine::new(vec![40_000, 400_000])
            .with_telemetry(t1.clone())
            .run(&[quick_cell()])
            .expect("jobs=1");
        let b = ObserveEngine::new(vec![40_000, 400_000])
            .jobs(8)
            .run(&[quick_cell()])
            .expect("jobs=8");
        assert_eq!(a.to_json(), b.to_json(), "byte-identical across jobs");
        assert_eq!(t1.counter(CounterId::ObserveSweeps), 1);
        assert_eq!(t1.counter(CounterId::ObservePoints), 4);
        assert!(t1.counter(CounterId::ProbeCyclesPaid) > 0);
    }
}
