//! Experiment configuration and execution.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};
use vmprobe_heap::{CollectorKind, GcStats};
use vmprobe_platform::PlatformKind;
use vmprobe_power::{ComponentId, DetRng, FaultPlan, PowerSample, ProbeSpec, Report};
use vmprobe_vm::{CompilerStats, Vm, VmConfig, VmError, VmStats};
use vmprobe_workloads::{benchmark, InputScale};

use crate::scale::heap_bytes;

/// Which virtual machine an experiment runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VmChoice {
    /// Jikes RVM with the given MMTk collector.
    Jikes(CollectorKind),
    /// Kaffe (JIT + incremental conservative mark-sweep).
    Kaffe,
}

impl fmt::Display for VmChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmChoice::Jikes(c) => write!(f, "Jikes/{c}"),
            VmChoice::Kaffe => write!(f, "Kaffe"),
        }
    }
}

/// One point in the paper's experimental space.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Benchmark name (see [`vmprobe_workloads::all_benchmarks`]).
    pub benchmark: String,
    /// VM and collector.
    pub vm: VmChoice,
    /// Heap size as a paper label in MB (scaled internally).
    pub heap_mb: u32,
    /// Hardware platform.
    pub platform: PlatformKind,
    /// Input data-set scale.
    pub scale: InputScale,
    /// Record the full power trace (needed for the thermal figure).
    pub trace_power: bool,
    /// Record component spans on the virtual cycle clock (telemetry
    /// `--trace-out`). Observation only: the report is bit-identical
    /// with this on or off, and derived fault streams ignore it
    /// ([`Self::fault_key`]).
    pub record_spans: bool,
    /// Run the load-time verification tier (`--no-verify` clears it).
    /// Verification is host-side and charges zero simulated cycles, so
    /// accepted runs are bit-identical either way; like
    /// [`Self::record_spans`] it is excluded from [`Self::key`] and
    /// [`Self::fault_key`], and it is not persisted in cache entries
    /// (restored configurations always read `true`).
    pub verify: bool,
    /// Measurement mode: DAQ sampling period and probe transparency
    /// (`--observe-cost`). The default is the classic free-probes rig;
    /// any other value re-times or perturbs the measurement, so non-default
    /// specs mark [`Self::key`] (but never [`Self::fault_key`]: observing
    /// differently must not reseed injected-fault streams).
    #[serde(default)]
    pub probe: ProbeSpec,
}

impl ExperimentConfig {
    /// A Jikes experiment on the P6 board with the full data set.
    pub fn jikes(benchmark: &str, collector: CollectorKind, heap_mb: u32) -> Self {
        Self {
            benchmark: benchmark.to_owned(),
            vm: VmChoice::Jikes(collector),
            heap_mb,
            platform: PlatformKind::PentiumM,
            scale: InputScale::Full,
            trace_power: false,
            record_spans: false,
            verify: true,
            probe: ProbeSpec::default(),
        }
    }

    /// A Kaffe experiment on the P6 board with the full data set.
    pub fn kaffe(benchmark: &str, heap_mb: u32) -> Self {
        Self {
            benchmark: benchmark.to_owned(),
            vm: VmChoice::Kaffe,
            heap_mb,
            platform: PlatformKind::PentiumM,
            scale: InputScale::Full,
            trace_power: false,
            record_spans: false,
            verify: true,
            probe: ProbeSpec::default(),
        }
    }

    /// A Kaffe experiment on the DBPXA255 board with the reduced (`-s10`)
    /// data set, as in the paper's Section VI-E.
    pub fn kaffe_pxa(benchmark: &str, heap_mb: u32) -> Self {
        Self {
            benchmark: benchmark.to_owned(),
            vm: VmChoice::Kaffe,
            heap_mb,
            platform: PlatformKind::Pxa255,
            scale: InputScale::Reduced,
            trace_power: false,
            record_spans: false,
            verify: true,
            probe: ProbeSpec::default(),
        }
    }

    /// Enable power-trace recording.
    pub fn with_trace(mut self) -> Self {
        self.trace_power = true;
        self
    }

    /// Enable virtual-clock component span recording.
    pub fn with_spans(mut self) -> Self {
        self.record_spans = true;
        self
    }

    /// Disable the load-time verification tier (the `--no-verify`
    /// escape hatch).
    pub fn without_verify(mut self) -> Self {
        self.verify = false;
        self
    }

    /// Select the measurement mode (observer-effect studies). Non-default
    /// specs mark [`Self::key`], so perturbed runs never share cache
    /// entries with the classic rig.
    pub fn with_probe(mut self, probe: ProbeSpec) -> Self {
        self.probe = probe;
        self
    }

    /// Derive this cell's fault plan from a sweep-level master plan: the
    /// plan's parameters are kept, but the seed becomes an independent
    /// deterministic stream keyed by the master seed and [`Self::key`].
    ///
    /// This is what makes parallel sweeps replayable: a cell's injected
    /// faults depend only on (master seed, cell identity), never on how
    /// many other cells ran, in what order, or on which worker thread.
    /// The identity hashed here is [`Self::fault_key`], which excludes
    /// observation-only switches, so attaching `--trace-out` or
    /// `--telemetry-overhead` to a faulted sweep injects exactly the
    /// faults a bare run would. Plans that inject nothing pass through
    /// untouched.
    pub fn derive_plan(&self, master: FaultPlan) -> FaultPlan {
        if master.is_none() {
            return master;
        }
        let mut stream = DetRng::new(master.seed).derive(&self.fault_key());
        master.with_seed(stream.next_u64())
    }

    /// Span-agnostic cell identity: every axis that shapes the simulated
    /// run, excluding pure-observation switches like
    /// [`Self::record_spans`]. This is what [`Self::derive_plan`] hashes,
    /// so injected-fault streams are bit-identical with span recording on
    /// or off — and bit-identical to pre-telemetry builds.
    pub fn fault_key(&self) -> String {
        format!(
            "{}|{}|{}|{:?}|{:?}|{}",
            self.benchmark, self.vm, self.heap_mb, self.platform, self.scale, self.trace_power
        )
    }

    /// Unique cache key: [`Self::fault_key`] plus a `|spans` marker when
    /// span recording is on, so a memo never serves a span-free summary
    /// to a span-requesting caller, plus a `|probe:…` marker for
    /// non-default measurement modes, so perturbed summaries never shadow
    /// the classic rig's. Keys of span-free default-probe configurations
    /// are bit-identical to what they were before either layer existed.
    pub fn key(&self) -> String {
        let spans = if self.record_spans { "|spans" } else { "" };
        let probe = if self.probe == ProbeSpec::default() {
            String::new()
        } else {
            format!("|{}", self.probe.key_marker())
        };
        format!("{}{}{}", self.fault_key(), spans, probe)
    }

    fn vm_config(&self) -> VmConfig {
        let heap = heap_bytes(self.heap_mb);
        let base = match self.vm {
            VmChoice::Jikes(c) => VmConfig::jikes(c, heap),
            VmChoice::Kaffe => VmConfig::kaffe(heap),
        };
        base.platform(self.platform)
            .trace_power(self.trace_power)
            .record_spans(self.record_spans)
            .verify(self.verify)
            .probe(self.probe)
            // Engine selection, not an experiment axis: the register and
            // stack engines are bit-identical by contract, so this is
            // deliberately absent from `key()`/`fault_key()` — cached
            // summaries are valid for both. The env escape hatch exists
            // for A/B wall-clock benching and the CI golden gate.
            .rir(std::env::var_os("VMPROBE_STACK_ENGINE").is_none())
    }

    /// Execute the experiment without fault injection.
    ///
    /// # Errors
    ///
    /// [`ExperimentError::UnknownBenchmark`] for names not in the registry;
    /// [`ExperimentError::Vm`] when the run faults (most commonly
    /// out-of-memory when the heap label is too small for the workload).
    pub fn run(&self) -> Result<RunSummary, ExperimentError> {
        self.run_with_faults(FaultPlan::none())
    }

    /// Execute the experiment under a fault plan: the DAQ, performance
    /// monitor and VM inject the plan's faults deterministically, and the
    /// summary's report carries the fault ledger plus clean ground truth.
    ///
    /// # Errors
    ///
    /// As [`ExperimentConfig::run`], plus [`ExperimentError::Vm`] wrapping
    /// the plan's own forced faults (`InjectedOom`, `StepBudgetExhausted`)
    /// and typed heap-configuration rejections.
    pub fn run_with_faults(&self, faults: FaultPlan) -> Result<RunSummary, ExperimentError> {
        let bench = benchmark(&self.benchmark)
            .ok_or_else(|| ExperimentError::UnknownBenchmark(self.benchmark.clone()))?;
        let program = bench.build(self.scale);
        let vm_err = |e: VmError| ExperimentError::Vm {
            config: Box::new(self.clone()),
            source: e,
        };
        let vm = Vm::try_new(program, self.vm_config().faults(faults)).map_err(vm_err)?;
        let out = vm.run().map_err(vm_err)?;
        Ok(RunSummary {
            config: self.clone(),
            result_checksum: out.result.map(|v| v.as_i()),
            report: out.report,
            gc: out.gc,
            vm: out.vm,
            compiler: out.compiler,
            power_trace: out.power_trace,
            total_alloc_bytes: out.total_alloc_bytes,
            live_bytes_end: out.live_bytes_end,
            spans: out.spans,
        })
    }
}

impl fmt::Display for ExperimentConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {} @ {} MB ({:?}, {:?})",
            self.benchmark, self.vm, self.heap_mb, self.platform, self.scale
        )
    }
}

/// Why an experiment failed.
///
/// `Clone` so the supervised runner can cache negative results and replay
/// them without re-executing the failing configuration.
#[derive(Debug, Clone)]
pub enum ExperimentError {
    /// The benchmark name is not registered.
    UnknownBenchmark(String),
    /// The VM faulted.
    Vm {
        /// The failing configuration.
        config: Box<ExperimentConfig>,
        /// The underlying fault.
        source: VmError,
    },
    /// The configuration exceeded its retry budget and was quarantined; the
    /// runner refuses to execute it again.
    Quarantined {
        /// The quarantined configuration.
        config: Box<ExperimentConfig>,
        /// How many attempts were made before quarantine.
        attempts: u32,
        /// Rendered form of the last underlying error.
        last_error: String,
    },
    /// The run panicked and the runner contained it (serving mode): the
    /// panic was caught on the worker and converted to this typed error
    /// instead of aborting the batch or killing the worker thread.
    Panicked {
        /// The panicking configuration.
        config: Box<ExperimentConfig>,
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::UnknownBenchmark(n) => write!(f, "unknown benchmark '{n}'"),
            ExperimentError::Vm { config, source } => {
                write!(f, "experiment {config} failed: {source}")
            }
            ExperimentError::Quarantined {
                config,
                attempts,
                last_error,
            } => write!(
                f,
                "experiment {config} quarantined after {attempts} attempts (last error: {last_error})"
            ),
            ExperimentError::Panicked { config, message } => {
                write!(f, "experiment {config} panicked: {message}")
            }
        }
    }
}

impl Error for ExperimentError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExperimentError::Vm { source, .. } => Some(source),
            ExperimentError::UnknownBenchmark(_)
            | ExperimentError::Quarantined { .. }
            | ExperimentError::Panicked { .. } => None,
        }
    }
}

/// Everything one run produced.
#[derive(Debug, Clone, Serialize)]
pub struct RunSummary {
    /// The configuration that ran.
    pub config: ExperimentConfig,
    /// Integer checksum returned by the benchmark's entry method (GC and
    /// platform transparency: identical across all configurations of the
    /// same benchmark and input scale).
    pub result_checksum: Option<i64>,
    /// Per-component measurement report.
    pub report: Report,
    /// Collector statistics.
    pub gc: GcStats,
    /// Runtime statistics.
    pub vm: VmStats,
    /// Compilation statistics.
    pub compiler: CompilerStats,
    /// Power trace if requested.
    pub power_trace: Option<Vec<PowerSample>>,
    /// Total allocation volume in simulated bytes.
    pub total_alloc_bytes: u64,
    /// Live bytes at exit.
    pub live_bytes_end: u64,
    /// Virtual-clock component span trace when
    /// [`ExperimentConfig::record_spans`] was set.
    pub spans: Option<vmprobe_telemetry::SpanTrace>,
}

impl RunSummary {
    /// CPU-energy fraction for a component (0 when it never ran).
    pub fn fraction(&self, c: ComponentId) -> f64 {
        self.report.energy_fraction(c)
    }

    /// The paper's energy-delay product in J·s (total energy × runtime).
    pub fn edp(&self) -> f64 {
        self.report.edp.joule_seconds()
    }

    /// Run duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.report.duration.seconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_benchmark_is_an_error() {
        let cfg = ExperimentConfig::jikes("_999_nope", CollectorKind::SemiSpace, 32);
        assert!(matches!(
            cfg.run(),
            Err(ExperimentError::UnknownBenchmark(_))
        ));
    }

    #[test]
    fn derived_plans_are_stable_per_cell_and_distinct_across_cells() {
        let master = FaultPlan::parse("drop=0.1,seed=7").unwrap();
        let a = ExperimentConfig::jikes("_209_db", CollectorKind::SemiSpace, 32);
        let b = ExperimentConfig::jikes("_209_db", CollectorKind::SemiSpace, 48);
        assert_eq!(a.derive_plan(master), a.derive_plan(master));
        assert_ne!(a.derive_plan(master).seed, b.derive_plan(master).seed);
        assert_eq!(a.derive_plan(master).drop_sample, 0.1);
        // A different master seed moves every cell's stream.
        assert_ne!(
            a.derive_plan(master).seed,
            a.derive_plan(master.with_seed(8)).seed
        );
        // No-fault plans pass through untouched (cache keys stay bare).
        let clean = FaultPlan::none();
        assert_eq!(a.derive_plan(clean), clean);
    }

    #[test]
    fn span_recording_marks_key_but_never_fault_streams() {
        let bare = ExperimentConfig::jikes("_209_db", CollectorKind::SemiSpace, 32);
        let spanned = bare.clone().with_spans();
        assert!(!bare.key().contains("spans"), "disabled keys unchanged");
        // The memo must distinguish spanned from span-free summaries …
        assert_ne!(bare.key(), spanned.key());
        // … but fault identity is observation-agnostic: recording spans
        // must inject exactly the faults a bare run would.
        assert_eq!(bare.fault_key(), spanned.fault_key());
        let master = FaultPlan::parse("drop=0.1,seed=7").unwrap();
        assert_eq!(bare.derive_plan(master), spanned.derive_plan(master));
    }

    #[test]
    fn probe_mode_marks_key_but_never_fault_streams() {
        let bare = ExperimentConfig::jikes("_209_db", CollectorKind::SemiSpace, 32);
        let fine = bare.clone().with_probe(ProbeSpec::transparent_at(4_000));
        let paid = bare
            .clone()
            .with_probe(ProbeSpec::nontransparent_at(40_000));
        assert!(!bare.key().contains("probe"), "default keys unchanged");
        assert_ne!(bare.key(), fine.key());
        assert_ne!(bare.key(), paid.key());
        assert_ne!(fine.key(), paid.key());
        // Observing differently must not reseed injected-fault streams.
        assert_eq!(bare.fault_key(), paid.fault_key());
        let master = FaultPlan::parse("drop=0.1,seed=7").unwrap();
        assert_eq!(bare.derive_plan(master), paid.derive_plan(master));
    }

    #[test]
    fn config_keys_distinguish_every_axis() {
        let a = ExperimentConfig::jikes("_209_db", CollectorKind::SemiSpace, 32);
        let b = ExperimentConfig::jikes("_209_db", CollectorKind::SemiSpace, 48);
        let c = ExperimentConfig::jikes("_209_db", CollectorKind::GenCopy, 32);
        let d = ExperimentConfig::kaffe("_209_db", 32);
        let e = ExperimentConfig::kaffe_pxa("_209_db", 32);
        let keys = [a.key(), b.key(), c.key(), d.key(), e.key()];
        let mut uniq = keys.to_vec();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), keys.len());
    }
}
