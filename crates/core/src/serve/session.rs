//! Per-connection plumbing: the bounded outbox and the reader/writer
//! thread pair.
//!
//! Each accepted connection gets two threads. The **reader** parses one
//! request per line and answers admission-time decisions immediately; the
//! **writer** drains the connection's [`Outbox`] to the socket. Results
//! are produced by the shared executor thread and pushed into the outbox
//! of whichever connection submitted the request, so a slow client never
//! blocks the executor — backpressure is absorbed by the outbox's drop
//! policy instead.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use vmprobe_telemetry::{CounterId, Telemetry};

use super::protocol::{self, ErrorCode, Request};
use super::scheduler::Job;
use super::ServeShared;
use crate::json::JsonObj;
use crate::sweep::lock_unpoisoned;

#[derive(Debug, Default)]
struct OutState {
    lines: VecDeque<String>,
    /// Chatter lines shed while the queue was full, not yet reported.
    dropped_pending: u64,
    /// No further pushes are accepted; the writer exits once drained.
    closed: bool,
}

/// A bounded per-connection output queue with a two-tier drop policy.
///
/// * **Essential** lines (results, errors, the shutdown notice) always
///   enqueue: losing a response would violate the daemon's delivery
///   contract. Their count is bounded by the admission queue, so the
///   overshoot past `cap` is bounded too.
/// * **Chatter** (acceptance acks, status payloads) is shed when the
///   queue is full — counted, and confessed to the client with a
///   `{"kind":"dropped","count":N}` line once the queue has space again.
///
/// This is slow-reader backpressure without executor stalls: the shared
/// executor never blocks on one tenant's unread socket.
#[derive(Debug)]
pub struct Outbox {
    state: Mutex<OutState>,
    ready: Condvar,
    cap: usize,
    telemetry: Telemetry,
}

impl Outbox {
    /// An outbox shedding chatter beyond `cap` queued lines.
    pub fn new(cap: usize, telemetry: Telemetry) -> Self {
        Self {
            state: Mutex::new(OutState::default()),
            ready: Condvar::new(),
            cap: cap.max(1),
            telemetry,
        }
    }

    /// Queue a droppable line. Returns `false` (and counts the drop) when
    /// the queue is full or the connection is gone.
    pub fn push(&self, line: String) -> bool {
        let mut s = lock_unpoisoned(&self.state);
        if s.closed {
            return false;
        }
        if s.lines.len() >= self.cap {
            s.dropped_pending += 1;
            self.telemetry.count(CounterId::ServeDroppedLines, 1);
            return false;
        }
        self.confess_drops(&mut s);
        s.lines.push_back(line);
        self.ready.notify_all();
        true
    }

    /// Queue an essential line (results, errors): never shed, may
    /// overshoot `cap` (bounded by the admission queue). Returns `false`
    /// only when the connection is already gone.
    pub fn push_must(&self, line: String) -> bool {
        let mut s = lock_unpoisoned(&self.state);
        if s.closed {
            return false;
        }
        self.confess_drops(&mut s);
        s.lines.push_back(line);
        self.ready.notify_all();
        true
    }

    /// If drops are pending and there is room, own up to them in-band.
    fn confess_drops(&self, s: &mut OutState) {
        if s.dropped_pending > 0 && s.lines.len() < self.cap {
            let mut o = JsonObj::new();
            o.bool("ok", true)
                .str("kind", "dropped")
                .u64("count", s.dropped_pending);
            s.lines.push_back(o.finish());
            s.dropped_pending = 0;
        }
    }

    /// Stop accepting lines; the writer exits once the backlog is flushed.
    pub fn close(&self) {
        let mut s = lock_unpoisoned(&self.state);
        s.closed = true;
        self.ready.notify_all();
    }

    /// Abandon everything (peer is gone): close and discard the backlog.
    fn abort(&self) {
        let mut s = lock_unpoisoned(&self.state);
        s.closed = true;
        s.lines.clear();
        self.ready.notify_all();
    }

    /// Block for the next line; `None` once closed and drained.
    fn pop_blocking(&self) -> Option<String> {
        let mut s = lock_unpoisoned(&self.state);
        loop {
            if let Some(line) = s.lines.pop_front() {
                return Some(line);
            }
            if s.closed {
                return None;
            }
            s = self.ready.wait(s).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Lines currently queued (tests and status).
    pub fn depth(&self) -> usize {
        lock_unpoisoned(&self.state).lines.len()
    }
}

/// Handles to one live connection.
pub(super) struct SessionHandle {
    pub(super) outbox: Arc<Outbox>,
    pub(super) stream: UnixStream,
    pub(super) reader: JoinHandle<()>,
    pub(super) writer: JoinHandle<()>,
}

/// Spawn the reader/writer pair for one accepted connection.
pub(super) fn spawn(
    stream: UnixStream,
    shared: Arc<ServeShared>,
) -> std::io::Result<SessionHandle> {
    let outbox = Arc::new(Outbox::new(shared.outbox_cap, shared.telemetry.clone()));

    let write_half = stream.try_clone()?;
    let writer = {
        let outbox = Arc::clone(&outbox);
        std::thread::spawn(move || {
            let mut out = write_half;
            while let Some(line) = outbox.pop_blocking() {
                if out
                    .write_all(line.as_bytes())
                    .and_then(|()| out.write_all(b"\n"))
                    .is_err()
                {
                    outbox.abort();
                    return;
                }
            }
            let _ = out.flush();
        })
    };

    let read_half = stream.try_clone()?;
    let reader = {
        let outbox = Arc::clone(&outbox);
        std::thread::spawn(move || {
            for line in BufReader::new(read_half).lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                handle_line(&line, &outbox, &shared);
            }
            // Peer hung up: nothing more can be delivered to it, but the
            // outbox stays open for stragglers so the executor's
            // `push_must` calls stay cheap no-ops after `close`.
        })
    };

    Ok(SessionHandle {
        outbox,
        stream,
        reader,
        writer,
    })
}

/// Parse and answer one request line (runs on the connection's reader
/// thread; admission decisions happen here, execution elsewhere).
fn handle_line(line: &str, outbox: &Arc<Outbox>, shared: &ServeShared) {
    let request = match protocol::parse_request(line) {
        Ok(r) => r,
        Err((code, msg)) => {
            outbox.push_must(protocol::error_line(None, code, &msg));
            return;
        }
    };
    match request {
        Request::Status => {
            outbox.push(shared.status_line());
        }
        Request::Metrics => {
            let mut o = JsonObj::new();
            o.bool("ok", true)
                .str("kind", "metrics")
                .str("text", &shared.telemetry.snapshot().prometheus());
            outbox.push(o.finish());
        }
        Request::Shutdown => {
            let mut o = JsonObj::new();
            o.bool("ok", true).str("kind", "draining");
            outbox.push_must(o.finish());
            shared.begin_drain();
        }
        Request::Verify(req) => {
            // Pure analysis on the reader thread: no pool slot, no queue
            // entry, and — deliberately — no quarantine accounting. A
            // tenant probing whether its program is well-formed is using
            // the daemon as intended, not failing.
            let verdict = vmprobe_bytecode::assemble(&req.program)
                .map_err(|e| e.to_string())
                .and_then(|p| {
                    vmprobe_analysis::verify_program(&p)
                        .map(|_| p.method_count())
                        .map_err(|e| e.to_string())
                });
            match verdict {
                Ok(methods) => {
                    outbox.push_must(protocol::verified_line(&req.id, methods));
                }
                Err(reason) => {
                    shared.telemetry.count(CounterId::ServeVerifyRejected, 1);
                    outbox.push_must(protocol::error_line(
                        Some(&req.id),
                        ErrorCode::VerifyRejected,
                        &reason,
                    ));
                }
            }
        }
        Request::Diff(diff) => {
            // Inline like `verify`, but it does execute experiments, so it
            // passes the same admission gates as a run: resource envelope
            // first, then the memoized benchmark verification. No pool
            // slot and no quarantine accounting — the ensemble is bounded
            // at parse time and failures are typed back to the tenant.
            if let Err((code, msg)) = shared.envelope.admit(&diff.config) {
                shared.telemetry.count(CounterId::ServeRejectedLimits, 1);
                outbox.push_must(protocol::error_line(Some(&diff.id), code, &msg));
                return;
            }
            let Some(bench) = vmprobe_workloads::benchmark(&diff.config.benchmark) else {
                outbox.push_must(protocol::error_line(
                    Some(&diff.id),
                    ErrorCode::BadRequest,
                    &format!("unknown benchmark '{}'", diff.config.benchmark),
                ));
                return;
            };
            if let Err(reason) = shared.verify_benchmark(&bench, diff.config.scale) {
                shared.telemetry.count(CounterId::ServeVerifyRejected, 1);
                outbox.push_must(protocol::error_line(
                    Some(&diff.id),
                    ErrorCode::VerifyRejected,
                    &reason,
                ));
                return;
            }
            shared.telemetry.count(CounterId::ServeRequests, 1);
            let label = crate::cache::build_fingerprint();
            let mut side = crate::diff::DiffSide::new(&label);
            if let Some(cache) = &shared.cache {
                side = side.with_cache(Arc::clone(cache));
            }
            let engine = crate::diff::DiffEngine::new(diff.options, side.clone(), side)
                .perturb(diff.perturb)
                .with_telemetry(shared.telemetry.clone());
            match engine.run(std::slice::from_ref(&diff.config)) {
                Ok(report) => {
                    shared.telemetry.count(CounterId::ServeResults, 1);
                    outbox.push_must(protocol::diff_line(&diff.id, &report));
                }
                Err(reason) => {
                    outbox.push_must(protocol::error_line(
                        Some(&diff.id),
                        ErrorCode::VmFault,
                        &reason,
                    ));
                }
            }
        }
        Request::Observe(req) => {
            // Inline like `diff`: executes experiments, so it passes the
            // run-request admission gates, but the grid is hard-capped at
            // parse time (MAX_OBSERVE_REQUEST_PERIODS) so the reader
            // thread stays responsive. Cached cells make repeats cheap.
            if let Err((code, msg)) = shared.envelope.admit(&req.config) {
                shared.telemetry.count(CounterId::ServeRejectedLimits, 1);
                outbox.push_must(protocol::error_line(Some(&req.id), code, &msg));
                return;
            }
            let Some(bench) = vmprobe_workloads::benchmark(&req.config.benchmark) else {
                outbox.push_must(protocol::error_line(
                    Some(&req.id),
                    ErrorCode::BadRequest,
                    &format!("unknown benchmark '{}'", req.config.benchmark),
                ));
                return;
            };
            if let Err(reason) = shared.verify_benchmark(&bench, req.config.scale) {
                shared.telemetry.count(CounterId::ServeVerifyRejected, 1);
                outbox.push_must(protocol::error_line(
                    Some(&req.id),
                    ErrorCode::VerifyRejected,
                    &reason,
                ));
                return;
            }
            shared.telemetry.count(CounterId::ServeRequests, 1);
            shared.telemetry.count(CounterId::ServeObserve, 1);
            let mut engine = crate::observe::ObserveEngine::new(req.periods.clone())
                .with_telemetry(shared.telemetry.clone());
            if let Some(cache) = &shared.cache {
                engine = engine.with_cache(Arc::clone(cache));
            }
            match engine.run(std::slice::from_ref(&req.config)) {
                Ok(report) => {
                    shared.telemetry.count(CounterId::ServeResults, 1);
                    outbox.push_must(protocol::observe_line(&req.id, &report));
                }
                Err(reason) => {
                    outbox.push_must(protocol::error_line(
                        Some(&req.id),
                        ErrorCode::VmFault,
                        &reason,
                    ));
                }
            }
        }
        Request::Run(run) => {
            if let Err((code, msg)) = shared.envelope.admit(&run.config) {
                shared.telemetry.count(CounterId::ServeRejectedLimits, 1);
                outbox.push_must(protocol::error_line(Some(&run.id), code, &msg));
                return;
            }
            let Some(bench) = vmprobe_workloads::benchmark(&run.config.benchmark) else {
                outbox.push_must(protocol::error_line(
                    Some(&run.id),
                    ErrorCode::BadRequest,
                    &format!("unknown benchmark '{}'", run.config.benchmark),
                ));
                return;
            };
            // Admission-time verification (memoized per benchmark+scale):
            // an ill-typed program is refused before it can consume a
            // pool slot, and the refusal never touches quarantine.
            if let Err(reason) = shared.verify_benchmark(&bench, run.config.scale) {
                shared.telemetry.count(CounterId::ServeVerifyRejected, 1);
                outbox.push_must(protocol::error_line(
                    Some(&run.id),
                    ErrorCode::VerifyRejected,
                    &reason,
                ));
                return;
            }
            let job = Job {
                id: run.id.clone(),
                tenant: run.tenant,
                config: run.config,
                plan: shared.envelope.shape_plan(run.plan),
                outbox: Arc::clone(outbox),
            };
            match shared.scheduler.admit(job) {
                Ok(depth) => {
                    outbox.push(protocol::accepted_line(&run.id, depth));
                }
                Err((code, msg)) => {
                    outbox.push_must(protocol::error_line(Some(&run.id), code, &msg));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chatter_is_shed_and_confessed() {
        let t = Telemetry::counters_only();
        let outbox = Outbox::new(2, t.clone());
        assert!(outbox.push("a".into()));
        assert!(outbox.push("b".into()));
        assert!(!outbox.push("c".into()), "over cap: shed");
        assert!(!outbox.push("d".into()));
        assert_eq!(t.counter(CounterId::ServeDroppedLines), 2);
        // Drain one; the next push confesses the drops first.
        assert_eq!(outbox.pop_blocking().as_deref(), Some("a"));
        assert_eq!(outbox.pop_blocking().as_deref(), Some("b"));
        assert!(outbox.push("e".into()));
        let confession = outbox.pop_blocking().unwrap();
        assert!(confession.contains("\"kind\":\"dropped\""));
        assert!(confession.contains("\"count\":2"));
        assert_eq!(outbox.pop_blocking().as_deref(), Some("e"));
    }

    #[test]
    fn essential_lines_are_never_shed() {
        let outbox = Outbox::new(1, Telemetry::disabled());
        assert!(outbox.push("chatter".into()));
        for i in 0..10 {
            assert!(outbox.push_must(format!("result-{i}")), "push {i}");
        }
        assert_eq!(outbox.depth(), 11, "results overshoot the cap");
    }

    #[test]
    fn close_drains_then_ends() {
        let outbox = Arc::new(Outbox::new(8, Telemetry::disabled()));
        outbox.push_must("x".into());
        outbox.close();
        assert!(!outbox.push_must("late".into()), "closed refuses pushes");
        assert_eq!(outbox.pop_blocking().as_deref(), Some("x"));
        assert_eq!(outbox.pop_blocking(), None);
    }
}
