//! `vmprobe-serve`: a fault-contained multi-tenant experiment daemon.
//!
//! Batch mode (`vmprobe-run`) pays for a sweep once and exits; the serving
//! daemon keeps the engine resident so many clients — CI shards, notebook
//! sessions, parameter-scan scripts — can share one warm process, one
//! work-stealing pool and one content-addressed result cache. Requests
//! arrive as line-delimited JSON over a local Unix socket
//! ([`protocol`]); admission control, per-tenant fairness and quarantine
//! live in [`scheduler`] and [`quarantine`]; per-connection backpressure
//! in [`session`]; the resource envelope in [`limits`].
//!
//! # Robustness envelope
//!
//! The daemon's contract mirrors a supervised-VM `spawn` boundary:
//!
//! * every failure a request can cause — bad JSON, a VM fault, an
//!   injected OOM, even a panic inside the experiment — becomes a typed
//!   error *line* for that request, never a dead worker or a dead daemon
//!   (the runner executes with
//!   [`SupervisedRunner::contain_panics`](crate::SupervisedRunner::contain_panics));
//! * admission is bounded: a full queue answers `queue_full` (the HTTP
//!   429 analogue) immediately instead of queueing unboundedly;
//! * slow readers shed chatter, with counts, never results
//!   ([`session::Outbox`]);
//! * tenants whose requests keep failing are quarantined for a
//!   deterministic cooldown measured in admission sequence numbers
//!   ([`quarantine::QuarantineBook`]), visible in `status`;
//! * SIGTERM drains gracefully: in-flight cells finish, their responses
//!   are delivered, the final [`RunReport`](crate::RunReport) and metrics
//!   are flushed, and the process exits 0.
//!
//! Determinism is preserved: the daemon runs a counters-only telemetry
//! hub and applies no envelope caps by default, so a healthy request
//! produces a result line byte-identical to batch mode rendering the same
//! summary through [`protocol::result_line`].

pub mod limits;
pub mod protocol;
pub mod quarantine;
pub mod scheduler;
pub mod session;

use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use vmprobe_telemetry::{CounterId, Telemetry};

use crate::json::JsonObj;
use crate::sweep::lock_unpoisoned;
use crate::{ExperimentCache, Runner};

use limits::Envelope;
use scheduler::{Job, Scheduler};
use session::SessionHandle;

/// How long the accept loop sleeps between polls of the listener and the
/// shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Signal-handler-set shutdown flag (SIGTERM/SIGINT): static because a
/// signal handler can touch nothing else safely.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Route SIGTERM and SIGINT to the drain flag. Declares libc's `signal`
/// directly — the symbol is always present on Unix and the build stays
/// dependency-free.
fn install_signal_handlers() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    let handler = on_signal as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

/// Operator configuration for one daemon instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix socket path to listen on (a stale file is replaced).
    pub socket: PathBuf,
    /// Worker threads for the experiment pool.
    pub jobs: usize,
    /// Persistent experiment cache directory, shared across tenants.
    pub cache_dir: Option<PathBuf>,
    /// Admission queue bound (jobs across all tenants).
    pub queue_cap: usize,
    /// Per-connection outbox bound (chatter lines).
    pub outbox_cap: usize,
    /// Consecutive failures before a tenant is quarantined (0 = never).
    pub quarantine_threshold: u32,
    /// Quarantine length in admission sequence numbers.
    pub quarantine_cooldown: u64,
    /// Per-request resource envelope.
    pub envelope: Envelope,
    /// Runner retry budget per cell.
    pub retries: u32,
    /// Write the final Prometheus dump here on shutdown.
    pub metrics_out: Option<PathBuf>,
    /// Write the final `RunReport` JSON here on shutdown.
    pub report_json: Option<PathBuf>,
    /// Narrate admissions and results on stderr.
    pub verbose: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            socket: PathBuf::from("vmprobe.sock"),
            jobs: crate::default_jobs(),
            cache_dir: None,
            queue_cap: 64,
            outbox_cap: 256,
            quarantine_threshold: 3,
            quarantine_cooldown: 16,
            envelope: Envelope::default(),
            retries: 2,
            metrics_out: None,
            report_json: None,
            verbose: false,
        }
    }
}

/// State shared between the accept loop, every session and the executor.
#[derive(Debug)]
pub struct ServeShared {
    /// Admission queue and quarantine book.
    pub scheduler: Scheduler,
    /// Counters-only hub (summaries must stay byte-identical to batch
    /// mode, so span recording is never enabled here).
    pub telemetry: Telemetry,
    /// The resource envelope applied to every request.
    pub envelope: Envelope,
    /// Per-connection outbox bound.
    pub outbox_cap: usize,
    /// Shared persistent cache, if configured.
    pub cache: Option<Arc<ExperimentCache>>,
    /// Memoized admission-time verification verdicts for resolved
    /// benchmark programs, keyed by `benchmark@scale`. Benchmarks are
    /// deterministic functions of that key, so one dataflow-verifier
    /// pass per cell shape serves the daemon's whole lifetime.
    verified: Mutex<std::collections::BTreeMap<String, Result<(), String>>>,
    drain: AtomicBool,
}

impl ServeShared {
    /// Flip the daemon into draining mode (idempotent): the scheduler
    /// rejects new work and the accept/executor loops wind down.
    pub fn begin_drain(&self) {
        self.drain.store(true, Ordering::SeqCst);
        self.scheduler.drain();
    }

    fn draining(&self) -> bool {
        self.drain.load(Ordering::SeqCst) || SHUTDOWN.load(Ordering::SeqCst)
    }

    /// Admission-time verification of a resolved benchmark program,
    /// memoized per `benchmark@scale`. `Err` carries the verifier's
    /// diagnostic; either verdict is cached.
    pub fn verify_benchmark(
        &self,
        bench: &vmprobe_workloads::Benchmark,
        scale: vmprobe_workloads::InputScale,
    ) -> Result<(), String> {
        let key = format!("{}@{scale:?}", bench.name);
        if let Some(verdict) = lock_unpoisoned(&self.verified).get(&key) {
            return verdict.clone();
        }
        let verdict = vmprobe_analysis::verify_program(&bench.build(scale))
            .map(|_| ())
            .map_err(|e| e.to_string());
        lock_unpoisoned(&self.verified).insert(key, verdict.clone());
        verdict
    }

    /// Render the `status` response line.
    pub fn status_line(&self) -> String {
        let s = self.scheduler.status();
        let queues: std::collections::BTreeMap<&str, usize> = s
            .tenant_queues
            .iter()
            .map(|(t, n)| (t.as_str(), *n))
            .collect();
        let tenants = s.standings.iter().map(|st| {
            let mut o = JsonObj::new();
            o.str("tenant", &st.tenant)
                .u64("failure_streak", u64::from(st.failure_streak))
                .u64(
                    "queued",
                    queues.get(st.tenant.as_str()).copied().unwrap_or(0) as u64,
                )
                .bool("quarantined", st.release_at.is_some());
            if let Some(at) = st.release_at {
                o.u64("release_at_seq", at);
            }
            o.finish()
        });
        let queued_only = s
            .tenant_queues
            .iter()
            .filter(|(t, _)| !s.standings.iter().any(|st| &st.tenant == t))
            .map(|(t, n)| {
                let mut o = JsonObj::new();
                o.str("tenant", t)
                    .u64("failure_streak", 0)
                    .u64("queued", *n as u64)
                    .bool("quarantined", false);
                o.finish()
            });
        let all: Vec<String> = tenants.chain(queued_only).collect();
        let mut o = JsonObj::new();
        o.bool("ok", true).str("kind", "status");
        o.schema_version()
            .bool("draining", s.draining || self.draining())
            .u64("queued", s.queued as u64)
            .u64("admission_seq", s.admitted_seq)
            .u64("cache_hits", self.telemetry.counter(CounterId::CacheHits))
            .u64(
                "results_delivered",
                self.telemetry.counter(CounterId::ServeResults),
            )
            .u64(
                "verify_rejected",
                self.telemetry.counter(CounterId::ServeVerifyRejected),
            )
            .array("tenants", all);
        o.finish()
    }
}

/// The executor loop: drain round-robin batches from the scheduler,
/// run them on the supervised pool, deliver one line per job.
fn executor(shared: &ServeShared, runner: &mut Runner, batch_max: usize, verbose: bool) {
    while let Some(jobs) = shared.scheduler.next_batch(batch_max) {
        let batch: Vec<_> = jobs.iter().map(|j| (j.config.clone(), j.plan)).collect();
        let results = runner.run_batch_with_plans(&batch);
        for (job, result) in jobs.iter().zip(results) {
            deliver(shared, job, result, verbose);
        }
    }
}

/// Turn one runner result into one response line, with quarantine
/// accounting.
fn deliver(
    shared: &ServeShared,
    job: &Job,
    result: Result<Arc<crate::RunSummary>, crate::ExperimentError>,
    verbose: bool,
) {
    let (line, ok) = match result {
        Ok(summary) => match shared.envelope.check_deadline(&summary) {
            Ok(()) => (protocol::result_line(&job.id, &summary), true),
            Err((code, msg)) => (protocol::error_line(Some(&job.id), code, &msg), false),
        },
        Err(err) => (
            protocol::error_line(Some(&job.id), protocol::code_for(&err), &err.to_string()),
            false,
        ),
    };
    if let Some(release_at) = shared.scheduler.record_outcome(&job.tenant, ok) {
        if verbose {
            eprintln!(
                "vmprobe-serve: tenant '{}' quarantined until admission seq {release_at}",
                job.tenant
            );
        }
    }
    shared.telemetry.count(CounterId::ServeResults, 1);
    job.outbox.push_must(line);
    if verbose {
        eprintln!(
            "vmprobe-serve: {} '{}' for tenant '{}'",
            if ok { "completed" } else { "failed" },
            job.id,
            job.tenant
        );
    }
}

/// Run the daemon until SIGTERM/SIGINT or a `shutdown` request, then
/// drain and exit cleanly.
///
/// # Errors
///
/// A rendered message when the socket cannot be bound, the cache cannot
/// be opened, or a final artifact cannot be written. Per-request failures
/// never surface here — they are response lines.
pub fn serve(config: ServeConfig) -> Result<(), String> {
    SHUTDOWN.store(false, Ordering::SeqCst);
    install_signal_handlers();

    let cache = match &config.cache_dir {
        None => None,
        Some(dir) => match ExperimentCache::open(dir) {
            Ok(c) => Some(Arc::new(c)),
            Err(e) => return Err(format!("cannot open cache dir {}: {e}", dir.display())),
        },
    };

    // Counters only: span recording would flip `record_spans` on every
    // config and change summaries/cache keys away from batch mode.
    let telemetry = Telemetry::counters_only();
    let shared = Arc::new(ServeShared {
        scheduler: Scheduler::new(
            config.queue_cap,
            config.quarantine_threshold,
            config.quarantine_cooldown,
            telemetry.clone(),
        ),
        telemetry: telemetry.clone(),
        envelope: config.envelope,
        outbox_cap: config.outbox_cap,
        cache: cache.clone(),
        verified: Mutex::new(std::collections::BTreeMap::new()),
        drain: AtomicBool::new(false),
    });

    // Replace a stale socket file from a previous unclean exit.
    if config.socket.exists() {
        std::fs::remove_file(&config.socket).map_err(|e| {
            format!(
                "cannot replace stale socket {}: {e}",
                config.socket.display()
            )
        })?;
    }
    let listener = UnixListener::bind(&config.socket)
        .map_err(|e| format!("cannot bind {}: {e}", config.socket.display()))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot set socket nonblocking: {e}"))?;
    if config.verbose {
        eprintln!(
            "vmprobe-serve: listening on {} ({} workers)",
            config.socket.display(),
            config.jobs.max(1)
        );
    }

    let executor_handle = {
        let shared = Arc::clone(&shared);
        let jobs = config.jobs.max(1);
        let retries = config.retries;
        let verbose = config.verbose;
        let cache = cache.clone();
        std::thread::spawn(move || {
            let mut runner = Runner::new()
                .jobs(jobs)
                .retries(retries)
                .contain_panics(true)
                .with_telemetry(shared.telemetry.clone());
            if let Some(cache) = cache {
                runner = runner.with_cache(cache);
            }
            executor(&shared, &mut runner, jobs, verbose);
            runner.report().to_json()
        })
    };

    let sessions: Mutex<Vec<SessionHandle>> = Mutex::new(Vec::new());
    loop {
        if shared.draining() {
            shared.begin_drain();
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => match session::spawn(stream, Arc::clone(&shared)) {
                Ok(handle) => lock_unpoisoned(&sessions).push(handle),
                Err(e) => eprintln!("vmprobe-serve: cannot start session: {e}"),
            },
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) => return Err(format!("accept failed: {e}")),
        }
    }

    // Drain: the scheduler stops admitting; the executor finishes the
    // backlog (delivering every in-flight response) and returns the final
    // report.
    if config.verbose {
        eprintln!("vmprobe-serve: draining…");
    }
    let report_json = executor_handle
        .join()
        .unwrap_or_else(|_| String::from("{}"));

    // Every queued response flushes before sockets close: say goodbye,
    // close outboxes (writers exit after the backlog), then unblock
    // readers by shutting the sockets down.
    let mut bye = JsonObj::new();
    bye.bool("ok", true).str("kind", "bye");
    let bye = bye.finish();
    let handles = std::mem::take(&mut *lock_unpoisoned(&sessions));
    for handle in &handles {
        handle.outbox.push_must(bye.clone());
        handle.outbox.close();
    }
    for handle in handles {
        let _ = handle.writer.join();
        let _ = handle.stream.shutdown(std::net::Shutdown::Both);
        let _ = handle.reader.join();
    }
    let _ = std::fs::remove_file(&config.socket);

    if let Some(dest) = &config.report_json {
        std::fs::write(dest, &report_json)
            .map_err(|e| format!("cannot write report to {}: {e}", dest.display()))?;
    }
    if let Some(dest) = &config.metrics_out {
        std::fs::write(dest, telemetry.snapshot().prometheus())
            .map_err(|e| format!("cannot write metrics to {}: {e}", dest.display()))?;
    }
    if config.verbose {
        eprintln!("vmprobe-serve: done");
    }
    Ok(())
}

/// Drive one connection from a test: see `tests/serve_soak.rs`.
#[doc(hidden)]
pub fn connect(socket: &std::path::Path) -> std::io::Result<UnixStream> {
    UnixStream::connect(socket)
}
