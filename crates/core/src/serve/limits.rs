//! The per-request resource envelope.
//!
//! Modeled on process-isolation supervisors: the operator declares how
//! much any single tenant request may cost, the daemon enforces it — at
//! admission where possible, post-hoc on the deterministic virtual clock
//! where not — and everything over budget becomes a typed error line, not
//! worker death.

use vmprobe_power::FaultPlan;

use super::protocol::ErrorCode;
use crate::{ExperimentConfig, RunSummary};

/// Operator-configured resource limits applied to every request.
///
/// All limits default to 0, meaning *unlimited*: out of the box the daemon
/// computes exactly what batch mode would, with identical cache keys. Each
/// cap is opt-in because the step-budget clamp changes the effective fault
/// plan (and therefore the cache key) of the requests it touches.
#[derive(Debug, Clone, Copy, Default)]
pub struct Envelope {
    /// Reject run requests whose heap label exceeds this many MB.
    pub max_heap_mb: u32,
    /// Clamp every request's fault-plan step budget to at most this many
    /// bytecodes (see [`FaultPlan::cap_step_budget`]); runs over budget
    /// fail with a typed `StepBudgetExhausted` VM fault.
    pub step_budget_cap: u64,
    /// Fail results whose *simulated* duration exceeds this many virtual
    /// milliseconds. Checked post-hoc — the run completes, then the
    /// deterministic virtual clock is compared — so verdicts are
    /// bit-identical regardless of host load or thread count.
    pub deadline_virtual_ms: u64,
}

impl Envelope {
    /// Admission-time check. `Err` carries the rejection line's code.
    pub fn admit(&self, config: &ExperimentConfig) -> Result<(), (ErrorCode, String)> {
        if self.max_heap_mb > 0 && config.heap_mb > self.max_heap_mb {
            return Err((
                ErrorCode::LimitExceeded,
                format!(
                    "heap_mb {} exceeds the daemon's cap of {} MB",
                    config.heap_mb, self.max_heap_mb
                ),
            ));
        }
        Ok(())
    }

    /// Apply execution-time caps to the request's fault plan.
    ///
    /// With no step-budget cap the plan passes through untouched
    /// (`None` stays `None`, preserving batch-identical cache keys).
    pub fn shape_plan(&self, plan: Option<FaultPlan>) -> Option<FaultPlan> {
        if self.step_budget_cap == 0 {
            return plan;
        }
        Some(
            plan.unwrap_or_else(FaultPlan::none)
                .cap_step_budget(self.step_budget_cap),
        )
    }

    /// Post-hoc deadline verdict for a completed run. `Err` renders as a
    /// `deadline` error line.
    pub fn check_deadline(&self, summary: &RunSummary) -> Result<(), (ErrorCode, String)> {
        if self.deadline_virtual_ms == 0 {
            return Ok(());
        }
        let virtual_ms = summary.duration_s() * 1e3;
        if virtual_ms > self.deadline_virtual_ms as f64 {
            return Err((
                ErrorCode::Deadline,
                format!(
                    "simulated {virtual_ms:.1} ms exceeds the {} ms virtual deadline",
                    self.deadline_virtual_ms
                ),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmprobe_heap::CollectorKind;
    use vmprobe_workloads::InputScale;

    #[test]
    fn unlimited_envelope_is_a_no_op() {
        let env = Envelope::default();
        let cfg = ExperimentConfig::jikes("_209_db", CollectorKind::SemiSpace, 4096);
        assert!(env.admit(&cfg).is_ok());
        assert_eq!(env.shape_plan(None), None);
        let plan = FaultPlan::parse("budget=7").unwrap();
        assert_eq!(env.shape_plan(Some(plan)), Some(plan));
    }

    #[test]
    fn heap_cap_rejects_at_admission() {
        let env = Envelope {
            max_heap_mb: 64,
            ..Envelope::default()
        };
        let small = ExperimentConfig::jikes("_209_db", CollectorKind::SemiSpace, 64);
        let big = ExperimentConfig::jikes("_209_db", CollectorKind::SemiSpace, 65);
        assert!(env.admit(&small).is_ok());
        let (code, msg) = env.admit(&big).unwrap_err();
        assert_eq!(code, ErrorCode::LimitExceeded);
        assert!(msg.contains("65"));
    }

    #[test]
    fn step_budget_cap_shapes_plans() {
        let env = Envelope {
            step_budget_cap: 100,
            ..Envelope::default()
        };
        assert_eq!(env.shape_plan(None).unwrap().step_budget, Some(100));
        let tight = FaultPlan::parse("budget=7").unwrap();
        assert_eq!(env.shape_plan(Some(tight)).unwrap().step_budget, Some(7));
        let loose = FaultPlan::parse("budget=900").unwrap();
        assert_eq!(env.shape_plan(Some(loose)).unwrap().step_budget, Some(100));
    }

    #[test]
    fn virtual_deadline_is_post_hoc_and_deterministic() {
        let mut cfg = ExperimentConfig::jikes("_209_db", CollectorKind::SemiSpace, 32);
        cfg.scale = InputScale::Reduced;
        let summary = cfg.run().expect("runs");
        let lenient = Envelope {
            deadline_virtual_ms: u64::MAX,
            ..Envelope::default()
        };
        assert!(lenient.check_deadline(&summary).is_ok());
        let strict = Envelope {
            deadline_virtual_ms: 1,
            ..Envelope::default()
        };
        // The reduced run simulates well over a virtual millisecond.
        let (code, _) = strict.check_deadline(&summary).unwrap_err();
        assert_eq!(code, ErrorCode::Deadline);
        assert!(Envelope::default().check_deadline(&summary).is_ok());
    }
}
