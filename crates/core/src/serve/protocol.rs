//! Wire protocol for the serving daemon: line-delimited JSON.
//!
//! Every request and every response is exactly one `\n`-terminated JSON
//! object. The build is fully offline, so this module carries both sides
//! by hand: a minimal recursive-descent JSON *parser* (the crate's
//! [`JsonObj`] emitter only writes) and the typed request/response/error
//! vocabulary documented in `DESIGN.md` §13.
//!
//! The parser accepts strictly what the daemon needs — objects, arrays,
//! strings with the standard escapes, finite numbers, booleans and null —
//! and rejects everything else with a message suitable for a `bad_json`
//! error line. Nesting is capped so a hostile request cannot overflow the
//! reader thread's stack.

use vmprobe_heap::CollectorKind;
use vmprobe_platform::PlatformKind;
use vmprobe_power::{EnergyPerturbation, FaultPlan};
use vmprobe_workloads::InputScale;

use crate::json::JsonObj;
use crate::{
    DiffOptions, ExperimentConfig, ExperimentError, ObserveReport, RegressionReport, RunSummary,
    VmChoice,
};

/// Maximum JSON nesting depth a request may use.
const MAX_DEPTH: usize = 32;
/// Maximum request line length in bytes (longer lines are `bad_request`).
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order (duplicate keys keep the last value).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parse one complete JSON value; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (last occurrence wins, like serde_json).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.lit("false", JsonValue::Bool(false)),
            Some(b'n') => self.lit("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogates are rejected rather than paired:
                            // request fields are ASCII identifiers in
                            // practice, and a typed error beats silent
                            // mojibake.
                            out.push(
                                char::from_u32(code)
                                    .ok_or(format!("\\u{hex} is not a scalar value"))?,
                            );
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input arrived as &str, so
                    // the byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    if (c as u32) < 0x20 {
                        return Err("raw control character in string".into());
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        // Every byte consumed above is ASCII, but a typed error keeps the
        // parser panic-free on arbitrary tenant input by construction.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        let n: f64 = text
            .parse()
            .map_err(|_| format!("bad number '{text}' at byte {start}"))?;
        if !n.is_finite() {
            return Err(format!("non-finite number '{text}'"));
        }
        Ok(JsonValue::Num(n))
    }
}

/// The daemon's error taxonomy. Every refused or failed request renders to
/// one error line carrying the stable `code` string below — clients branch
/// on the code, never on the human-readable message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line was not valid JSON.
    BadJson,
    /// The request was valid JSON but not a valid request (unknown op,
    /// missing or ill-typed field, oversized line, unknown benchmark…).
    BadRequest,
    /// The request exceeds the daemon's resource envelope (heap cap).
    LimitExceeded,
    /// The admission queue is full — retry later (HTTP 429 analogue).
    QueueFull,
    /// The tenant is under quarantine until its cooldown elapses.
    Quarantined,
    /// The experiment executed and failed with a typed VM fault.
    VmFault,
    /// The experiment completed but exceeded the envelope's virtual
    /// deadline (checked post-hoc on the simulated clock).
    Deadline,
    /// The experiment panicked; the panic was contained on the worker.
    Panic,
    /// The daemon is draining for shutdown and admits nothing new.
    Draining,
    /// The submitted or resolved program failed admission-time bytecode
    /// verification (or did not assemble). The request consumed no pool
    /// slot and does not count against the tenant's quarantine standing.
    VerifyRejected,
}

impl ErrorCode {
    /// The stable wire string for this code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadJson => "bad_json",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::LimitExceeded => "limit_exceeded",
            ErrorCode::QueueFull => "queue_full",
            ErrorCode::Quarantined => "quarantined",
            ErrorCode::VmFault => "vm_fault",
            ErrorCode::Deadline => "deadline",
            ErrorCode::Panic => "panic",
            ErrorCode::Draining => "draining",
            ErrorCode::VerifyRejected => "verify_rejected",
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Run one experiment cell.
    Run(RunRequest),
    /// Verify a tenant-submitted program without running anything.
    Verify(VerifyRequest),
    /// Diff one cell's per-component energy against the baseline cache.
    Diff(DiffRequest),
    /// Observer-effect sweep over one cell: transparent vs non-transparent
    /// across a probe-period grid.
    Observe(ObserveRequest),
    /// Report queue, tenant and quarantine state.
    Status,
    /// Return the Prometheus text dump.
    Metrics,
    /// Begin a graceful drain (same as SIGTERM).
    Shutdown,
}

/// One tenant-submitted experiment request.
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// Client-chosen request id, echoed on every line about this request.
    pub id: String,
    /// Tenant name — the quarantine and fair-scheduling identity.
    pub tenant: String,
    /// The experiment to run.
    pub config: ExperimentConfig,
    /// Optional per-request fault plan (`faults` spec string).
    pub plan: Option<FaultPlan>,
}

/// One tenant-submitted verification request: assembler text in, a
/// `verified` line or a `verify_rejected` error out. Nothing executes,
/// so the request never touches the pool, the queue or quarantine.
#[derive(Debug, Clone)]
pub struct VerifyRequest {
    /// Client-chosen request id, echoed on the response line.
    pub id: String,
    /// The program, in `vmprobe_bytecode::assemble` notation.
    pub program: String,
}

/// Cap on the `replicates` a diff request may ask for: the diff runs
/// inline on the connection's reader thread, so the ensemble must stay
/// small enough not to starve that tenant's own request stream.
pub const MAX_DIFF_REPLICATES: u64 = 16;
/// Cap on a diff request's bootstrap resamples (CPU-bound, reader thread).
pub const MAX_DIFF_RESAMPLES: u64 = 2000;

/// One tenant-submitted regression-gate request: the cell named by the
/// same fields as a [`RunRequest`], diffed against the daemon's shared
/// cache under this build's fingerprint, optionally with a candidate-side
/// perturbation. Executed inline like `verify` — no pool slot, no
/// quarantine accounting.
#[derive(Debug, Clone)]
pub struct DiffRequest {
    /// Client-chosen request id, echoed on the response line.
    pub id: String,
    /// Tenant name (admission envelope identity).
    pub tenant: String,
    /// The cell to diff.
    pub config: ExperimentConfig,
    /// Statistical knobs (bounded at parse time).
    pub options: DiffOptions,
    /// Candidate-side perturbation (identity when the request omits it).
    pub perturb: EnergyPerturbation,
}

/// Cap on the probe-period grid an `observe` request may name. The sweep
/// runs inline on the reader thread at two runs per period, so the grid
/// must stay small enough not to starve the tenant's own request stream
/// (tighter than the engine-level [`crate::MAX_OBSERVE_PERIODS`]).
pub const MAX_OBSERVE_REQUEST_PERIODS: usize = 4;

/// One tenant-submitted observer-effect request: the cell named by the
/// same fields as a [`RunRequest`] plus an optional `periods` grid spec.
/// Executed inline like `diff` — no pool slot, no quarantine accounting.
#[derive(Debug, Clone)]
pub struct ObserveRequest {
    /// Client-chosen request id, echoed on the response line.
    pub id: String,
    /// Tenant name (admission envelope identity).
    pub tenant: String,
    /// The cell to sweep.
    pub config: ExperimentConfig,
    /// Probe-period grid, ascending, in nanoseconds (bounded at parse
    /// time).
    pub periods: Vec<u64>,
}

/// Parse one request line. Errors carry the taxonomy code to respond with.
pub fn parse_request(line: &str) -> Result<Request, (ErrorCode, String)> {
    if line.len() > MAX_LINE_BYTES {
        return Err((
            ErrorCode::BadRequest,
            format!("request line exceeds {MAX_LINE_BYTES} bytes"),
        ));
    }
    let v = JsonValue::parse(line).map_err(|e| (ErrorCode::BadJson, e))?;
    let op = v
        .get("op")
        .and_then(JsonValue::as_str)
        .ok_or((ErrorCode::BadRequest, "missing string field 'op'".into()))?;
    match op {
        "status" => Ok(Request::Status),
        "metrics" => Ok(Request::Metrics),
        "shutdown" => Ok(Request::Shutdown),
        "run" => parse_run(&v).map(Request::Run),
        "verify" => parse_verify(&v).map(Request::Verify),
        "diff" => parse_diff(&v).map(Request::Diff),
        "observe" => parse_observe(&v).map(Request::Observe),
        other => Err((ErrorCode::BadRequest, format!("unknown op '{other}'"))),
    }
}

fn parse_verify(v: &JsonValue) -> Result<VerifyRequest, (ErrorCode, String)> {
    let bad = |msg: &str| (ErrorCode::BadRequest, msg.to_owned());
    let id = v
        .get("id")
        .and_then(JsonValue::as_str)
        .filter(|s| !s.is_empty())
        .ok_or_else(|| bad("verify request needs a non-empty string 'id'"))?
        .to_owned();
    let program = v
        .get("program")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| bad("verify request needs a string 'program'"))?
        .to_owned();
    Ok(VerifyRequest { id, program })
}

fn parse_run(v: &JsonValue) -> Result<RunRequest, (ErrorCode, String)> {
    let bad = |msg: String| (ErrorCode::BadRequest, msg);
    let str_field = |key: &str| -> Result<Option<&str>, (ErrorCode, String)> {
        match v.get(key) {
            None | Some(JsonValue::Null) => Ok(None),
            Some(JsonValue::Str(s)) => Ok(Some(s)),
            Some(_) => Err(bad(format!("field '{key}' must be a string"))),
        }
    };
    let id = str_field("id")?
        .ok_or_else(|| bad("run request needs a string 'id'".into()))?
        .to_owned();
    let tenant = str_field("tenant")?
        .ok_or_else(|| bad("run request needs a string 'tenant'".into()))?
        .to_owned();
    if tenant.is_empty() || id.is_empty() {
        return Err(bad("'id' and 'tenant' must be non-empty".into()));
    }
    let benchmark = str_field("benchmark")?
        .ok_or_else(|| bad("run request needs a string 'benchmark'".into()))?
        .to_owned();

    let vm = match str_field("collector")?.unwrap_or("gencopy") {
        "gencopy" => VmChoice::Jikes(CollectorKind::GenCopy),
        "semispace" => VmChoice::Jikes(CollectorKind::SemiSpace),
        "marksweep" => VmChoice::Jikes(CollectorKind::MarkSweep),
        "genms" => VmChoice::Jikes(CollectorKind::GenMs),
        "kaffe" => VmChoice::Kaffe,
        other => return Err(bad(format!("unknown collector '{other}'"))),
    };
    let heap_mb = match v.get("heap_mb") {
        None => 64,
        Some(n) => n
            .as_u64()
            .filter(|&h| h >= 1 && h <= u64::from(u32::MAX))
            .ok_or_else(|| bad("'heap_mb' must be a positive integer".into()))?
            as u32,
    };
    let platform = match str_field("platform")?.unwrap_or("p6") {
        "p6" => PlatformKind::PentiumM,
        "pxa255" => PlatformKind::Pxa255,
        other => return Err(bad(format!("unknown platform '{other}'"))),
    };
    let scale = match str_field("scale")?.unwrap_or("full") {
        "full" => InputScale::Full,
        "s10" => InputScale::Reduced,
        other => return Err(bad(format!("unknown scale '{other}'"))),
    };

    let mut plan = match str_field("faults")? {
        None => None,
        Some(spec) => {
            Some(FaultPlan::parse(spec).map_err(|e| bad(format!("bad 'faults' spec: {e}")))?)
        }
    };
    if let Some(seed) = v.get("seed") {
        let seed = seed
            .as_u64()
            .ok_or_else(|| bad("'seed' must be an unsigned integer".into()))?;
        plan = Some(plan.unwrap_or_else(FaultPlan::none).with_seed(seed));
    }

    Ok(RunRequest {
        id,
        tenant,
        config: ExperimentConfig {
            benchmark,
            vm,
            heap_mb,
            platform,
            scale,
            trace_power: false,
            record_spans: false,
            verify: true,
            probe: vmprobe_power::ProbeSpec::default(),
        },
        plan,
    })
}

fn parse_diff(v: &JsonValue) -> Result<DiffRequest, (ErrorCode, String)> {
    let bad = |msg: String| (ErrorCode::BadRequest, msg);
    if v.get("faults").is_some() {
        return Err(bad(
            "diff requests take no 'faults' (the seed ensemble injects its own noise)".into(),
        ));
    }
    // A diff names its cell with exactly the run-request vocabulary
    // (benchmark/collector/heap_mb/platform/scale), so the cell fields are
    // parsed by the same code path; 'seed' seeds the diff, not a fault plan.
    let run = parse_run(v)?;
    let mut options = DiffOptions {
        replicates: 4,
        resamples: 100,
        ..DiffOptions::default()
    };
    if let Some(plan) = run.plan {
        options.seed = plan.seed;
    }
    let bounded = |key: &str, lo: u64, hi: u64| -> Result<Option<u64>, (ErrorCode, String)> {
        match v.get(key) {
            None | Some(JsonValue::Null) => Ok(None),
            Some(n) => n
                .as_u64()
                .filter(|x| (lo..=hi).contains(x))
                .map(Some)
                .ok_or_else(|| bad(format!("'{key}' must be an integer in [{lo}, {hi}]"))),
        }
    };
    if let Some(r) = bounded("replicates", 1, MAX_DIFF_REPLICATES)? {
        options.replicates = r as usize;
    }
    if let Some(r) = bounded("resamples", 1, MAX_DIFF_RESAMPLES)? {
        options.resamples = r as u32;
    }
    match v.get("confidence") {
        None | Some(JsonValue::Null) => {}
        Some(JsonValue::Num(c)) if *c > 0.0 && *c < 1.0 => options.confidence = *c,
        Some(_) => return Err(bad("'confidence' must be a number in (0, 1)".into())),
    }
    let perturb = match v.get("perturb") {
        None | Some(JsonValue::Null) => EnergyPerturbation::none(),
        Some(JsonValue::Str(spec)) => {
            EnergyPerturbation::parse(spec).map_err(|e| bad(e.to_string()))?
        }
        Some(_) => return Err(bad("'perturb' must be a spec string".into())),
    };
    Ok(DiffRequest {
        id: run.id,
        tenant: run.tenant,
        config: run.config,
        options,
        perturb,
    })
}

fn parse_observe(v: &JsonValue) -> Result<ObserveRequest, (ErrorCode, String)> {
    let bad = |msg: String| (ErrorCode::BadRequest, msg);
    if v.get("faults").is_some() || v.get("seed").is_some() {
        return Err(bad(
            "observe requests take no 'faults' or 'seed' (the sweep needs a clean cell)".into(),
        ));
    }
    // An observe names its cell with exactly the run-request vocabulary;
    // the only extra knob is the probe-period grid.
    let run = parse_run(v)?;
    let periods = match v.get("periods") {
        None | Some(JsonValue::Null) => {
            crate::observe::parse_period_grid("4us..4ms").expect("default observe grid must parse")
        }
        Some(JsonValue::Str(spec)) => crate::observe::parse_period_grid(spec)
            .map_err(|e| bad(format!("bad 'periods': {e}")))?,
        Some(_) => return Err(bad("'periods' must be a grid spec string".into())),
    };
    if periods.len() > MAX_OBSERVE_REQUEST_PERIODS {
        return Err((
            ErrorCode::LimitExceeded,
            format!(
                "observe grid has {} periods; serve caps at {MAX_OBSERVE_REQUEST_PERIODS}",
                periods.len()
            ),
        ));
    }
    Ok(ObserveRequest {
        id: run.id,
        tenant: run.tenant,
        config: run.config,
        periods,
    })
}

/// Render an error response line (no trailing newline).
pub fn error_line(id: Option<&str>, code: ErrorCode, message: &str) -> String {
    let mut o = JsonObj::new();
    o.bool("ok", false).str("kind", "error");
    if let Some(id) = id {
        o.str("id", id);
    }
    o.str("code", code.as_str()).str("message", message);
    o.finish()
}

/// Render the admission acknowledgement for a run request.
pub fn accepted_line(id: &str, queue_depth: usize) -> String {
    let mut o = JsonObj::new();
    o.bool("ok", true)
        .str("kind", "accepted")
        .str("id", id)
        .u64("queue_depth", queue_depth as u64);
    o.finish()
}

/// Render the success response for a `verify` request.
pub fn verified_line(id: &str, methods: usize) -> String {
    let mut o = JsonObj::new();
    o.bool("ok", true)
        .str("kind", "verified")
        .str("id", id)
        .u64("methods", methods as u64);
    o.finish()
}

/// Render a completed run as one result line.
///
/// This is **the** canonical result payload: the batch-mode soak baseline
/// renders its locally computed [`RunSummary`] through this same function,
/// and the acceptance test compares the daemon's bytes against it. Every
/// field is a deterministic function of the summary.
pub fn result_line(id: &str, summary: &RunSummary) -> String {
    let r = &summary.report;
    let mut o = JsonObj::new();
    o.bool("ok", true).str("kind", "result").str("id", id);
    o.schema_version()
        .str("benchmark", &summary.config.benchmark)
        .str("vm", &summary.config.vm.to_string())
        .u64("heap_mb", u64::from(summary.config.heap_mb));
    match summary.result_checksum {
        Some(c) => o.raw("checksum", &c.to_string()),
        None => o.raw("checksum", "null"),
    };
    o.f64("duration_s", summary.duration_s())
        .f64("cpu_energy_j", r.cpu_energy.joules())
        .f64("mem_energy_j", r.mem_energy.joules())
        .f64("total_energy_j", r.total_energy.joules())
        .f64("edp_js", summary.edp())
        .u64("gc_collections", summary.gc.collections)
        .u64("bytecodes", summary.vm.bytecodes)
        .u64("allocations", summary.vm.allocations)
        .u64("fault_samples_dropped", r.faults.samples_dropped)
        .u64("fault_injected_oom", r.faults.injected_oom);
    o.finish()
}

/// Render the success response for a `diff` request: the full
/// [`RegressionReport`] JSON nested under `report`, with the gate verdict
/// hoisted to a top-level `clean` flag.
pub fn diff_line(id: &str, report: &RegressionReport) -> String {
    let mut o = JsonObj::new();
    o.bool("ok", true)
        .str("kind", "diff")
        .str("id", id)
        .bool("clean", report.clean())
        .raw("report", &report.to_json());
    o.finish()
}

/// Render the success response for an `observe` request: the full
/// [`ObserveReport`] JSON nested under `report`, with the recommended
/// probe period hoisted to a top-level field.
pub fn observe_line(id: &str, report: &ObserveReport) -> String {
    let mut o = JsonObj::new();
    o.bool("ok", true)
        .str("kind", "observe")
        .str("id", id)
        .u64("recommended_ns", report.recommended_ns)
        .raw("report", &report.to_json());
    o.finish()
}

/// Map a runner error to its taxonomy code.
pub fn code_for(err: &ExperimentError) -> ErrorCode {
    match err {
        ExperimentError::UnknownBenchmark(_) => ErrorCode::BadRequest,
        ExperimentError::Vm { .. } => ErrorCode::VmFault,
        ExperimentError::Quarantined { .. } => ErrorCode::Quarantined,
        ExperimentError::Panicked { .. } => ErrorCode::Panic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = JsonValue::parse(r#"{"a":[1,-2.5,true,null],"b":{"c":"x\ny"}}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &JsonValue::Arr(vec![
                JsonValue::Num(1.0),
                JsonValue::Num(-2.5),
                JsonValue::Bool(true),
                JsonValue::Null,
            ])
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn round_trips_the_emitter() {
        let mut o = JsonObj::new();
        o.str("name", "mol\"dyn\\")
            .u64("heap_mb", 32)
            .bool("ok", true)
            .f64("x", -1.5);
        let text = o.finish();
        let v = JsonValue::parse(&text).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("mol\"dyn\\"));
        assert_eq!(v.get("heap_mb").unwrap().as_u64(), Some(32));
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("x"), Some(&JsonValue::Num(-1.5)));
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = JsonValue::parse(r#""\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "01a",
            "\"\\x\"",
            "{\"a\":1}x",
            "nan",
            "\"\u{1}\"",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
        // Nesting bomb is cut off, not a stack overflow.
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(JsonValue::parse(&deep).is_err());
    }

    #[test]
    fn parses_a_run_request_with_defaults() {
        let req = parse_request(r#"{"op":"run","id":"r1","tenant":"alice","benchmark":"_209_db"}"#)
            .unwrap();
        let Request::Run(run) = req else {
            panic!("expected run")
        };
        assert_eq!(run.id, "r1");
        assert_eq!(run.tenant, "alice");
        assert_eq!(run.config.heap_mb, 64);
        assert_eq!(run.config.vm, VmChoice::Jikes(CollectorKind::GenCopy));
        assert_eq!(run.config.scale, InputScale::Full);
        assert!(run.plan.is_none());
    }

    #[test]
    fn parses_faults_and_seed() {
        let req = parse_request(
            r#"{"op":"run","id":"r","tenant":"t","benchmark":"moldyn","collector":"semispace","heap_mb":32,"scale":"s10","faults":"oom@1","seed":9}"#,
        )
        .unwrap();
        let Request::Run(run) = req else {
            panic!("expected run")
        };
        let plan = run.plan.unwrap();
        assert_eq!(plan.fail_alloc_at, Some(1));
        assert_eq!(plan.seed, 9);
        assert_eq!(run.config.scale, InputScale::Reduced);
    }

    #[test]
    fn request_errors_carry_the_right_code() {
        let cases = [
            ("not json", ErrorCode::BadJson),
            (r#"{"op":"fly"}"#, ErrorCode::BadRequest),
            (r#"{"id":"x"}"#, ErrorCode::BadRequest),
            (
                r#"{"op":"run","id":"r","tenant":"t"}"#,
                ErrorCode::BadRequest,
            ),
            (
                r#"{"op":"run","id":"r","tenant":"t","benchmark":"m","heap_mb":0}"#,
                ErrorCode::BadRequest,
            ),
            (
                r#"{"op":"run","id":"r","tenant":"t","benchmark":"m","faults":"zap=1"}"#,
                ErrorCode::BadRequest,
            ),
        ];
        for (line, code) in cases {
            let err = parse_request(line).expect_err(line);
            assert_eq!(err.0, code, "{line}");
        }
    }

    #[test]
    fn parses_a_diff_request_with_bounds() {
        let req = parse_request(
            r#"{"op":"diff","id":"d1","tenant":"alice","benchmark":"_209_db","scale":"s10","replicates":3,"resamples":64,"confidence":0.95,"seed":7,"perturb":"gc=+5%"}"#,
        )
        .unwrap();
        let Request::Diff(diff) = req else {
            panic!("expected diff")
        };
        assert_eq!(diff.id, "d1");
        assert_eq!(diff.config.benchmark, "_209_db");
        assert_eq!(diff.config.scale, InputScale::Reduced);
        assert_eq!(diff.options.replicates, 3);
        assert_eq!(diff.options.resamples, 64);
        assert_eq!(diff.options.confidence, 0.95);
        assert_eq!(diff.options.seed, 7);
        assert!(!diff.perturb.is_none());

        for bad in [
            // replicates over the inline-execution cap
            r#"{"op":"diff","id":"d","tenant":"t","benchmark":"m","replicates":17}"#,
            r#"{"op":"diff","id":"d","tenant":"t","benchmark":"m","resamples":0}"#,
            r#"{"op":"diff","id":"d","tenant":"t","benchmark":"m","confidence":1.5}"#,
            r#"{"op":"diff","id":"d","tenant":"t","benchmark":"m","perturb":"warp=+5%"}"#,
            r#"{"op":"diff","id":"d","tenant":"t","benchmark":"m","faults":"noise=0.1"}"#,
        ] {
            let err = parse_request(bad).expect_err(bad);
            assert_eq!(err.0, ErrorCode::BadRequest, "{bad}");
        }
    }

    #[test]
    fn parses_an_observe_request_with_grid_cap() {
        let req = parse_request(
            r#"{"op":"observe","id":"o1","tenant":"alice","benchmark":"_209_db","scale":"s10","periods":"4us,40us"}"#,
        )
        .unwrap();
        let Request::Observe(obs) = req else {
            panic!("expected observe")
        };
        assert_eq!(obs.id, "o1");
        assert_eq!(obs.config.benchmark, "_209_db");
        assert_eq!(obs.config.scale, InputScale::Reduced);
        assert_eq!(obs.periods, vec![4_000, 40_000]);

        // The default grid is 4us..4ms — four decade points, exactly the cap.
        let req = parse_request(r#"{"op":"observe","id":"o2","tenant":"alice","benchmark":"m"}"#)
            .unwrap();
        let Request::Observe(obs) = req else {
            panic!("expected observe")
        };
        assert_eq!(obs.periods, vec![4_000, 40_000, 400_000, 4_000_000]);

        // One period over the serve cap: typed as a limit, not a bad request.
        let err = parse_request(
            r#"{"op":"observe","id":"o","tenant":"t","benchmark":"m","periods":"1us,2us,3us,4us,5us"}"#,
        )
        .expect_err("grid over cap");
        assert_eq!(err.0, ErrorCode::LimitExceeded);

        for bad in [
            r#"{"op":"observe","id":"o","tenant":"t","benchmark":"m","faults":"noise=0.1"}"#,
            r#"{"op":"observe","id":"o","tenant":"t","benchmark":"m","seed":7}"#,
            r#"{"op":"observe","id":"o","tenant":"t","benchmark":"m","periods":"0ns"}"#,
            r#"{"op":"observe","id":"o","tenant":"t","benchmark":"m","periods":7}"#,
        ] {
            let err = parse_request(bad).expect_err(bad);
            assert_eq!(err.0, ErrorCode::BadRequest, "{bad}");
        }
    }

    #[test]
    fn response_lines_are_parseable_json() {
        let e = error_line(Some("r1"), ErrorCode::QueueFull, "busy");
        let v = JsonValue::parse(&e).unwrap();
        assert_eq!(v.get("code").unwrap().as_str(), Some("queue_full"));
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(false)));
        let a = accepted_line("r1", 3);
        let v = JsonValue::parse(&a).unwrap();
        assert_eq!(v.get("queue_depth").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn result_line_is_deterministic_for_a_summary() {
        let mut cfg = ExperimentConfig::jikes("_209_db", CollectorKind::SemiSpace, 32);
        cfg.scale = InputScale::Reduced;
        let summary = cfg.run().expect("runs");
        let a = result_line("id-1", &summary);
        let b = result_line("id-1", &summary);
        assert_eq!(a, b);
        let v = JsonValue::parse(&a).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("result"));
        assert_eq!(v.get("benchmark").unwrap().as_str(), Some("_209_db"));
        assert!(v.get("total_energy_j").is_some());
    }
}
