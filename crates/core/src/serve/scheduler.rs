//! Admission control and fair cross-tenant scheduling.
//!
//! One bounded admission queue feeds one executor thread, which drains it
//! in tenant round-robin order and submits each round as a batch to the
//! [`SupervisedRunner`](crate::SupervisedRunner)'s work-stealing pool.
//! Admission decisions (queue-full, quarantine, draining) are made under
//! one lock on the reader thread of whichever connection submitted the
//! request, so every rejection is immediate and carries an exact reason.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};

use vmprobe_power::FaultPlan;
use vmprobe_telemetry::{CounterId, HistId, Telemetry};

use super::protocol::ErrorCode;
use super::quarantine::{Gate, QuarantineBook, TenantStanding};
use super::session::Outbox;
use crate::sweep::lock_unpoisoned;
use crate::ExperimentConfig;

/// One admitted experiment request, waiting for the executor.
#[derive(Debug, Clone)]
pub struct Job {
    /// Client-chosen request id (echoed on the result line).
    pub id: String,
    /// Submitting tenant.
    pub tenant: String,
    /// The experiment to run (envelope already applied).
    pub config: ExperimentConfig,
    /// Per-request master fault plan, if any (envelope already applied).
    pub plan: Option<FaultPlan>,
    /// Where the result line goes.
    pub outbox: Arc<Outbox>,
}

#[derive(Debug, Default)]
struct State {
    /// Per-tenant FIFO queues; `BTreeMap` so round-robin order is the
    /// deterministic lexicographic tenant order, not hash order.
    queues: BTreeMap<String, VecDeque<Job>>,
    /// Jobs across all queues (the bounded quantity).
    total: usize,
    /// Tenant served last; the next round starts strictly after it.
    rr_last: Option<String>,
    /// Admission clock: run-request admission attempts seen so far.
    seq: u64,
    /// Draining: admit nothing, executor exits once queues are empty.
    draining: bool,
    book: QuarantineBook,
}

/// A point-in-time view of the scheduler for `/status`.
#[derive(Debug, Clone)]
pub struct SchedulerStatus {
    /// Jobs currently queued across all tenants.
    pub queued: usize,
    /// Run-request admission attempts seen so far (the quarantine clock).
    pub admitted_seq: u64,
    /// Whether the daemon is draining.
    pub draining: bool,
    /// Per-tenant queue depths, lexicographic order.
    pub tenant_queues: Vec<(String, usize)>,
    /// Tenants with failures on record or under quarantine.
    pub standings: Vec<TenantStanding>,
}

/// The daemon's admission queue (see module docs).
#[derive(Debug)]
pub struct Scheduler {
    state: Mutex<State>,
    ready: Condvar,
    cap: usize,
    telemetry: Telemetry,
}

impl Scheduler {
    /// A scheduler admitting at most `cap` queued jobs, quarantining
    /// tenants per `threshold`/`cooldown` (see
    /// [`QuarantineBook::new`]).
    pub fn new(cap: usize, threshold: u32, cooldown: u64, telemetry: Telemetry) -> Self {
        Self {
            state: Mutex::new(State {
                book: QuarantineBook::new(threshold, cooldown),
                ..State::default()
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
            telemetry,
        }
    }

    /// Admit one run request, or reject it with a taxonomy code. On
    /// success returns the total queue depth *after* admission (reported
    /// back to the client on its `accepted` line).
    ///
    /// Every call — admitted or refused — advances the admission clock
    /// that quarantine cooldowns are measured in.
    pub fn admit(&self, job: Job) -> Result<usize, (ErrorCode, String)> {
        let mut s = lock_unpoisoned(&self.state);
        s.seq += 1;
        let now = s.seq;
        if s.draining {
            self.telemetry.count(CounterId::ServeRejectedDraining, 1);
            return Err((
                ErrorCode::Draining,
                "daemon is draining for shutdown".into(),
            ));
        }
        match s.book.gate(&job.tenant, now) {
            Gate::Refused { release_at } => {
                self.telemetry.count(CounterId::ServeRejectedQuarantine, 1);
                return Err((
                    ErrorCode::Quarantined,
                    format!(
                        "tenant '{}' is quarantined until admission seq {release_at} (now {now})",
                        job.tenant
                    ),
                ));
            }
            Gate::Admit { released } => {
                if released {
                    self.telemetry.count(CounterId::ServeQuarantineReleased, 1);
                }
            }
        }
        if s.total >= self.cap {
            self.telemetry.count(CounterId::ServeRejectedQueueFull, 1);
            return Err((
                ErrorCode::QueueFull,
                format!("admission queue is full ({} jobs); retry later", s.total),
            ));
        }
        s.queues
            .entry(job.tenant.clone())
            .or_default()
            .push_back(job);
        s.total += 1;
        let depth = s.total;
        self.telemetry.count(CounterId::ServeRequests, 1);
        self.telemetry
            .observe(HistId::ServeQueueDepth, depth as u64);
        self.ready.notify_all();
        Ok(depth)
    }

    /// Block until work is available, then return up to `max` jobs —
    /// at most one per tenant per round-robin lap, laps starting strictly
    /// after the previously served tenant — or `None` once the daemon is
    /// draining and every queue is empty (the executor's exit signal).
    pub fn next_batch(&self, max: usize) -> Option<Vec<Job>> {
        let mut s = lock_unpoisoned(&self.state);
        loop {
            if s.total > 0 {
                return Some(Self::take_round_robin(&mut s, max.max(1)));
            }
            if s.draining {
                return None;
            }
            s = self.ready.wait(s).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn take_round_robin(s: &mut State, max: usize) -> Vec<Job> {
        let mut batch = Vec::new();
        while batch.len() < max && s.total > 0 {
            // One lap: tenants strictly after the round-robin cursor, in
            // lexicographic order, wrapping around.
            let tenants: Vec<String> = {
                let after: Vec<String> = match &s.rr_last {
                    Some(last) => s
                        .queues
                        .range::<String, _>((
                            std::ops::Bound::Excluded(last.clone()),
                            std::ops::Bound::Unbounded,
                        ))
                        .map(|(t, _)| t.clone())
                        .collect(),
                    None => Vec::new(),
                };
                let before = s
                    .queues
                    .keys()
                    .filter(|t| !after.contains(t))
                    .cloned()
                    .collect::<Vec<_>>();
                after.into_iter().chain(before).collect()
            };
            let mut took_any = false;
            for tenant in tenants {
                if batch.len() >= max {
                    break;
                }
                let Some(queue) = s.queues.get_mut(&tenant) else {
                    continue;
                };
                if let Some(job) = queue.pop_front() {
                    if queue.is_empty() {
                        s.queues.remove(&tenant);
                    }
                    s.total -= 1;
                    s.rr_last = Some(tenant);
                    batch.push(job);
                    took_any = true;
                }
            }
            if !took_any {
                break;
            }
        }
        batch
    }

    /// Record one delivered result for quarantine accounting. Bumps the
    /// entered counter when this failure tips the tenant over the
    /// threshold; returns that release sequence for logging.
    pub fn record_outcome(&self, tenant: &str, ok: bool) -> Option<u64> {
        let mut s = lock_unpoisoned(&self.state);
        let now = s.seq;
        let entered = s.book.record(tenant, ok, now);
        if entered.is_some() {
            self.telemetry.count(CounterId::ServeQuarantineEntered, 1);
        }
        entered
    }

    /// Stop admitting (new run requests get `draining`) and wake the
    /// executor so it can finish the backlog and exit.
    pub fn drain(&self) {
        let mut s = lock_unpoisoned(&self.state);
        s.draining = true;
        self.ready.notify_all();
    }

    /// Whether [`Scheduler::drain`] has been called.
    pub fn is_draining(&self) -> bool {
        lock_unpoisoned(&self.state).draining
    }

    /// Point-in-time status for the `status` op.
    pub fn status(&self) -> SchedulerStatus {
        let s = lock_unpoisoned(&self.state);
        SchedulerStatus {
            queued: s.total,
            admitted_seq: s.seq,
            draining: s.draining,
            tenant_queues: s.queues.iter().map(|(t, q)| (t.clone(), q.len())).collect(),
            standings: s.book.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmprobe_heap::CollectorKind;

    fn job(tenant: &str, id: &str) -> Job {
        Job {
            id: id.to_owned(),
            tenant: tenant.to_owned(),
            config: ExperimentConfig::jikes("_209_db", CollectorKind::SemiSpace, 32),
            plan: None,
            outbox: Arc::new(Outbox::new(8, Telemetry::disabled())),
        }
    }

    fn sched(cap: usize) -> Scheduler {
        Scheduler::new(cap, 0, 0, Telemetry::counters_only())
    }

    #[test]
    fn bounded_queue_rejects_with_queue_full() {
        let s = sched(2);
        assert_eq!(s.admit(job("a", "1")).unwrap(), 1);
        assert_eq!(s.admit(job("a", "2")).unwrap(), 2);
        let (code, _) = s.admit(job("b", "3")).unwrap_err();
        assert_eq!(code, ErrorCode::QueueFull);
        assert_eq!(s.telemetry.counter(CounterId::ServeRejectedQueueFull), 1);
    }

    #[test]
    fn round_robin_interleaves_tenants() {
        let s = sched(16);
        for i in 0..3 {
            s.admit(job("alice", &format!("a{i}"))).unwrap();
        }
        for i in 0..3 {
            s.admit(job("bob", &format!("b{i}"))).unwrap();
        }
        let ids: Vec<String> = s.next_batch(6).unwrap().into_iter().map(|j| j.id).collect();
        // Alternating laps, not alice's whole backlog first.
        assert_eq!(ids, ["a0", "b0", "a1", "b1", "a2", "b2"]);
    }

    #[test]
    fn round_robin_cursor_rotates_across_batches() {
        let s = sched(16);
        s.admit(job("alice", "a0")).unwrap();
        s.admit(job("bob", "b0")).unwrap();
        s.admit(job("carol", "c0")).unwrap();
        let first = s.next_batch(1).unwrap();
        assert_eq!(first[0].id, "a0");
        // Next lap starts after alice even though alice-adjacent work
        // could be re-queued.
        s.admit(job("alice", "a1")).unwrap();
        let second = s.next_batch(2).unwrap();
        let ids: Vec<&str> = second.iter().map(|j| j.id.as_str()).collect();
        assert_eq!(ids, ["b0", "c0"]);
    }

    #[test]
    fn draining_rejects_and_terminates_the_feed() {
        let s = sched(4);
        s.admit(job("a", "1")).unwrap();
        s.drain();
        let (code, _) = s.admit(job("a", "2")).unwrap_err();
        assert_eq!(code, ErrorCode::Draining);
        // Backlog still drains…
        assert_eq!(s.next_batch(4).unwrap().len(), 1);
        // …then the executor is told to exit.
        assert!(s.next_batch(4).is_none());
    }

    #[test]
    fn quarantined_tenant_is_rejected_then_auto_released() {
        let s = Scheduler::new(16, 2, 3, Telemetry::counters_only());
        // Two failures → quarantine (threshold 2).
        s.admit(job("p", "1")).unwrap(); // seq 1
        s.record_outcome("p", false);
        s.admit(job("p", "2")).unwrap(); // seq 2
        assert_eq!(s.record_outcome("p", false), Some(2 + 3));
        let (code, msg) = s.admit(job("p", "3")).unwrap_err(); // seq 3
        assert_eq!(code, ErrorCode::Quarantined);
        assert!(msg.contains("seq 5"), "release seq is visible: {msg}");
        // Other tenants advance the admission clock and stay admitted.
        s.admit(job("q", "4")).unwrap(); // seq 4
                                         // seq 5 reaches release_at 5: the quarantine auto-releases.
        assert!(s.admit(job("p", "5")).is_ok());
        assert_eq!(s.telemetry.counter(CounterId::ServeQuarantineEntered), 1);
        assert_eq!(s.telemetry.counter(CounterId::ServeQuarantineReleased), 1);
    }

    #[test]
    fn quarantine_release_happens_exactly_at_the_release_seq() {
        let s = Scheduler::new(16, 1, 4, Telemetry::counters_only());
        s.admit(job("p", "1")).unwrap(); // seq 1
        assert_eq!(s.record_outcome("p", false), Some(1 + 4));
        for i in 2..5 {
            // seqs 2, 3, 4 — all before release_at 5.
            let (code, _) = s.admit(job("p", &i.to_string())).unwrap_err();
            assert_eq!(code, ErrorCode::Quarantined, "seq {i}");
        }
        // seq 5 == release_at → admitted, counted as a release.
        assert!(s.admit(job("p", "5")).is_ok());
        assert_eq!(s.telemetry.counter(CounterId::ServeQuarantineReleased), 1);
    }

    #[test]
    fn status_reports_queues_and_standings() {
        let s = Scheduler::new(16, 2, 3, Telemetry::counters_only());
        s.admit(job("a", "1")).unwrap();
        s.admit(job("a", "2")).unwrap();
        s.record_outcome("b", false);
        let status = s.status();
        assert_eq!(status.queued, 2);
        assert_eq!(status.tenant_queues, vec![("a".to_owned(), 2)]);
        assert_eq!(status.standings.len(), 1);
        assert_eq!(status.standings[0].tenant, "b");
        assert!(!status.draining);
    }
}
