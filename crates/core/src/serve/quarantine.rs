//! Per-tenant quarantine: negative caching at the *tenant* level.
//!
//! The supervised runner already quarantines individual configurations
//! (negative memo entries). The daemon adds one level above it: a tenant
//! whose requests keep failing is throttled as a whole, so a poisoned
//! client cannot monopolize the worker pool by cycling through endless
//! variations of a broken request.
//!
//! The state machine (per tenant):
//!
//! ```text
//!           failure (streak < threshold)
//!          ┌─────────────┐
//!          ▼             │
//!   ┌───────────┐ streak == threshold  ┌─────────────┐
//!   │  Healthy  │─────────────────────▶│ Quarantined │
//!   └───────────┘                      └─────────────┘
//!          ▲        admission seq >= release_at            │
//!          └───────────────────────────────────────────────┘
//!                      (auto-release, streak reset)
//! ```
//!
//! Time is measured in **admission sequence numbers**, not wall-clock:
//! only run-request admissions advance the clock, so cooldowns elapse
//! deterministically — the acceptance test can count requests instead of
//! sleeping, and a replayed request stream reproduces the exact same
//! admission decisions.

use std::collections::BTreeMap;

/// Verdict for one admission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// The tenant is healthy (or its cooldown just elapsed): admit.
    Admit {
        /// The tenant left quarantine on this very check.
        released: bool,
    },
    /// The tenant is quarantined until the given admission sequence.
    Refused {
        /// First admission sequence at which the tenant will be released.
        release_at: u64,
    },
}

/// One tenant's standing with the daemon.
#[derive(Debug, Clone, Copy, Default)]
struct Standing {
    /// Consecutive failed results (successes reset it).
    failure_streak: u32,
    /// `Some(seq)` while quarantined: released at admission seq `seq`.
    release_at: Option<u64>,
}

/// A row of the `/status` quarantine table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStanding {
    /// Tenant name.
    pub tenant: String,
    /// Current consecutive-failure streak.
    pub failure_streak: u32,
    /// Release sequence while quarantined.
    pub release_at: Option<u64>,
}

/// The per-tenant failure ledger and quarantine clock (see module docs).
/// The `Default` book never quarantines (threshold 0).
#[derive(Debug, Default)]
pub struct QuarantineBook {
    /// Consecutive failures before a tenant is quarantined (0 = never).
    threshold: u32,
    /// Admission sequences a quarantine lasts.
    cooldown: u64,
    tenants: BTreeMap<String, Standing>,
}

impl QuarantineBook {
    /// A book that quarantines after `threshold` consecutive failures for
    /// `cooldown` admission sequences. `threshold == 0` disables
    /// quarantining entirely.
    pub fn new(threshold: u32, cooldown: u64) -> Self {
        Self {
            threshold,
            cooldown,
            tenants: BTreeMap::new(),
        }
    }

    /// Gate one admission attempt by `tenant` at admission seq `now`.
    /// Auto-releases an elapsed quarantine (resetting the streak).
    pub fn gate(&mut self, tenant: &str, now: u64) -> Gate {
        let Some(standing) = self.tenants.get_mut(tenant) else {
            return Gate::Admit { released: false };
        };
        match standing.release_at {
            Some(release_at) if now < release_at => Gate::Refused { release_at },
            Some(_) => {
                *standing = Standing::default();
                Gate::Admit { released: true }
            }
            None => Gate::Admit { released: false },
        }
    }

    /// Record one result for `tenant` at admission seq `now`. Returns the
    /// release sequence when this failure *enters* quarantine.
    pub fn record(&mut self, tenant: &str, ok: bool, now: u64) -> Option<u64> {
        if self.threshold == 0 {
            return None;
        }
        let standing = self.tenants.entry(tenant.to_owned()).or_default();
        if ok {
            standing.failure_streak = 0;
            return None;
        }
        if standing.release_at.is_some() {
            // Results for cells admitted before the quarantine began do
            // not extend it.
            return None;
        }
        standing.failure_streak += 1;
        if standing.failure_streak >= self.threshold {
            let release_at = now + self.cooldown;
            standing.release_at = Some(release_at);
            return Some(release_at);
        }
        None
    }

    /// Every tenant with a non-default standing, for `/status`.
    pub fn snapshot(&self) -> Vec<TenantStanding> {
        self.tenants
            .iter()
            .filter(|(_, s)| s.failure_streak > 0 || s.release_at.is_some())
            .map(|(tenant, s)| TenantStanding {
                tenant: tenant.clone(),
                failure_streak: s.failure_streak,
                release_at: s.release_at,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_tenants_always_admit() {
        let mut book = QuarantineBook::new(2, 4);
        assert_eq!(book.gate("a", 0), Gate::Admit { released: false });
        assert_eq!(book.record("a", true, 1), None);
        assert_eq!(book.gate("a", 2), Gate::Admit { released: false });
        assert!(book.snapshot().is_empty());
    }

    #[test]
    fn exact_threshold_enters_quarantine() {
        let mut book = QuarantineBook::new(2, 4);
        assert_eq!(book.record("p", false, 1), None, "one failure is free");
        assert_eq!(book.record("p", false, 2), Some(6), "second hits threshold");
        assert_eq!(book.gate("p", 3), Gate::Refused { release_at: 6 });
        assert_eq!(book.gate("p", 5), Gate::Refused { release_at: 6 });
        // Other tenants are unaffected.
        assert_eq!(book.gate("q", 5), Gate::Admit { released: false });
    }

    #[test]
    fn cooldown_elapses_on_the_admission_clock() {
        let mut book = QuarantineBook::new(1, 3);
        assert_eq!(book.record("p", false, 10), Some(13));
        assert_eq!(book.gate("p", 12), Gate::Refused { release_at: 13 });
        assert_eq!(book.gate("p", 13), Gate::Admit { released: true });
        // Released clean: the streak restarted.
        assert_eq!(book.record("p", false, 14), Some(17));
    }

    #[test]
    fn success_resets_the_streak() {
        let mut book = QuarantineBook::new(3, 4);
        assert_eq!(book.record("t", false, 1), None);
        assert_eq!(book.record("t", false, 2), None);
        assert_eq!(book.record("t", true, 3), None);
        assert_eq!(book.record("t", false, 4), None, "streak restarted");
        assert_eq!(book.record("t", false, 5), None);
        assert_eq!(book.record("t", false, 6), Some(10));
    }

    #[test]
    fn straggler_failures_do_not_extend_quarantine() {
        let mut book = QuarantineBook::new(1, 5);
        assert_eq!(book.record("p", false, 3), Some(8));
        // A cell admitted before the quarantine finishes late and fails:
        // the release sequence must not move.
        assert_eq!(book.record("p", false, 4), None);
        assert_eq!(book.gate("p", 8), Gate::Admit { released: true });
    }

    #[test]
    fn threshold_zero_disables_quarantine() {
        let mut book = QuarantineBook::new(0, 4);
        for seq in 0..20 {
            assert_eq!(book.record("t", false, seq), None);
            assert_eq!(book.gate("t", seq), Gate::Admit { released: false });
        }
    }

    #[test]
    fn snapshot_lists_standings() {
        let mut book = QuarantineBook::new(2, 4);
        book.record("a", false, 1);
        book.record("b", false, 1);
        book.record("b", false, 2);
        let snap = book.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].tenant, "a");
        assert_eq!(snap[0].failure_streak, 1);
        assert_eq!(snap[0].release_at, None);
        assert_eq!(snap[1].tenant, "b");
        assert_eq!(snap[1].release_at, Some(6));
    }
}
