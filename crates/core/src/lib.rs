//! `vmprobe` — real-system-style characterization of virtual-machine
//! energy and power behaviour, in simulation.
//!
//! This crate is the top of the reproduction stack for Contreras &
//! Martonosi, *"Techniques for Real-System Characterization of Java
//! Virtual Machine Energy and Power Behavior"* (IISWC 2006). It wires the
//! substrates together — bytecode workloads, the managed runtime, the five
//! collectors, the two platform models and the sampling measurement rig —
//! into the paper's experimental space, and regenerates every figure and
//! in-text table of the paper's evaluation.
//!
//! # Quick start
//!
//! ```
//! use vmprobe::{ExperimentConfig, Runner};
//! use vmprobe_heap::CollectorKind;
//! use vmprobe_power::ComponentId;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut runner = Runner::new();
//! let mut cfg = ExperimentConfig::jikes("_209_db", CollectorKind::GenCopy, 32);
//! cfg.scale = vmprobe_workloads::InputScale::Reduced; // quick demo run
//! let run = runner.run(&cfg)?;
//! println!(
//!     "GC consumed {:.1}% of CPU energy over {:.1} ms",
//!     100.0 * run.fraction(ComponentId::Gc),
//!     1e3 * run.duration_s(),
//! );
//! # Ok(())
//! # }
//! ```
//!
//! # Figure index
//!
//! See [`figures`] for one regeneration entry point per paper artifact
//! (Figures 1 and 5–11, plus the in-text tables T1–T5 catalogued in
//! `DESIGN.md`).

#![warn(missing_docs)]
pub mod cache;
pub mod diff;
mod experiment;
pub mod figures;
pub mod json;
pub mod observe;
mod runner;
mod scale;
#[cfg(unix)]
pub mod serve;
pub mod sweep;
mod table;

pub use cache::{CacheLookup, CacheStats, ExperimentCache};
pub use diff::{
    bootstrap_ci, golden_cells, BootstrapCi, ComponentDelta, DiffEngine, DiffOptions, DiffSide,
    RegressionReport,
};
pub use experiment::{ExperimentConfig, ExperimentError, RunSummary, VmChoice};
pub use observe::{
    parse_period_grid, period_label, ObserveEngine, ObservePoint, ObserveReport, PeriodSummary,
    MAX_OBSERVE_PERIODS,
};
pub use runner::{FailedCell, QuarantinedConfig, RunReport, Runner, SupervisedRunner};
pub use scale::{heap_bytes, P6_HEAPS_MB, PXA_HEAPS_MB, SIM_SCALE};
pub use sweep::{default_jobs, ShardedMemo, SweepError, WorkStealingPool};
pub use table::Table;
pub use vmprobe_power::{FaultPlan, FaultSpecError, FaultStats, ProbeSpec, ProbeStats};
pub use vmprobe_telemetry::{
    validate_json, CounterId, HistId, NoopSink, Sink, Snapshot, SpanTrace, StderrSink, Telemetry,
    SCHEMA_VERSION,
};
