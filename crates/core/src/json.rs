//! A tiny hand-rolled JSON emitter.
//!
//! The build is fully offline (no serde_json), so the machine-readable
//! [`RunReport`](crate::RunReport) is serialized with this minimal writer.
//! It only needs to *emit* — there is no parser — and values are limited to
//! what the report uses: strings, integers, floats, booleans, arrays and
//! nested objects.

use std::fmt::Write as _;

/// Escape a string for a JSON string literal (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Incremental JSON object writer.
///
/// ```
/// use vmprobe::json::JsonObj;
/// let mut o = JsonObj::new();
/// o.str("name", "moldyn").u64("heap_mb", 32).bool("ok", true);
/// assert_eq!(o.finish(), r#"{"name":"moldyn","heap_mb":32,"ok":true}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonObj {
    buf: String,
}

impl JsonObj {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(&mut self, k: &str) -> &mut String {
        if self.buf.is_empty() {
            self.buf.push('{');
        } else {
            self.buf.push(',');
        }
        let _ = write!(self.buf, "\"{}\":", escape(k));
        &mut self.buf
    }

    /// Stamp the suite-wide artifact schema version
    /// ([`vmprobe_telemetry::SCHEMA_VERSION`]) as the next field. Every
    /// machine-readable artifact — the `RunReport` JSON, the Chrome trace
    /// and the Prometheus metrics — carries this same constant, and they
    /// bump in lockstep (`tests/telemetry_determinism.rs` enforces it).
    pub fn schema_version(&mut self) -> &mut Self {
        self.u64(
            "schema_version",
            u64::from(vmprobe_telemetry::SCHEMA_VERSION),
        )
    }

    /// Add a string field.
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        let e = escape(v);
        let _ = write!(self.key(k), "\"{e}\"");
        self
    }

    /// Add an unsigned integer field.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        let _ = write!(self.key(k), "{v}");
        self
    }

    /// Add a float field (non-finite values render as `null`).
    pub fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        if v.is_finite() {
            let _ = write!(self.key(k), "{v}");
        } else {
            self.key(k).push_str("null");
        }
        self
    }

    /// Add a boolean field.
    pub fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k).push_str(if v { "true" } else { "false" });
        self
    }

    /// Add a pre-rendered JSON value (nested object or array) verbatim.
    pub fn raw(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k).push_str(v);
        self
    }

    /// Add an array field from pre-rendered JSON values.
    pub fn array(&mut self, k: &str, items: impl IntoIterator<Item = String>) -> &mut Self {
        let body: Vec<String> = items.into_iter().collect();
        let rendered = format!("[{}]", body.join(","));
        self.raw(k, &rendered)
    }

    /// Close the object and return the JSON text.
    pub fn finish(mut self) -> String {
        if self.buf.is_empty() {
            self.buf.push('{');
        }
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn empty_object_renders() {
        assert_eq!(JsonObj::new().finish(), "{}");
    }

    #[test]
    fn nested_objects_and_arrays() {
        let mut inner = JsonObj::new();
        inner.u64("n", 3);
        let mut o = JsonObj::new();
        o.raw("inner", &inner.finish())
            .array("xs", ["1".to_owned(), "2".to_owned()])
            .f64("nan", f64::NAN);
        assert_eq!(o.finish(), r#"{"inner":{"n":3},"xs":[1,2],"nan":null}"#);
    }
}
