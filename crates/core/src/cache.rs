//! Persistent, content-addressed experiment result store.
//!
//! The PR-2 [`ShardedMemo`](crate::ShardedMemo) deduplicates work *within*
//! one process; this layer persists finished cells *across* processes, so a
//! figure campaign re-run after a code-free restart (or an interrupted
//! sweep resumed with `--cache-dir`) recomputes only what is missing.
//!
//! # Entry format
//!
//! One file per cell under the cache directory, named by a 128-bit hash of
//! the cell's full cache key ([`ExperimentConfig::key`] plus the runner's
//! fault-plan suffix). Entries are line-oriented text:
//!
//! ```text
//! vmprobe-cache 2
//! fingerprint <build fingerprint>
//! key <escaped full key>
//! body <line count> <fnv1a-64 checksum of the body>
//! <body lines…>
//! ```
//!
//! Every `f64` in the body is stored as the hexadecimal form of its IEEE
//! bit pattern, so a restored summary is *bit-identical* to the computed
//! one — the property that lets a warm cache re-render byte-identical
//! figures.
//!
//! # Invalidation and corruption
//!
//! A probe returns [`CacheLookup::Miss`] when the entry is absent or
//! *stale* (written by a different build fingerprint or schema, or a
//! filename-hash collision whose stored key differs), and
//! [`CacheLookup::Corrupt`] when the entry exists for this key but fails
//! its checksum or does not parse. Neither is ever an error: the runner
//! recomputes the cell and overwrites the entry. Writes are atomic
//! (unique temp file in the cache directory, then `rename`), so a killed
//! sweep never leaves a truncated entry a later resume would trust.

use std::collections::{HashMap, VecDeque};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use vmprobe_heap::{CollectorKind, GcStats};
use vmprobe_platform::PlatformKind;
use vmprobe_power::{
    ComponentId, ComponentProfile, EnergyDelay, FaultStats, Joules, PowerSample, ProbeSpec,
    ProbeStats, Report, Seconds, Watts,
};
use vmprobe_telemetry::{SpanTrace, VirtualSpan};
use vmprobe_vm::{CompilerStats, VmStats};
use vmprobe_workloads::InputScale;

use crate::experiment::{ExperimentConfig, RunSummary, VmChoice};
use crate::sweep::lock_unpoisoned;

/// On-disk format version; bumping it invalidates every existing entry.
/// v2 added the measurement-mode tokens on the `config` line and the
/// `probe` ledger line (observer-effect mode).
const FORMAT_VERSION: u32 = 2;

/// Default bound on the in-memory layer (entries, not bytes), sized so a
/// full figure campaign fits while a multi-day soak cannot grow without
/// limit.
const DEFAULT_MEM_CAPACITY: usize = 4096;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8], seed: u64) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The build fingerprint baked into every entry: format version, telemetry
/// schema version and crate version. Any change to one of them makes every
/// existing entry stale (a silent miss), never a parse error.
pub fn build_fingerprint() -> String {
    format!(
        "fmt{}|schema{}|v{}",
        FORMAT_VERSION,
        vmprobe_telemetry::SCHEMA_VERSION,
        env!("CARGO_PKG_VERSION")
    )
}

/// Outcome of one cache probe.
#[derive(Debug, Clone)]
pub enum CacheLookup {
    /// A valid entry for this exact key and build; compute is skipped.
    Hit(Arc<RunSummary>),
    /// No entry, or a stale one (different build fingerprint or a
    /// filename collision with a different key).
    Miss,
    /// An entry exists for this key but failed its checksum or did not
    /// parse; the caller recomputes and overwrites it.
    Corrupt,
}

/// Monotonic counters describing cache traffic. Hits, misses and corrupt
/// probes partition the probe count; every probe happens exactly once per
/// unique cell key (inside the memo's in-flight window), so all of these
/// are deterministic across `--jobs` settings.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    stores: AtomicU64,
    evictions: AtomicU64,
}

impl CacheStats {
    /// Probes served from a valid entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Probes that found nothing usable (absent or stale).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Probes that found a damaged entry (recomputed, never fatal).
    pub fn corrupt(&self) -> u64 {
        self.corrupt.load(Ordering::Relaxed)
    }

    /// Entries written (or overwritten) on disk.
    pub fn stores(&self) -> u64 {
        self.stores.load(Ordering::Relaxed)
    }

    /// Entries dropped from the bounded in-memory layer.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

/// Bounded in-memory layer: FIFO by first insertion, so a long campaign's
/// resident set stops growing at the capacity bound while the disk layer
/// keeps everything.
#[derive(Debug, Default)]
struct MemLayer {
    map: HashMap<String, Arc<RunSummary>>,
    order: VecDeque<String>,
    capacity: usize,
}

impl MemLayer {
    /// Insert and evict down to capacity; returns how many entries fell out.
    fn insert(&mut self, key: &str, value: Arc<RunSummary>) -> u64 {
        if self.capacity == 0 {
            return 0;
        }
        if self.map.insert(key.to_owned(), value).is_none() {
            self.order.push_back(key.to_owned());
        }
        let mut evicted = 0;
        while self.map.len() > self.capacity {
            match self.order.pop_front() {
                Some(old) => {
                    self.map.remove(&old);
                    evicted += 1;
                }
                None => break,
            }
        }
        evicted
    }
}

/// Process-wide temp-file sequence. Shared across *every*
/// [`ExperimentCache`] instance, because the serving daemon (and tests)
/// may open several handles onto the same directory: with a per-instance
/// counter, two handles in one process would both write `.tmp-<pid>-0`
/// and one handle's rename could publish the other's half-written bytes.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Disk-backed, content-addressed store for finished experiment cells.
///
/// Layered *under* the in-process memo by the runner: the memo still
/// deduplicates concurrent duplicates, the cache persists results across
/// processes. Lookups and stores never fail the sweep — I/O problems and
/// damaged entries degrade to recomputation.
#[derive(Debug)]
pub struct ExperimentCache {
    dir: PathBuf,
    fingerprint: String,
    mem: Mutex<MemLayer>,
    stats: CacheStats,
}

impl ExperimentCache {
    /// Open (creating if needed) a cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when the directory cannot be created —
    /// the only fatal path in the module, because a cache the user asked
    /// for but that cannot persist anything is a misconfiguration.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            fingerprint: build_fingerprint(),
            mem: Mutex::new(MemLayer {
                capacity: DEFAULT_MEM_CAPACITY,
                ..MemLayer::default()
            }),
            stats: CacheStats::default(),
        })
    }

    /// Bound the in-memory layer to `capacity` entries (0 disables it;
    /// the disk layer is unaffected).
    #[must_use]
    pub fn with_mem_capacity(self, capacity: usize) -> Self {
        lock_unpoisoned(&self.mem).capacity = capacity;
        self
    }

    /// Replace the entry fingerprint with an explicit `label`.
    ///
    /// Entries written by a handle only satisfy lookups from a handle with
    /// the same fingerprint, so two handles with different labels partition
    /// one directory into independent namespaces. `vmprobe-diff` uses this
    /// to address a baseline build's entries (written under that build's
    /// [`build_fingerprint`]) from the candidate binary.
    #[must_use]
    pub fn with_fingerprint(mut self, label: &str) -> Self {
        self.fingerprint = label.to_owned();
        self
    }

    /// The fingerprint stamped into (and required of) entries.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Traffic counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// File an entry for `key` lives in.
    pub fn entry_path(&self, key: &str) -> PathBuf {
        let lo = fnv1a(key.as_bytes(), FNV_OFFSET);
        let hi = fnv1a(key.as_bytes(), FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15);
        self.dir.join(format!("{hi:016x}{lo:016x}.entry"))
    }

    /// Probe for `key`, checking the in-memory layer first, then disk.
    pub fn lookup(&self, key: &str) -> CacheLookup {
        if let Some(hit) = lock_unpoisoned(&self.mem).map.get(key) {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            return CacheLookup::Hit(Arc::clone(hit));
        }
        let bytes = match fs::read(self.entry_path(key)) {
            Ok(b) => b,
            Err(_) => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                return CacheLookup::Miss;
            }
        };
        // The file exists, so anything unreadable from here on is damage,
        // including bit flips that break the UTF-8 encoding itself.
        let Ok(text) = String::from_utf8(bytes) else {
            self.stats.corrupt.fetch_add(1, Ordering::Relaxed);
            return CacheLookup::Corrupt;
        };
        match parse_entry(&text, key, &self.fingerprint) {
            Parsed::Valid(summary) => {
                let summary = Arc::new(*summary);
                let ev = lock_unpoisoned(&self.mem).insert(key, Arc::clone(&summary));
                self.stats.evictions.fetch_add(ev, Ordering::Relaxed);
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                CacheLookup::Hit(summary)
            }
            Parsed::Stale => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                CacheLookup::Miss
            }
            Parsed::Corrupt => {
                self.stats.corrupt.fetch_add(1, Ordering::Relaxed);
                CacheLookup::Corrupt
            }
        }
    }

    /// Persist a freshly computed summary under `key` (atomic write:
    /// unique temp file, then rename). I/O failure is swallowed — the
    /// sweep's results are already in memory and must not be lost to a
    /// full disk.
    ///
    /// Safe under a *shared* cache directory: the temp name is unique per
    /// (process, process-wide sequence), and `rename` atomically replaces
    /// any existing entry, so two threads — or two processes — storing
    /// the same key concurrently both succeed and readers only ever see
    /// a complete entry (one of the two, whole).
    pub fn store(&self, key: &str, summary: &Arc<RunSummary>) {
        let text = render_entry(key, &self.fingerprint, summary);
        let path = self.entry_path(key);
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let ok = fs::write(&tmp, text).is_ok() && fs::rename(&tmp, &path).is_ok();
        if ok {
            self.stats.stores.fetch_add(1, Ordering::Relaxed);
        } else {
            let _ = fs::remove_file(&tmp);
        }
        let ev = lock_unpoisoned(&self.mem).insert(key, Arc::clone(summary));
        self.stats.evictions.fetch_add(ev, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Entry codec
// ---------------------------------------------------------------------------

enum Parsed {
    Valid(Box<RunSummary>),
    Stale,
    Corrupt,
}

/// Escape a string into a single whitespace-free token.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            ' ' => out.push_str("\\s"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next()? {
            '\\' => out.push('\\'),
            's' => out.push(' '),
            'n' => out.push('\n'),
            _ => return None,
        }
    }
    Some(out)
}

fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn p_f64(t: Option<&str>) -> Option<f64> {
    u64::from_str_radix(t?, 16).ok().map(f64::from_bits)
}

fn p_u64(t: Option<&str>) -> Option<u64> {
    t?.parse().ok()
}

fn p_usize(t: Option<&str>) -> Option<usize> {
    t?.parse().ok()
}

fn p_i64(t: Option<&str>) -> Option<i64> {
    t?.parse().ok()
}

fn p_bool(t: Option<&str>) -> Option<bool> {
    match t? {
        "t" => Some(true),
        "f" => Some(false),
        _ => None,
    }
}

fn platform_tag(p: PlatformKind) -> &'static str {
    match p {
        PlatformKind::PentiumM => "p6",
        PlatformKind::Pxa255 => "pxa",
    }
}

fn p_platform(t: Option<&str>) -> Option<PlatformKind> {
    match t? {
        "p6" => Some(PlatformKind::PentiumM),
        "pxa" => Some(PlatformKind::Pxa255),
        _ => None,
    }
}

fn scale_tag(s: InputScale) -> &'static str {
    match s {
        InputScale::Full => "full",
        InputScale::Reduced => "reduced",
    }
}

fn p_scale(t: Option<&str>) -> Option<InputScale> {
    match t? {
        "full" => Some(InputScale::Full),
        "reduced" => Some(InputScale::Reduced),
        _ => None,
    }
}

fn vm_tag(vm: &VmChoice) -> String {
    match vm {
        VmChoice::Jikes(c) => format!(
            "jikes:{}",
            match c {
                CollectorKind::SemiSpace => "ss",
                CollectorKind::MarkSweep => "ms",
                CollectorKind::GenCopy => "gencopy",
                CollectorKind::GenMs => "genms",
                CollectorKind::KaffeIncremental => "kaffeinc",
            }
        ),
        VmChoice::Kaffe => "kaffe".to_owned(),
    }
}

fn p_vm(t: Option<&str>) -> Option<VmChoice> {
    match t? {
        "kaffe" => Some(VmChoice::Kaffe),
        "jikes:ss" => Some(VmChoice::Jikes(CollectorKind::SemiSpace)),
        "jikes:ms" => Some(VmChoice::Jikes(CollectorKind::MarkSweep)),
        "jikes:gencopy" => Some(VmChoice::Jikes(CollectorKind::GenCopy)),
        "jikes:genms" => Some(VmChoice::Jikes(CollectorKind::GenMs)),
        "jikes:kaffeinc" => Some(VmChoice::Jikes(CollectorKind::KaffeIncremental)),
        _ => None,
    }
}

/// Component labels are the static registry in [`ComponentId::ALL`]; a
/// restored span or sample must point back into that registry (the label
/// is a `&'static str`). An unknown label marks the entry corrupt.
fn p_component(t: Option<&str>) -> Option<ComponentId> {
    let label = t?;
    ComponentId::ALL
        .iter()
        .copied()
        .find(|c| c.label() == label)
}

fn encode_body(s: &RunSummary) -> Vec<String> {
    let mut b = Vec::new();
    let c = &s.config;
    b.push(format!(
        "config {} {} {} {} {} {} {} {} {}",
        esc(&c.benchmark),
        vm_tag(&c.vm),
        c.heap_mb,
        platform_tag(c.platform),
        scale_tag(c.scale),
        if c.trace_power { "t" } else { "f" },
        if c.record_spans { "t" } else { "f" },
        c.probe.daq_period_ns,
        if c.probe.nontransparent { "t" } else { "f" },
    ));
    b.push(match s.result_checksum {
        Some(v) => format!("checksum {v}"),
        None => "checksum none".to_owned(),
    });

    let r = &s.report;
    b.push(format!(
        "report {} {} {} {} {} {} {}",
        platform_tag(r.platform),
        f64_hex(r.duration.seconds()),
        f64_hex(r.cpu_energy.joules()),
        f64_hex(r.mem_energy.joules()),
        f64_hex(r.total_energy.joules()),
        f64_hex(r.edp.joule_seconds()),
        f64_hex(r.clean_total_energy.joules()),
    ));
    b.push(encode_faults("faults", &r.faults));
    b.push(format!(
        "probe {} {} {} {} {} {}",
        r.probe.port_stores,
        r.probe.daq_samples_paid,
        r.probe.hpm_reads_paid,
        r.probe.cycles_paid,
        r.probe.transition_windows,
        f64_hex(r.probe.transition_energy_j),
    ));
    b.push(format!("components {}", r.components.len()));
    for (id, p) in &r.components {
        b.push(format!(
            "c {} {} {} {} {} {} {} {} {} {}",
            esc(id.label()),
            f64_hex(p.time.seconds()),
            f64_hex(p.energy.joules()),
            f64_hex(p.mem_energy.joules()),
            f64_hex(p.avg_power.watts()),
            f64_hex(p.peak_power.watts()),
            p.instructions,
            f64_hex(p.ipc),
            f64_hex(p.l2_miss_rate),
            p.samples,
        ));
    }

    let g = &s.gc;
    b.push(format!(
        "gc {} {} {} {} {} {} {} {} {} {}",
        g.collections,
        g.minor_collections,
        g.major_collections,
        g.increments,
        g.total_pause_cycles,
        g.total_copied_bytes,
        g.total_marked_objects,
        g.total_swept_objects,
        g.barrier_remembers,
        g.barrier_stores,
    ));
    let v = &s.vm;
    b.push(format!(
        "vm {} {} {} {} {} {} {} {} {} {}",
        v.bytecodes,
        v.calls,
        v.allocations,
        v.classes_loaded,
        v.classfile_bytes_loaded,
        v.gc_requests,
        v.gc_increments,
        v.quanta,
        v.controller_activations,
        v.max_stack_depth,
    ));
    let k = &s.compiler;
    b.push(format!(
        "compiler {} {} {} {}",
        k.baseline_compiles, k.jit_compiles, k.opt_compiles, k.bytes_compiled,
    ));
    b.push(format!(
        "alloc {} {}",
        s.total_alloc_bytes, s.live_bytes_end
    ));

    match &s.power_trace {
        None => b.push("trace none".to_owned()),
        Some(t) => {
            b.push(format!("trace {}", t.len()));
            for p in t {
                b.push(format!(
                    "s {} {} {} {}",
                    f64_hex(p.t),
                    f64_hex(p.cpu_w),
                    f64_hex(p.mem_w),
                    esc(p.component.label()),
                ));
            }
        }
    }

    match &s.spans {
        None => b.push("spans none".to_owned()),
        Some(t) => {
            b.push(format!(
                "spans {} {} {} {}",
                f64_hex(t.clock_hz()),
                t.max_depth(),
                t.total_cycles(),
                t.len(),
            ));
            for sp in t.spans() {
                b.push(format!(
                    "v {} {} {} {}",
                    esc(sp.name),
                    sp.start_cycles,
                    sp.end_cycles,
                    sp.depth,
                ));
            }
        }
    }
    b
}

fn encode_faults(tag: &str, f: &FaultStats) -> String {
    format!(
        "{tag} {} {} {} {} {} {} {} {} {} {} {} {}",
        f.samples_total,
        f.samples_dropped,
        f.samples_duplicated,
        f.port_glitches,
        f.wraps_unwrapped,
        f.injected_oom,
        f.budget_exhausted,
        f64_hex(f.dropped_energy_j),
        f64_hex(f.duplicated_energy_j),
        f64_hex(f.noise_abs_j),
        f64_hex(f.drift_abs_j),
        f64_hex(f.misattributed_energy_j),
    )
}

fn decode_faults<'a>(mut f: impl Iterator<Item = &'a str>) -> Option<FaultStats> {
    Some(FaultStats {
        samples_total: p_u64(f.next())?,
        samples_dropped: p_u64(f.next())?,
        samples_duplicated: p_u64(f.next())?,
        port_glitches: p_u64(f.next())?,
        wraps_unwrapped: p_u64(f.next())?,
        injected_oom: p_u64(f.next())?,
        budget_exhausted: p_u64(f.next())?,
        dropped_energy_j: p_f64(f.next())?,
        duplicated_energy_j: p_f64(f.next())?,
        noise_abs_j: p_f64(f.next())?,
        drift_abs_j: p_f64(f.next())?,
        misattributed_energy_j: p_f64(f.next())?,
    })
}

/// One body line, split on single spaces, with the leading tag consumed
/// and checked.
fn fields<'a>(line: &'a str, tag: &str) -> Option<impl Iterator<Item = &'a str>> {
    let mut it = line.split(' ');
    (it.next()? == tag).then_some(it)
}

fn decode_body(lines: &[&str]) -> Option<RunSummary> {
    let mut it = lines.iter().copied();

    let mut f = fields(it.next()?, "config")?;
    let config = ExperimentConfig {
        benchmark: unesc(f.next()?)?,
        vm: p_vm(f.next())?,
        heap_mb: u32::try_from(p_u64(f.next())?).ok()?,
        platform: p_platform(f.next())?,
        scale: p_scale(f.next())?,
        trace_power: p_bool(f.next())?,
        record_spans: p_bool(f.next())?,
        // Not persisted: verification is host-side observation that
        // cannot change an accepted run's summary, so restored configs
        // always read the default.
        verify: true,
        probe: ProbeSpec {
            daq_period_ns: p_u64(f.next())?,
            nontransparent: p_bool(f.next())?,
        },
    };

    let mut f = fields(it.next()?, "checksum")?;
    let result_checksum = match f.next()? {
        "none" => None,
        v => Some(p_i64(Some(v))?),
    };

    let mut f = fields(it.next()?, "report")?;
    let platform = p_platform(f.next())?;
    let duration = Seconds::new(p_f64(f.next())?);
    let cpu_energy = Joules::new(p_f64(f.next())?);
    let mem_energy = Joules::new(p_f64(f.next())?);
    let total_energy = Joules::new(p_f64(f.next())?);
    let edp = EnergyDelay::new(p_f64(f.next())?);
    let clean_total_energy = Joules::new(p_f64(f.next())?);
    let faults = decode_faults(fields(it.next()?, "faults")?)?;
    let mut f = fields(it.next()?, "probe")?;
    let probe = ProbeStats {
        port_stores: p_u64(f.next())?,
        daq_samples_paid: p_u64(f.next())?,
        hpm_reads_paid: p_u64(f.next())?,
        cycles_paid: p_u64(f.next())?,
        transition_windows: p_u64(f.next())?,
        transition_energy_j: p_f64(f.next())?,
    };

    let mut f = fields(it.next()?, "components")?;
    let n_components = p_usize(f.next())?;
    let mut components = std::collections::BTreeMap::new();
    for _ in 0..n_components {
        let mut f = fields(it.next()?, "c")?;
        let id = p_component(f.next())?;
        let profile = ComponentProfile {
            time: Seconds::new(p_f64(f.next())?),
            energy: Joules::new(p_f64(f.next())?),
            mem_energy: Joules::new(p_f64(f.next())?),
            avg_power: Watts::new(p_f64(f.next())?),
            peak_power: Watts::new(p_f64(f.next())?),
            instructions: p_u64(f.next())?,
            ipc: p_f64(f.next())?,
            l2_miss_rate: p_f64(f.next())?,
            samples: p_u64(f.next())?,
        };
        components.insert(id, profile);
    }
    let report = Report {
        platform,
        components,
        duration,
        cpu_energy,
        mem_energy,
        total_energy,
        edp,
        clean_total_energy,
        faults,
        probe,
    };

    let mut f = fields(it.next()?, "gc")?;
    let gc = GcStats {
        collections: p_u64(f.next())?,
        minor_collections: p_u64(f.next())?,
        major_collections: p_u64(f.next())?,
        increments: p_u64(f.next())?,
        total_pause_cycles: p_u64(f.next())?,
        total_copied_bytes: p_u64(f.next())?,
        total_marked_objects: p_u64(f.next())?,
        total_swept_objects: p_u64(f.next())?,
        barrier_remembers: p_u64(f.next())?,
        barrier_stores: p_u64(f.next())?,
    };

    let mut f = fields(it.next()?, "vm")?;
    let vm = VmStats {
        bytecodes: p_u64(f.next())?,
        calls: p_u64(f.next())?,
        allocations: p_u64(f.next())?,
        classes_loaded: p_u64(f.next())?,
        classfile_bytes_loaded: p_u64(f.next())?,
        gc_requests: p_u64(f.next())?,
        gc_increments: p_u64(f.next())?,
        quanta: p_u64(f.next())?,
        controller_activations: p_u64(f.next())?,
        max_stack_depth: p_u64(f.next())?,
    };

    let mut f = fields(it.next()?, "compiler")?;
    let compiler = CompilerStats {
        baseline_compiles: p_u64(f.next())?,
        jit_compiles: p_u64(f.next())?,
        opt_compiles: p_u64(f.next())?,
        bytes_compiled: p_u64(f.next())?,
    };

    let mut f = fields(it.next()?, "alloc")?;
    let total_alloc_bytes = p_u64(f.next())?;
    let live_bytes_end = p_u64(f.next())?;

    let mut f = fields(it.next()?, "trace")?;
    let power_trace = match f.next()? {
        "none" => None,
        n => {
            let n = p_usize(Some(n))?;
            let mut samples = Vec::with_capacity(n);
            for _ in 0..n {
                let mut f = fields(it.next()?, "s")?;
                samples.push(PowerSample {
                    t: p_f64(f.next())?,
                    cpu_w: p_f64(f.next())?,
                    mem_w: p_f64(f.next())?,
                    component: p_component(f.next())?,
                });
            }
            Some(samples)
        }
    };

    let mut f = fields(it.next()?, "spans")?;
    let spans = match f.next()? {
        "none" => None,
        clock => {
            let clock_hz = p_f64(Some(clock))?;
            let max_depth = p_usize(f.next())?;
            let total_cycles = p_u64(f.next())?;
            let n = p_usize(f.next())?;
            let mut vs = Vec::with_capacity(n);
            for _ in 0..n {
                let mut f = fields(it.next()?, "v")?;
                vs.push(VirtualSpan {
                    name: p_component(f.next())?.label(),
                    start_cycles: p_u64(f.next())?,
                    end_cycles: p_u64(f.next())?,
                    depth: u8::try_from(p_u64(f.next())?).ok()?,
                });
            }
            Some(SpanTrace::from_parts(clock_hz, vs, max_depth, total_cycles))
        }
    };

    if it.next().is_some() {
        return None; // trailing garbage inside the checksummed region
    }
    Some(RunSummary {
        config,
        result_checksum,
        report,
        gc,
        vm,
        compiler,
        power_trace,
        total_alloc_bytes,
        live_bytes_end,
        spans,
    })
}

fn render_entry(key: &str, fingerprint: &str, summary: &RunSummary) -> String {
    let body = encode_body(summary);
    let body_text = body.join("\n");
    let mut out = String::with_capacity(body_text.len() + 128);
    out.push_str(&format!("vmprobe-cache {FORMAT_VERSION}\n"));
    out.push_str("fingerprint ");
    out.push_str(&esc(fingerprint));
    out.push('\n');
    out.push_str("key ");
    out.push_str(&esc(key));
    out.push('\n');
    out.push_str(&format!(
        "body {} {:016x}\n",
        body.len(),
        fnv1a(body_text.as_bytes(), FNV_OFFSET)
    ));
    out.push_str(&body_text);
    out.push('\n');
    out
}

fn parse_entry(text: &str, key: &str, fingerprint: &str) -> Parsed {
    let mut lines = text.lines();
    match lines.next() {
        Some(l) if l == format!("vmprobe-cache {FORMAT_VERSION}") => {}
        // A future (or past) format revision is a stale entry, not damage.
        Some(l) if l.starts_with("vmprobe-cache ") => return Parsed::Stale,
        _ => return Parsed::Corrupt,
    }
    let Some(fp) = lines
        .next()
        .and_then(|l| l.strip_prefix("fingerprint "))
        .and_then(unesc)
    else {
        return Parsed::Corrupt;
    };
    let Some(stored_key) = lines
        .next()
        .and_then(|l| l.strip_prefix("key "))
        .and_then(unesc)
    else {
        return Parsed::Corrupt;
    };
    if fp != fingerprint || stored_key != key {
        return Parsed::Stale;
    }
    let header = lines.next().and_then(|l| {
        let mut f = l.strip_prefix("body ")?.split(' ');
        let n = p_usize(f.next())?;
        let sum = u64::from_str_radix(f.next()?, 16).ok()?;
        f.next().is_none().then_some((n, sum))
    });
    let Some((n, expect_sum)) = header else {
        return Parsed::Corrupt;
    };
    let body: Vec<&str> = lines.collect();
    if body.len() != n {
        return Parsed::Corrupt;
    }
    let body_text = body.join("\n");
    if fnv1a(body_text.as_bytes(), FNV_OFFSET) != expect_sum {
        return Parsed::Corrupt;
    }
    match decode_body(&body) {
        Some(summary) => Parsed::Valid(Box::new(summary)),
        None => Parsed::Corrupt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn test_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "vmprobe-cache-test-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    /// A synthetic summary touching every field, with awkward float values
    /// (subnormal, negative-zero, extremes) that only a bit-exact codec
    /// survives.
    fn summary() -> RunSummary {
        let mut components = BTreeMap::new();
        components.insert(
            ComponentId::Application,
            ComponentProfile {
                time: Seconds::new(0.1 + 0.2), // 0.30000000000000004
                energy: Joules::new(1.0 / 3.0),
                mem_energy: Joules::new(f64::MIN_POSITIVE / 2.0),
                avg_power: Watts::new(-0.0),
                peak_power: Watts::new(12.5),
                instructions: u64::MAX,
                ipc: 0.87,
                l2_miss_rate: 1e-300,
                samples: 3,
            },
        );
        components.insert(
            ComponentId::Gc,
            ComponentProfile {
                time: Seconds::new(2e-3),
                energy: Joules::new(0.5),
                mem_energy: Joules::new(0.01),
                avg_power: Watts::new(9.0),
                peak_power: Watts::new(11.0),
                instructions: 42,
                ipc: 1.25,
                l2_miss_rate: 0.125,
                samples: 1,
            },
        );
        let mut trace = SpanTrace::new(1.6e9);
        trace.enter(ComponentId::Gc.label(), 100);
        trace.enter(ComponentId::ClassLoader.label(), 150);
        trace.exit(200);
        trace.exit(400);
        trace.finish(500);
        RunSummary {
            config: ExperimentConfig::jikes("_213_javac", CollectorKind::GenMs, 48)
                .with_trace()
                .with_probe(ProbeSpec::nontransparent_at(4_000)),
            result_checksum: Some(-12345),
            report: Report {
                platform: PlatformKind::PentiumM,
                components,
                duration: Seconds::new(1.2345678901234567),
                cpu_energy: Joules::new(10.0),
                mem_energy: Joules::new(0.7),
                total_energy: Joules::new(10.7),
                edp: EnergyDelay::new(13.2),
                clean_total_energy: Joules::new(10.7),
                faults: FaultStats {
                    samples_total: 9,
                    dropped_energy_j: 0.25,
                    ..FaultStats::default()
                },
                probe: ProbeStats {
                    port_stores: 6,
                    daq_samples_paid: 250,
                    hpm_reads_paid: 2,
                    cycles_paid: 48_000,
                    transition_windows: 5,
                    transition_energy_j: 1e-4,
                },
            },
            gc: GcStats {
                collections: 7,
                barrier_stores: 1 << 40,
                ..GcStats::default()
            },
            vm: VmStats {
                bytecodes: 123_456_789,
                max_stack_depth: 17,
                ..VmStats::default()
            },
            compiler: CompilerStats {
                jit_compiles: 11,
                bytes_compiled: 2048,
                ..CompilerStats::default()
            },
            power_trace: Some(vec![PowerSample {
                t: 40e-6,
                cpu_w: 7.25,
                mem_w: 0.5,
                component: ComponentId::Application,
            }]),
            total_alloc_bytes: 1 << 33,
            live_bytes_end: 12_345,
            spans: Some(trace),
        }
    }

    fn assert_bit_identical(a: &RunSummary, b: &RunSummary) {
        assert_eq!(a.config, b.config);
        assert_eq!(a.result_checksum, b.result_checksum);
        assert_eq!(a.report, b.report);
        // PartialEq on f64 treats -0.0 == 0.0; the bit patterns must match
        // too for byte-identical rendering.
        for (x, y) in a
            .report
            .components
            .values()
            .zip(b.report.components.values())
        {
            assert_eq!(x.avg_power.watts().to_bits(), y.avg_power.watts().to_bits());
            assert_eq!(x.time.seconds().to_bits(), y.time.seconds().to_bits());
        }
        assert_eq!(a.gc, b.gc);
        assert_eq!(a.vm, b.vm);
        assert_eq!(a.compiler, b.compiler);
        assert_eq!(a.power_trace, b.power_trace);
        assert_eq!(a.total_alloc_bytes, b.total_alloc_bytes);
        assert_eq!(a.live_bytes_end, b.live_bytes_end);
        assert_eq!(a.spans, b.spans);
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let dir = test_dir("roundtrip");
        let cache = ExperimentCache::open(&dir).unwrap();
        let s = Arc::new(summary());
        let key = s.config.key();
        assert!(matches!(cache.lookup(&key), CacheLookup::Miss));
        cache.store(&key, &s);
        // Through the in-memory layer…
        let CacheLookup::Hit(hit) = cache.lookup(&key) else {
            panic!("expected mem hit");
        };
        assert_bit_identical(&s, &hit);
        // …and through the disk codec alone.
        let cold = ExperimentCache::open(&dir).unwrap();
        let CacheLookup::Hit(hit) = cold.lookup(&key) else {
            panic!("expected disk hit");
        };
        assert_bit_identical(&s, &hit);
        assert_eq!(cold.stats().hits(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_flagged_never_fatal() {
        let dir = test_dir("corrupt");
        let cache = ExperimentCache::open(&dir).unwrap();
        let s = Arc::new(summary());
        let key = s.config.key();
        cache.store(&key, &s);
        // Flip bytes in the middle of the entry on disk.
        let path = cache.entry_path(&key);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        bytes[mid + 1] ^= 0xff;
        fs::write(&path, bytes).unwrap();
        let cold = ExperimentCache::open(&dir).unwrap();
        assert!(matches!(cold.lookup(&key), CacheLookup::Corrupt));
        assert_eq!(cold.stats().corrupt(), 1);
        // Recompute-and-overwrite heals the entry.
        cold.store(&key, &s);
        let fresh = ExperimentCache::open(&dir).unwrap();
        assert!(matches!(fresh.lookup(&key), CacheLookup::Hit(_)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn poisoned_index_lock_recovers_instead_of_panicking() {
        // Regression: the in-memory index used `.lock().unwrap()`, so one
        // panic while a guard was held poisoned the mutex and every later
        // lookup/store on the shared cache panicked too. `lock_unpoisoned`
        // recovers the guard — the index is a plain map, consistent at
        // every instruction boundary, so the poison flag is noise.
        let dir = test_dir("poison");
        let cache = ExperimentCache::open(&dir).unwrap();
        let s = Arc::new(summary());
        let key = s.config.key();
        cache.store(&key, &s);
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = cache.mem.lock().unwrap();
            panic!("poison the index lock");
        }));
        assert!(poison.is_err());
        assert!(
            cache.mem.is_poisoned(),
            "unwind must have poisoned the lock"
        );
        // Both the memory layer and the disk path still serve.
        assert!(matches!(cache.lookup(&key), CacheLookup::Hit(_)));
        cache.store(&key, &s);
        assert!(matches!(cache.lookup(&key), CacheLookup::Hit(_)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entry_is_corrupt() {
        let dir = test_dir("truncated");
        let cache = ExperimentCache::open(&dir).unwrap();
        let s = Arc::new(summary());
        let key = s.config.key();
        cache.store(&key, &s);
        let path = cache.entry_path(&key);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 2]).unwrap();
        let cold = ExperimentCache::open(&dir).unwrap();
        assert!(matches!(cold.lookup(&key), CacheLookup::Corrupt));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_fingerprint_is_a_silent_miss() {
        let dir = test_dir("stale");
        let cache = ExperimentCache::open(&dir).unwrap();
        let s = Arc::new(summary());
        let key = s.config.key();
        cache.store(&key, &s);
        let path = cache.entry_path(&key);
        let text = fs::read_to_string(&path).unwrap();
        let doctored = text.replacen(&build_fingerprint(), "fmt0|schema0|v0.0.0", 1);
        assert_ne!(text, doctored, "fingerprint line must be present");
        fs::write(&path, doctored).unwrap();
        let cold = ExperimentCache::open(&dir).unwrap();
        assert!(matches!(cold.lookup(&key), CacheLookup::Miss));
        assert_eq!(cold.stats().corrupt(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_collision_on_filename_is_detected() {
        let dir = test_dir("collision");
        let cache = ExperimentCache::open(&dir).unwrap();
        let s = Arc::new(summary());
        let key = s.config.key();
        cache.store(&key, &s);
        // Another key whose entry file we overwrite to simulate a 128-bit
        // hash collision: the stored key line disagrees, so the probe is a
        // miss, not a wrong answer.
        let text = fs::read_to_string(cache.entry_path(&key)).unwrap();
        let other = "some|other|key";
        fs::write(cache.entry_path(other), text).unwrap();
        let cold = ExperimentCache::open(&dir).unwrap();
        assert!(matches!(cold.lookup(other), CacheLookup::Miss));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mem_layer_is_bounded_fifo() {
        let dir = test_dir("bounded");
        let cache = ExperimentCache::open(&dir).unwrap().with_mem_capacity(2);
        let s = Arc::new(summary());
        cache.store("k1", &s);
        cache.store("k2", &s);
        cache.store("k3", &s);
        assert_eq!(cache.stats().evictions(), 1);
        // Evicted entries still hit from disk.
        assert!(matches!(cache.lookup("k1"), CacheLookup::Hit(_)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_stores_of_the_same_key_are_benign() {
        // The daemon shares one cache directory across tenants, each with
        // its own handle. Two threads hammering the same key through two
        // handles must never produce a torn entry, and a third handle
        // probing throughout must only ever see Miss (nothing published
        // yet) or a valid Hit — never Corrupt.
        let dir = test_dir("shared");
        let a = ExperimentCache::open(&dir).unwrap();
        let b = ExperimentCache::open(&dir).unwrap();
        // Reader bypasses both writers' in-memory layers: fresh handle per
        // probe would be slow, one handle with capacity 0 reads from disk.
        let reader = ExperimentCache::open(&dir).unwrap().with_mem_capacity(0);
        let s = Arc::new(summary());
        let key = s.config.key();
        std::thread::scope(|scope| {
            for cache in [&a, &b] {
                scope.spawn(|| {
                    for _ in 0..50 {
                        cache.store(&key, &s);
                    }
                });
            }
            scope.spawn(|| {
                for _ in 0..100 {
                    match reader.lookup(&key) {
                        CacheLookup::Hit(hit) => assert_bit_identical(&s, &hit),
                        CacheLookup::Miss => {}
                        CacheLookup::Corrupt => panic!("reader saw a torn entry"),
                    }
                }
            });
        });
        assert_eq!(a.stats().stores() + b.stats().stores(), 100);
        // After the dust settles the entry is valid on disk.
        let cold = ExperimentCache::open(&dir).unwrap();
        assert!(matches!(cold.lookup(&key), CacheLookup::Hit(_)));
        // No temp files were leaked by the race.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "leaked temp files: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn escaping_roundtrips_awkward_strings() {
        for s in ["a b", "a\\b", "line\nbreak", "", "plain", "\\s \\n"] {
            assert_eq!(unesc(&esc(s)).as_deref(), Some(s));
            assert!(!esc(s).contains(' '), "escaped form must be one token");
        }
        assert_eq!(unesc("bad\\x"), None);
    }
}
