//! Figure 11: Kaffe energy decomposition on the Intel PXA255 (s10 inputs).

use criterion::{criterion_group, criterion_main, Criterion};
use vmprobe::{figures, ExperimentConfig, Runner};
use vmprobe_bench::QUICK_PXA_HEAPS;
use vmprobe_power::ComponentId;

fn bench(c: &mut Criterion) {
    let mut runner = Runner::new().jobs(vmprobe::default_jobs());
    let fig = figures::fig11(
        &mut runner,
        &figures::pxa_benchmark_names(),
        &QUICK_PXA_HEAPS,
    )
    .expect("fig11 regenerates");
    println!("{fig}");

    // Sanity: on the embedded platform the class loader becomes a major
    // energy consumer (paper Section VI-E: 18% average).
    let cl_avg: f64 = fig
        .rows
        .iter()
        .map(|r| {
            r.fractions
                .iter()
                .find(|(c, _)| *c == ComponentId::ClassLoader)
                .map_or(0.0, |(_, v)| *v)
        })
        .sum::<f64>()
        / fig.rows.len() as f64;
    assert!(
        cl_avg > 0.05,
        "class loader should be a major consumer on the PXA255, got {cl_avg:.3}"
    );

    c.bench_function("fig11_one_pxa_run(javac,16MB,s10)", |b| {
        b.iter(|| {
            ExperimentConfig::kaffe_pxa("_213_javac", 16)
                .run()
                .expect("runs")
        });
    });
}

criterion_group! {
    name = benches;
    config = vmprobe_bench::criterion();
    targets = bench
}
criterion_main!(benches);
