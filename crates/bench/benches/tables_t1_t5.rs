//! In-text tables T1–T5: collector power, per-component IPC / L2 miss
//! rates, memory energy share, headline claims, and Kaffe summaries.

use criterion::{criterion_group, criterion_main, Criterion};
use vmprobe::{figures, Runner};
use vmprobe_bench::{QUICK_HEAPS, QUICK_PXA_HEAPS};
use vmprobe_heap::CollectorKind;

fn bench(c: &mut Criterion) {
    let mut runner = Runner::new().jobs(vmprobe::default_jobs());

    let t1 = figures::t1_collector_power(&mut runner, &QUICK_HEAPS).expect("t1");
    println!("{t1}");
    // Sanity: non-generational collectors draw less average GC power
    // (paper: MarkSweep 11.7 W is the coolest of the four).
    let power = |k: CollectorKind| t1.rows.iter().find(|(c, _)| *c == k).unwrap().1;
    assert!(
        power(CollectorKind::MarkSweep) <= power(CollectorKind::GenMs),
        "MarkSweep should draw no more GC power than GenMS"
    );

    let t2 = figures::t2_l2_ipc(&mut runner, &QUICK_HEAPS).expect("t2");
    println!("{t2}");

    let t3 = figures::t3_memory_energy(&mut runner, &QUICK_HEAPS).expect("t3");
    println!("{t3}");
    for (suite, frac) in &t3.rows {
        assert!(
            (0.01..0.20).contains(frac),
            "{suite}: memory energy share {frac:.3} outside plausible band"
        );
    }

    let t5 = figures::t5_kaffe(&mut runner, &QUICK_HEAPS, &QUICK_PXA_HEAPS).expect("t5");
    println!("{t5}");
    // Sanity: the class loader matters far more on the PXA255 than on P6.
    assert!(t5.pxa_fractions.1 > 3.0 * t5.p6_fractions.1);

    c.bench_function("t4_headlines_regeneration", |b| {
        // After the first call every underlying run is cached; this
        // benchmarks the aggregation pipeline.
        b.iter(|| figures::t4_headlines(&mut runner).expect("t4"));
    });
    let t4 = figures::t4_headlines(&mut runner).expect("t4");
    println!("{t4}");
}

criterion_group! {
    name = benches;
    config = vmprobe_bench::criterion();
    targets = bench
}
criterion_main!(benches);
