//! Figure 1: thermal trace with fan enabled/disabled and emergency
//! throttling, driven by a measured `_222_mpegaudio` power profile.

use criterion::{criterion_group, criterion_main, Criterion};
use vmprobe::{figures, Runner};

fn bench(c: &mut Criterion) {
    // Print the artifact once.
    let mut runner = Runner::new();
    let fig = figures::fig1(&mut runner).expect("fig1 regenerates");
    println!("{fig}");
    assert!(
        fig.throttle_onset_s.is_some(),
        "fan-off run must trip the throttle"
    );

    // Benchmark the thermal regeneration (the underlying run is cached, so
    // this measures the 2x600s thermal integration).
    c.bench_function("fig01_thermal_regeneration", |b| {
        b.iter(|| figures::fig1(&mut runner).expect("fig1"));
    });
}

criterion_group! {
    name = benches;
    config = vmprobe_bench::criterion();
    targets = bench
}
criterion_main!(benches);
