//! Substrate micro-benchmarks: how fast the simulator itself is.
//!
//! Not a paper artifact — these guard the performance of the pieces the
//! figure sweeps depend on (cache simulation, interpreter, collectors).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vmprobe_heap::{AllocRequest, CollectorKind, ObjectHeap, RootSet};
use vmprobe_platform::{Cache, CacheConfig, Machine, PlatformKind};

fn bench(c: &mut Criterion) {
    c.bench_function("cache_access_hit", |b| {
        let mut cache = Cache::new(CacheConfig {
            name: "L1D",
            size_bytes: 32 << 10,
            ways: 8,
            line_bytes: 64,
        });
        cache.access(0x1000);
        b.iter(|| black_box(cache.access(black_box(0x1000))));
    });

    c.bench_function("machine_load_l2_resident", |b| {
        let mut m = Machine::new(PlatformKind::PentiumM);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 64) % (256 << 10);
            m.load(0x1000_0000 + i);
            black_box(m.cycles())
        });
    });

    c.bench_function("semispace_collect_10k_objects", |b| {
        b.iter(|| {
            let mut heap = ObjectHeap::new();
            let mut plan = CollectorKind::SemiSpace.new_plan(8 << 20);
            let mut m = Machine::new(PlatformKind::PentiumM);
            let mut roots = Vec::new();
            for i in 0..10_000 {
                let id = plan
                    .alloc(&mut heap, AllocRequest::instance(0, 2, 2), &mut m)
                    .expect("fits");
                if i % 4 == 0 {
                    roots.push(id);
                }
            }
            let stats = plan.collect(&mut heap, &RootSet::from_refs(roots), &mut m);
            black_box(stats.live_objects)
        });
    });
}

criterion_group! {
    name = benches;
    config = vmprobe_bench::criterion();
    targets = bench
}
criterion_main!(benches);
