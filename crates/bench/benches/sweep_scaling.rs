//! Sweep-engine scaling: the Figure 6 grid at 1 worker vs all available
//! workers, plus the acceptance check that parallel output stays
//! bit-identical to serial.
//!
//! Each iteration uses a fresh runner (cold memo) so the pool actually
//! executes every cell. On a multi-core host the `jobs=N` variant should
//! regenerate the sweep several times faster than `jobs=1`; on a 1-core
//! host the two are equivalent (the pool inlines when it has one worker).

use criterion::{criterion_group, criterion_main, Criterion};
use vmprobe::{default_jobs, figures, Runner};
use vmprobe_bench::{QUICK_BENCHMARKS, QUICK_HEAPS};
use vmprobe_workloads::InputScale;

fn sweep(jobs: usize) -> String {
    let mut runner = Runner::new().jobs(jobs).scale(InputScale::Reduced);
    figures::fig6(&mut runner, &QUICK_BENCHMARKS, &QUICK_HEAPS)
        .expect("fig6 regenerates")
        .to_string()
}

fn bench(c: &mut Criterion) {
    let jobs = default_jobs();
    println!("available parallelism: {jobs}");
    assert_eq!(
        sweep(1),
        sweep(jobs),
        "parallel sweep output must be bit-identical to serial"
    );

    c.bench_function("fig06_sweep_jobs_1", |b| b.iter(|| sweep(1)));
    c.bench_function(&format!("fig06_sweep_jobs_{jobs}"), |b| {
        b.iter(|| sweep(jobs))
    });
}

criterion_group! {
    name = benches;
    config = vmprobe_bench::criterion();
    targets = bench
}
criterion_main!(benches);
