//! Figure 10: Kaffe energy-delay product vs heap on the Pentium M.

use criterion::{criterion_group, criterion_main, Criterion};
use vmprobe::{figures, ExperimentConfig, Runner};
use vmprobe_bench::{QUICK_BENCHMARKS, QUICK_HEAPS};

fn bench(c: &mut Criterion) {
    let mut runner = Runner::new().jobs(vmprobe::default_jobs());
    let fig =
        figures::fig10(&mut runner, &QUICK_BENCHMARKS, &QUICK_HEAPS).expect("fig10 regenerates");
    // Sanity: the paper finds Kaffe's EDP nearly flat across heap sizes
    // ("EDP changes little when increasing the heap size", Section VI-D).
    for curve in &fig.curves {
        let edps: Vec<f64> = curve.points.iter().map(|(_, e)| *e).collect();
        let (min, max) = edps
            .iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        assert!(
            max / min < 2.0,
            "{}: Kaffe EDP should be comparatively flat across heaps ({min:.4}..{max:.4})",
            curve.benchmark
        );
    }
    println!("{fig}");

    c.bench_function("fig10_one_kaffe_edp_point(db,64MB)", |b| {
        b.iter(|| ExperimentConfig::kaffe("_209_db", 64).run().expect("runs"));
    });
}

criterion_group! {
    name = benches;
    config = vmprobe_bench::criterion();
    targets = bench
}
criterion_main!(benches);
