//! Figure 9: Kaffe energy distribution on the Pentium M.

use criterion::{criterion_group, criterion_main, Criterion};
use vmprobe::{figures, ExperimentConfig, Runner};
use vmprobe_bench::{QUICK_BENCHMARKS, QUICK_HEAPS};

fn bench(c: &mut Criterion) {
    let mut runner = Runner::new().jobs(vmprobe::default_jobs());
    let fig =
        figures::fig9(&mut runner, &QUICK_BENCHMARKS, &QUICK_HEAPS).expect("fig9 regenerates");
    // Sanity: Kaffe's VM components are far less visible than Jikes's
    // (paper Section VI-D: GC ~7%, CL ~1%, JIT <1%).
    for row in &fig.rows {
        let monitored: f64 = row.fractions.iter().map(|(_, v)| v).sum();
        assert!(
            monitored < 0.5,
            "{}@{}: Kaffe VM components should not dominate ({monitored:.2})",
            row.benchmark,
            row.heap_mb
        );
    }
    println!("{fig}");

    c.bench_function("fig09_one_kaffe_run(javac,64MB)", |b| {
        b.iter(|| {
            ExperimentConfig::kaffe("_213_javac", 64)
                .run()
                .expect("runs")
        });
    });
}

criterion_group! {
    name = benches;
    config = vmprobe_bench::criterion();
    targets = bench
}
criterion_main!(benches);
