//! Figure 8: average and peak power per component under GenCopy.

use criterion::{criterion_group, criterion_main, Criterion};
use vmprobe::{figures, ExperimentConfig, Runner};
use vmprobe_bench::{QUICK_BENCHMARKS, QUICK_HEAPS};
use vmprobe_heap::CollectorKind;
use vmprobe_power::ComponentId;

fn bench(c: &mut Criterion) {
    let mut runner = Runner::new().jobs(vmprobe::default_jobs());
    let fig =
        figures::fig8(&mut runner, &QUICK_BENCHMARKS, &QUICK_HEAPS).expect("fig8 regenerates");
    let subset = fig.rows.clone();
    println!("{fig}");

    // Sanity: for GC-active benchmarks the collector is less power-hungry
    // than the application (paper Section VI-C).
    for row in &subset {
        let app = row
            .components
            .iter()
            .find(|(c, ..)| *c == ComponentId::Application);
        let gc = row.components.iter().find(|(c, ..)| *c == ComponentId::Gc);
        if let (Some(&(_, app_avg, _)), Some(&(_, gc_avg, _))) = (app, gc) {
            if gc_avg > 0.0 {
                assert!(
                    gc_avg < app_avg,
                    "{}: GC ({gc_avg:.1} W) should average below App ({app_avg:.1} W)",
                    row.benchmark
                );
            }
        }
    }

    c.bench_function("fig08_one_power_run(db,gencopy,64MB)", |b| {
        b.iter(|| {
            ExperimentConfig::jikes("_209_db", CollectorKind::GenCopy, 64)
                .run()
                .expect("runs")
        });
    });
}

criterion_group! {
    name = benches;
    config = vmprobe_bench::criterion();
    targets = bench
}
criterion_main!(benches);
