//! Figure 6: per-component energy decomposition (Jikes RVM + SemiSpace).
//!
//! Prints the decomposition for a representative benchmark/heap subset and
//! benchmarks the cost of one decomposition run (the paper's
//! `_213_javac @ 32 MB`, its headline 60%-JVM-energy configuration).

use criterion::{criterion_group, criterion_main, Criterion};
use vmprobe::{figures, ExperimentConfig, Runner};
use vmprobe_bench::{QUICK_BENCHMARKS, QUICK_HEAPS};
use vmprobe_heap::CollectorKind;

fn bench(c: &mut Criterion) {
    let mut runner = Runner::new().jobs(vmprobe::default_jobs());
    let fig =
        figures::fig6(&mut runner, &QUICK_BENCHMARKS, &QUICK_HEAPS).expect("fig6 regenerates");
    println!("{fig}");

    c.bench_function("fig06_one_decomposition_run(javac,ss,32MB)", |b| {
        b.iter(|| {
            ExperimentConfig::jikes("_213_javac", CollectorKind::SemiSpace, 32)
                .run()
                .expect("runs")
        });
    });
}

criterion_group! {
    name = benches;
    config = vmprobe_bench::criterion();
    targets = bench
}
criterion_main!(benches);
