//! Self-overhead of the telemetry layer: the Figure 6 quick grid with no
//! hub attached vs a full recording hub (counters, histograms, and
//! virtual + host span streams).
//!
//! Each iteration uses a fresh runner (cold memo) so every cell actually
//! executes and records. The two variants must render byte-identical
//! figure text — span recording charges zero simulated cycles — and the
//! timing gap between them is the telemetry tax that
//! `vmprobe-run --telemetry-overhead` reports (CI asserts it stays
//! under 5% on fig6).

use criterion::{criterion_group, criterion_main, Criterion};
use vmprobe::{figures, Runner, Telemetry};
use vmprobe_bench::{QUICK_BENCHMARKS, QUICK_HEAPS};
use vmprobe_workloads::InputScale;

fn sweep(telemetry: Telemetry) -> String {
    let mut runner = Runner::new()
        .scale(InputScale::Reduced)
        .with_telemetry(telemetry);
    figures::fig6(&mut runner, &QUICK_BENCHMARKS, &QUICK_HEAPS)
        .expect("fig6 regenerates")
        .to_string()
}

fn bench(c: &mut Criterion) {
    assert_eq!(
        sweep(Telemetry::disabled()),
        sweep(Telemetry::recording()),
        "instrumentation must not change figure output"
    );

    c.bench_function("fig06_sweep_telemetry_off", |b| {
        b.iter(|| sweep(Telemetry::disabled()))
    });
    c.bench_function("fig06_sweep_telemetry_recording", |b| {
        b.iter(|| sweep(Telemetry::recording()))
    });
}

criterion_group! {
    name = benches;
    config = vmprobe_bench::criterion();
    targets = bench
}
criterion_main!(benches);
