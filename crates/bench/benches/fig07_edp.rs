//! Figure 7: energy-delay product vs heap size for the four Jikes RVM
//! collectors.

use criterion::{criterion_group, criterion_main, Criterion};
use vmprobe::{figures, ExperimentConfig, Runner};
use vmprobe_bench::{QUICK_BENCHMARKS, QUICK_HEAPS};
use vmprobe_heap::CollectorKind;

fn bench(c: &mut Criterion) {
    let mut runner = Runner::new();
    let fig =
        figures::fig7(&mut runner, &QUICK_BENCHMARKS, &QUICK_HEAPS).expect("fig7 regenerates");
    println!("{fig}");

    // Sanity: generational wins at the smallest heap for the GC-heavy
    // benchmark (the paper's central EDP claim).
    let ss = fig
        .curve("_213_javac", CollectorKind::SemiSpace)
        .unwrap()
        .at(32)
        .unwrap();
    let genms = fig
        .curve("_213_javac", CollectorKind::GenMs)
        .unwrap()
        .at(32)
        .unwrap();
    assert!(genms < ss, "GenMS must beat SemiSpace for javac at 32MB");

    c.bench_function("fig07_one_edp_point(javac,genms,32MB)", |b| {
        b.iter(|| {
            ExperimentConfig::jikes("_213_javac", CollectorKind::GenMs, 32)
                .run()
                .expect("runs")
        });
    });
}

criterion_group! {
    name = benches;
    config = vmprobe_bench::criterion();
    targets = bench
}
criterion_main!(benches);
