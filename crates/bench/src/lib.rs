//! Shared helpers for the figure-regeneration benchmarks.
//!
//! Each criterion bench regenerates one paper artifact at a *reduced scope*
//! (a representative subset of benchmarks/heaps, so `cargo bench` finishes
//! in minutes) and prints the resulting rows once. The `figures` binary in
//! this crate regenerates every artifact at full scope; `EXPERIMENTS.md`
//! records its output against the paper.

use criterion::Criterion;

/// Reduced heap sweep used by the criterion benches (the full paper sweep
/// is run by the `figures` binary).
pub const QUICK_HEAPS: [u32; 3] = [32, 64, 128];

/// Reduced PXA255 heap sweep.
pub const QUICK_PXA_HEAPS: [u32; 2] = [16, 32];

/// Representative benchmark subset: the paper's three most-discussed
/// workloads plus one per remaining suite.
pub const QUICK_BENCHMARKS: [&str; 5] = ["_213_javac", "_209_db", "_222_mpegaudio", "fop", "euler"];

/// A criterion instance tuned for whole-experiment (multi-second) runs.
pub fn criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8))
        .warm_up_time(std::time::Duration::from_secs(1))
        .configure_from_args()
}
