//! Regenerate every figure and table of the paper's evaluation.
//!
//! ```text
//! figures [artifact...]
//!   artifacts: fig1 fig5 fig6 fig7 fig8 fig9 fig10 fig11 t1 t2 t3 t4 t5 | all
//! ```
//!
//! With no arguments, regenerates everything (several hundred simulated
//! runs; a few minutes in release mode). Underlying runs are cached and
//! shared between artifacts.

use std::process::ExitCode;

use vmprobe::{figures, Runner, P6_HEAPS_MB, PXA_HEAPS_MB};

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "all") {
        args = [
            "fig1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "t1", "t2", "t3",
            "t4", "t5",
        ]
        .map(String::from)
        .to_vec();
    }

    let mut runner = Runner::new().verbose(std::env::var_os("VMPROBE_VERBOSE").is_some());
    let all_names: Vec<&'static str> = vmprobe_workloads::all_benchmarks()
        .iter()
        .map(|b| b.name)
        .collect();

    for a in &args {
        let wall = std::time::Instant::now();
        let result: Result<String, vmprobe::ExperimentError> = match a.as_str() {
            "fig1" => figures::fig1(&mut runner).map(|f| f.to_string()),
            "fig5" => Ok(figures::fig5().to_string()),
            "fig6" => figures::fig6(&mut runner, &P6_HEAPS_MB).map(|f| f.to_string()),
            "fig7" => figures::fig7(&mut runner, &all_names, &P6_HEAPS_MB).map(|f| f.to_string()),
            "fig8" => figures::fig8(&mut runner, &P6_HEAPS_MB).map(|f| f.to_string()),
            "fig9" => figures::fig9(&mut runner, &P6_HEAPS_MB).map(|f| f.to_string()),
            "fig10" => figures::fig10(&mut runner, &P6_HEAPS_MB).map(|f| f.to_string()),
            "fig11" => figures::fig11(&mut runner, &PXA_HEAPS_MB).map(|f| f.to_string()),
            "t1" => figures::t1_collector_power(&mut runner, &P6_HEAPS_MB).map(|f| f.to_string()),
            "t2" => figures::t2_l2_ipc(&mut runner, &P6_HEAPS_MB).map(|f| f.to_string()),
            "t3" => figures::t3_memory_energy(&mut runner, &P6_HEAPS_MB).map(|f| f.to_string()),
            "t4" => figures::t4_headlines(&mut runner).map(|f| f.to_string()),
            "t5" => {
                figures::t5_kaffe(&mut runner, &P6_HEAPS_MB, &PXA_HEAPS_MB).map(|f| f.to_string())
            }
            other => {
                eprintln!("unknown artifact '{other}'");
                return ExitCode::FAILURE;
            }
        };
        match result {
            Ok(text) => {
                println!("{text}");
                println!(
                    "[{a} regenerated in {:.1?}; {} cumulative runs]\n",
                    wall.elapsed(),
                    runner.runs_executed()
                );
            }
            Err(e) => {
                eprintln!("{a} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
