//! Regenerate every figure and table of the paper's evaluation.
//!
//! ```text
//! figures [--jobs N] [artifact...]
//!   artifacts: fig1 fig5 fig6 fig7 fig8 fig9 fig10 fig11 t1 t2 t3 t4 t5 | all
//! ```
//!
//! With no arguments, regenerates everything (several hundred simulated
//! runs; a few minutes in release mode). Underlying runs are cached and
//! shared between artifacts. `--jobs N` sets the worker-thread count for
//! the parallel sweeps (default: available parallelism); the output is
//! bit-identical for every value of `N`.

use std::process::ExitCode;

use vmprobe::{default_jobs, figures, Runner, P6_HEAPS_MB, PXA_HEAPS_MB};

fn main() -> ExitCode {
    let mut jobs = default_jobs();
    let mut args = Vec::new();
    let mut raw = std::env::args().skip(1);
    while let Some(a) = raw.next() {
        match a.as_str() {
            "--jobs" | "-j" => {
                let Some(n) = raw.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--jobs expects a positive integer");
                    return ExitCode::FAILURE;
                };
                jobs = n;
            }
            _ => args.push(a),
        }
    }
    if args.is_empty() || args.iter().any(|a| a == "all") {
        args = [
            "fig1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "t1", "t2", "t3",
            "t4", "t5",
        ]
        .map(String::from)
        .to_vec();
    }

    let mut runner = Runner::new()
        .jobs(jobs)
        .verbose(std::env::var_os("VMPROBE_VERBOSE").is_some());
    let all_names = figures::all_benchmark_names();
    let pxa_names = figures::pxa_benchmark_names();

    for a in &args {
        let wall = std::time::Instant::now();
        let result: Result<String, vmprobe::ExperimentError> = match a.as_str() {
            "fig1" => figures::fig1(&mut runner).map(|f| f.to_string()),
            "fig5" => Ok(figures::fig5().to_string()),
            "fig6" => figures::fig6(&mut runner, &all_names, &P6_HEAPS_MB).map(|f| f.to_string()),
            "fig7" => figures::fig7(&mut runner, &all_names, &P6_HEAPS_MB).map(|f| f.to_string()),
            "fig8" => figures::fig8(&mut runner, &all_names, &P6_HEAPS_MB).map(|f| f.to_string()),
            "fig9" => figures::fig9(&mut runner, &all_names, &P6_HEAPS_MB).map(|f| f.to_string()),
            "fig10" => figures::fig10(&mut runner, &all_names, &P6_HEAPS_MB).map(|f| f.to_string()),
            "fig11" => {
                figures::fig11(&mut runner, &pxa_names, &PXA_HEAPS_MB).map(|f| f.to_string())
            }
            "t1" => figures::t1_collector_power(&mut runner, &P6_HEAPS_MB).map(|f| f.to_string()),
            "t2" => figures::t2_l2_ipc(&mut runner, &P6_HEAPS_MB).map(|f| f.to_string()),
            "t3" => figures::t3_memory_energy(&mut runner, &P6_HEAPS_MB).map(|f| f.to_string()),
            "t4" => figures::t4_headlines(&mut runner).map(|f| f.to_string()),
            "t5" => {
                figures::t5_kaffe(&mut runner, &P6_HEAPS_MB, &PXA_HEAPS_MB).map(|f| f.to_string())
            }
            other => {
                eprintln!("unknown artifact '{other}'");
                return ExitCode::FAILURE;
            }
        };
        match result {
            Ok(text) => {
                println!("{text}");
                println!(
                    "[{a} regenerated in {:.1?}; {} cumulative runs]\n",
                    wall.elapsed(),
                    runner.runs_executed()
                );
            }
            Err(e) => {
                eprintln!("{a} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
