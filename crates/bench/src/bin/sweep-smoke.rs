//! Engine A/B smoke benchmark: the Figure 6 quick grid on the register
//! engine vs the stack interpreter, with a bit-identity gate.
//!
//! ```text
//! sweep-smoke [--passes N] [--jobs N] [--out PATH]
//! ```
//!
//! Runs the reduced-scope fig6 sweep under both execution engines
//! (`VMPROBE_STACK_ENGINE` toggles the interpreter) at `--jobs 1` and
//! `--jobs N`, asserts all four outputs are byte-identical, then times
//! `--passes` cold passes per engine and writes a JSON record suitable
//! for the perf trajectory (`BENCH_sweep_scaling.json`). Exits non-zero
//! if any output diverges.

use std::process::ExitCode;
use std::time::Instant;

use vmprobe::{default_jobs, figures, json::JsonObj, Runner};
use vmprobe_bench::{QUICK_BENCHMARKS, QUICK_HEAPS};
use vmprobe_workloads::InputScale;

fn sweep(jobs: usize) -> String {
    let mut runner = Runner::new().jobs(jobs).scale(InputScale::Reduced);
    figures::fig6(&mut runner, &QUICK_BENCHMARKS, &QUICK_HEAPS)
        .expect("fig6 regenerates")
        .to_string()
}

/// Run one engine configuration: a correctness pass at 1 and `jobs`
/// workers (returning the sweep text) plus `passes` timed cold passes.
fn measure(stack_engine: bool, jobs: usize, passes: usize) -> (String, Vec<f64>) {
    // The engine switch is read per cell from the environment; flip it
    // here, before the sweep pool spawns its workers.
    if stack_engine {
        std::env::set_var("VMPROBE_STACK_ENGINE", "1");
    } else {
        std::env::remove_var("VMPROBE_STACK_ENGINE");
    }
    let serial = sweep(1);
    let parallel = sweep(jobs);
    assert_eq!(
        serial, parallel,
        "jobs=1 vs jobs={jobs} output diverged (stack_engine={stack_engine})"
    );
    let mut times = Vec::with_capacity(passes);
    for _ in 0..passes {
        let wall = Instant::now();
        let out = sweep(jobs);
        times.push(wall.elapsed().as_secs_f64());
        assert_eq!(out, serial, "timed pass output diverged");
    }
    (serial, times)
}

fn stats(obj: &mut JsonObj, key: &str, times: &[f64]) {
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    let min = times.iter().copied().fold(f64::INFINITY, f64::min);
    obj.f64(&format!("{key}_mean_s"), mean)
        .f64(&format!("{key}_min_s"), min)
        .array(
            &format!("{key}_passes_s"),
            times.iter().map(|t| format!("{t:.6}")),
        );
}

fn main() -> ExitCode {
    let mut passes = 3usize;
    let mut jobs = default_jobs();
    let mut out_path = String::from("BENCH_sweep_scaling.json");
    let mut raw = std::env::args().skip(1);
    while let Some(a) = raw.next() {
        let num = |raw: &mut dyn Iterator<Item = String>| {
            raw.next().and_then(|v| v.parse::<usize>().ok())
        };
        match a.as_str() {
            "--passes" => match num(&mut raw) {
                Some(n) if n > 0 => passes = n,
                _ => {
                    eprintln!("--passes expects a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" | "-j" => match num(&mut raw) {
                Some(n) if n > 0 => jobs = n,
                _ => {
                    eprintln!("--jobs expects a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match raw.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out expects a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    println!("fig6 quick grid, {passes} passes per engine, jobs={jobs}");
    let (reg_out, reg_times) = measure(false, jobs, passes);
    let (stack_out, stack_times) = measure(true, jobs, passes);
    let identical = reg_out == stack_out;
    if !identical {
        eprintln!("FAIL: register-engine sweep output differs from the stack interpreter");
    }

    let reg_mean = reg_times.iter().sum::<f64>() / reg_times.len() as f64;
    let stack_mean = stack_times.iter().sum::<f64>() / stack_times.len() as f64;
    let speedup = stack_mean / reg_mean;
    println!("stack interpreter: {stack_mean:.3} s mean");
    println!("register engine:   {reg_mean:.3} s mean");
    println!("speedup: {speedup:.2}x (bit-identical: {identical})");

    let mut obj = JsonObj::new();
    obj.schema_version()
        .str("bench", "fig6_quick_sweep")
        .str("scale", "reduced")
        .u64("jobs", jobs as u64)
        .u64("passes", passes as u64)
        .bool("bit_identical", identical)
        .f64("speedup", speedup);
    stats(&mut obj, "stack_engine", &stack_times);
    stats(&mut obj, "register_engine", &reg_times);
    if let Err(e) = std::fs::write(&out_path, obj.finish() + "\n") {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    if identical {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
