//! CPU timing specifications for the two boards the paper instruments.

use serde::{Deserialize, Serialize};

use crate::CacheConfig;

/// Which hardware platform a [`Machine`](crate::Machine) models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformKind {
    /// The paper's "P6": 1.6 GHz Pentium M development board, 32 KB L1I/L1D,
    /// 1 MB on-die L2, 512 MB DDR SDRAM.
    PentiumM,
    /// The paper's "DBPXA255": 400 MHz Intel PXA255 (XScale) development
    /// board, 32-way 32 KB I/D caches, no L2, 64 MB SDRAM. No hardware FPU —
    /// floating point is software-emulated, the mechanism behind the
    /// component-power inversion the paper reports in Section VI-E.
    Pxa255,
}

impl std::fmt::Display for PlatformKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PlatformKind::PentiumM => "Pentium M 1.6GHz (P6)",
            PlatformKind::Pxa255 => "Intel PXA255 400MHz (DBPXA255)",
        })
    }
}

/// Timing parameters of a CPU model.
///
/// Per-µop costs are *effective* cycles per retired operation and therefore
/// encode issue width (values below 1.0 on the 3-wide Pentium M). Miss
/// penalties are effective stall cycles after out-of-order overlap
/// (`PentiumM`) or in full (`Pxa255`, in-order single-issue).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CpuSpec {
    /// Which platform these parameters describe.
    pub kind: PlatformKind,
    /// Core clock frequency in hertz.
    pub freq_hz: f64,
    /// Effective cycles per integer ALU operation.
    pub int_cost: f64,
    /// Effective cycles per floating-point operation (large on the FPU-less
    /// PXA255: software emulation).
    pub fp_cost: f64,
    /// Cycles per transcendental math intrinsic.
    pub math_cost: f64,
    /// Effective cycles per branch, averaging in the misprediction rate.
    pub branch_cost: f64,
    /// Base (hit) cycles per load or store.
    pub mem_base_cost: f64,
    /// Effective stall cycles for an L1 miss that hits L2 (unused when the
    /// platform has no L2).
    pub l1_miss_penalty: f64,
    /// Effective stall cycles for a miss that goes to DRAM.
    pub mem_penalty: f64,
    /// Effective stall cycles for an instruction-cache line refill.
    pub ifetch_miss_penalty: f64,
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Unified L2 geometry, if present.
    pub l2: Option<CacheConfig>,
}

impl CpuSpec {
    /// Timing/geometry specification for `kind`.
    pub fn of(kind: PlatformKind) -> Self {
        match kind {
            PlatformKind::PentiumM => Self {
                kind,
                freq_hz: 1.6e9,
                // 3-wide out-of-order core: sub-cycle effective ALU cost.
                int_cost: 0.45,
                fp_cost: 0.9,
                math_cost: 35.0,
                branch_cost: 1.1,
                mem_base_cost: 0.55,
                l1_miss_penalty: 8.0,
                // ~190 cycles DRAM, ~55% hidden by the OoO window.
                mem_penalty: 85.0,
                ifetch_miss_penalty: 10.0,
                l1i: CacheConfig {
                    name: "L1I",
                    size_bytes: 32 << 10,
                    ways: 8,
                    line_bytes: 64,
                },
                l1d: CacheConfig {
                    name: "L1D",
                    size_bytes: 32 << 10,
                    ways: 8,
                    line_bytes: 64,
                },
                l2: Some(CacheConfig {
                    name: "L2",
                    size_bytes: 1 << 20,
                    ways: 8,
                    line_bytes: 64,
                }),
            },
            PlatformKind::Pxa255 => Self {
                kind,
                freq_hz: 400e6,
                // Single-issue in-order: every op is at least a cycle.
                int_cost: 1.15,
                fp_cost: 55.0, // software floating point
                math_cost: 420.0,
                branch_cost: 2.2,
                mem_base_cost: 1.0,
                l1_miss_penalty: 0.0, // no L2
                // ~185 ns SDRAM at 400 MHz, no latency hiding.
                mem_penalty: 70.0,
                ifetch_miss_penalty: 40.0,
                l1i: CacheConfig {
                    name: "L1I",
                    size_bytes: 32 << 10,
                    ways: 32,
                    line_bytes: 32,
                },
                l1d: CacheConfig {
                    name: "L1D",
                    size_bytes: 32 << 10,
                    ways: 32,
                    line_bytes: 32,
                },
                l2: None,
            },
        }
    }

    /// Convert a cycle count on this CPU to seconds.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / self.freq_hz
    }

    /// This specification at a DVFS-scaled clock (`freq_factor` in
    /// `(0, 1]`). DRAM latency is constant in nanoseconds, so the miss
    /// penalty in *cycles* shrinks with the clock; on-die latencies (L1/L2
    /// hit paths, per-op costs) are expressed in cycles and are unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `freq_factor` is not in `(0, 1]`.
    pub fn scaled(&self, freq_factor: f64) -> Self {
        assert!(
            freq_factor > 0.0 && freq_factor <= 1.0,
            "frequency factor {freq_factor} outside (0, 1]"
        );
        Self {
            freq_hz: self.freq_hz * freq_factor,
            mem_penalty: self.mem_penalty * freq_factor,
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pentium_m_matches_paper_description() {
        let s = CpuSpec::of(PlatformKind::PentiumM);
        assert_eq!(s.freq_hz, 1.6e9);
        assert_eq!(s.l1i.size_bytes, 32 << 10);
        assert_eq!(s.l2.unwrap().size_bytes, 1 << 20);
    }

    #[test]
    fn pxa255_has_no_l2_and_slow_fp() {
        let s = CpuSpec::of(PlatformKind::Pxa255);
        assert!(s.l2.is_none());
        assert_eq!(s.l1d.ways, 32);
        // Software FP is at least an order of magnitude costlier than int.
        assert!(s.fp_cost > 10.0 * s.int_cost);
    }

    #[test]
    fn cycles_to_seconds() {
        let s = CpuSpec::of(PlatformKind::PentiumM);
        assert!((s.cycles_to_seconds(1.6e9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_names() {
        assert!(format!("{}", PlatformKind::PentiumM).contains("Pentium M"));
        assert!(format!("{}", PlatformKind::Pxa255).contains("PXA255"));
    }
}
