//! The simulated physical address map.
//!
//! All components of the runtime place their data in disjoint regions of one
//! flat address space so that the cache hierarchy sees realistic conflict
//! and capacity behaviour between the mutator heap, compiled code, VM
//! metadata and thread stacks.

/// A simulated physical address.
pub type Addr = u64;

/// Base of the garbage-collected heap (object payloads live here).
pub const HEAP_BASE: Addr = 0x1000_0000;

/// Base of the code space: compiled method bodies and the interpreter's
/// dispatch tables. Instruction fetch hits this region.
pub const CODE_BASE: Addr = 0x4000_0000;

/// Base of VM-internal metadata: class-loader tables, remembered sets,
/// compilation queues.
pub const VM_BASE: Addr = 0x6000_0000;

/// Base of the region class-file bytes are streamed through during class
/// loading (modeling buffer-cache reads of `.class`/`.jar` data).
pub const CLASSFILE_BASE: Addr = 0x8000_0000;

/// Base of the thread-stack region (operand stacks and frames).
pub const STACK_BASE: Addr = 0xA000_0000;

/// Base of the measurement-probe region: the memory-mapped component-ID
/// register, the DAQ's ISR sample buffer and the kernel-side HPM counter
/// file. Transparent measurement never touches this region; the
/// non-transparent mode charges probe stores/loads here so the probes
/// contend for the same cache hierarchy as the workload.
pub const PROBE_BASE: Addr = 0xC000_0000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_ordered() {
        let bases = [
            HEAP_BASE,
            CODE_BASE,
            VM_BASE,
            CLASSFILE_BASE,
            STACK_BASE,
            PROBE_BASE,
        ];
        for w in bases.windows(2) {
            assert!(w[0] < w[1]);
            // At least 512 MB apart, far larger than any modeled region.
            assert!(w[1] - w[0] >= 0x2000_0000);
        }
    }
}
