//! Set-associative LRU cache simulation.

use serde::{Deserialize, Serialize};

use crate::Addr;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CacheConfig {
    /// Human-readable level name ("L1D", "L2", ...).
    pub name: &'static str,
    /// Total capacity in bytes. Must be a multiple of `ways * line_bytes`.
    pub size_bytes: u32,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub const fn sets(&self) -> u32 {
        self.size_bytes / (self.ways * self.line_bytes)
    }
}

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Misses (allocations).
    pub misses: u64,
}

impl CacheStats {
    /// Miss rate in `[0, 1]`; 0 when no accesses happened.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// One level of set-associative cache with true-LRU replacement.
///
/// Tag state only — we model hit/miss behaviour and replacement, not data.
/// Stores allocate on miss (write-allocate) and are charged identically to
/// loads; write-back traffic is folded into the modeled miss penalty.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: u32,
    line_shift: u32,
    /// `sets * ways` tags; `u64::MAX` marks an invalid way.
    tags: Vec<u64>,
    /// Per-line last-use stamp for LRU.
    stamps: Vec<u64>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Build an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not divisible by
    /// `ways * line_bytes`, or non-power-of-two sets/lines).
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert_eq!(
            cfg.size_bytes % (cfg.ways * cfg.line_bytes),
            0,
            "capacity must divide evenly into ways x lines"
        );
        let sets = cfg.sets();
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        let n = (sets * cfg.ways) as usize;
        Self {
            cfg,
            sets,
            line_shift: cfg.line_bytes.trailing_zeros(),
            tags: vec![u64::MAX; n],
            stamps: vec![0; n],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Access the line containing `addr`, updating LRU state; returns `true`
    /// on hit. On miss the line is allocated, evicting the LRU way.
    pub fn access(&mut self, addr: Addr) -> bool {
        self.clock += 1;
        self.stats.accesses += 1;
        let line = addr >> self.line_shift;
        let set = (line as u32) & (self.sets - 1);
        let base = (set * self.cfg.ways) as usize;
        let ways = self.cfg.ways as usize;

        let mut victim = base;
        let mut victim_stamp = u64::MAX;
        for i in base..base + ways {
            if self.tags[i] == line {
                self.stamps[i] = self.clock;
                return true;
            }
            if self.stamps[i] < victim_stamp {
                victim_stamp = self.stamps[i];
                victim = i;
            }
        }
        self.stats.misses += 1;
        self.tags[victim] = line;
        self.stamps[victim] = self.clock;
        false
    }

    /// Probe whether `addr` is resident without touching LRU state or stats.
    pub fn contains(&self, addr: Addr) -> bool {
        let line = addr >> self.line_shift;
        let set = (line as u32) & (self.sets - 1);
        let base = (set * self.cfg.ways) as usize;
        self.tags[base..base + self.cfg.ways as usize].contains(&line)
    }

    /// Invalidate every line (e.g. on simulated context loss).
    pub fn flush(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
    }

    /// Accumulated hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.cfg.line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512B.
        Cache::new(CacheConfig {
            name: "T",
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = tiny();
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1004)); // same line
        assert_eq!(c.stats().accesses, 3);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to the same set (set stride = sets*line = 256B).
        let a = 0x0u64;
        let b = 0x100;
        let d = 0x200;
        c.access(a);
        c.access(b);
        c.access(a); // a is now MRU
        assert!(!c.access(d)); // evicts b
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(d));
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = tiny();
        c.access(0x40);
        c.flush();
        assert!(!c.contains(0x40));
        assert!(!c.access(0x40));
    }

    #[test]
    fn miss_rate_math() {
        let mut c = tiny();
        for i in 0..8u64 {
            c.access(i * 64);
        }
        // 512B cache holds exactly 8 lines; first pass all miss.
        assert_eq!(c.stats().miss_rate(), 1.0);
        for i in 0..8u64 {
            c.access(i * 64);
        }
        assert_eq!(c.stats().miss_rate(), 0.5);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = Cache::new(CacheConfig {
            name: "X",
            size_bytes: 512,
            ways: 2,
            line_bytes: 48,
        });
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = tiny();
        // Cycle over 16 distinct lines in a 8-line cache repeatedly: with
        // LRU and a cyclic pattern every access misses after warmup.
        for _ in 0..4 {
            for i in 0..16u64 {
                c.access(i * 64);
            }
        }
        let s = c.stats();
        assert!(
            s.miss_rate() > 0.9,
            "cyclic over-capacity scan should thrash, got {}",
            s.miss_rate()
        );
    }
}
