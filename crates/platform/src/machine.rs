//! The machine: a CPU model plus cache hierarchy with cycle accounting.

use crate::{Addr, Cache, CpuSpec, Hpm, HpmSnapshot, PlatformKind};

/// A simulated processor + memory hierarchy.
///
/// Every instruction and memory access the runtime performs is *charged*
/// into the machine through the methods below; the machine advances its
/// cycle counter, walks the cache hierarchy and updates the HPM counter
/// file. Simulated wall-clock time is `cycles / freq`.
///
/// Cycle accounting uses an `f64` accumulator (effective per-op costs are
/// sub-cycle on the superscalar Pentium M); the public [`Machine::cycles`]
/// view truncates, which is exact for the magnitudes involved (< 2⁵³).
#[derive(Debug, Clone)]
pub struct Machine {
    spec: CpuSpec,
    l1i: Cache,
    l1d: Cache,
    l2: Option<Cache>,
    hpm: Hpm,
    cycles: f64,
    /// Last DRAM row touched (open-row tracking).
    dram_row: u64,
}

/// DRAM row size in bytes (open-page SDRAM row buffer).
const DRAM_ROW_BYTES: u64 = 2048;
/// Fraction of the full miss penalty paid when the access hits the open
/// row (burst/row-buffer hit). Sequential access streams — GC sweeps and
/// copies, class-file parsing — pay far less per miss than pointer chases,
/// which is the mechanism behind the XScale component-power ordering the
/// paper reports in Section VI-E.
const ROW_HIT_FACTOR: f64 = 0.3;

impl Machine {
    /// Build a cold machine for `kind` at its nominal operating point.
    pub fn new(kind: PlatformKind) -> Self {
        Self::from_spec(CpuSpec::of(kind))
    }

    /// Build a cold machine from an explicit (possibly DVFS-scaled)
    /// specification.
    pub fn from_spec(spec: CpuSpec) -> Self {
        Self {
            l1i: Cache::new(spec.l1i),
            l1d: Cache::new(spec.l1d),
            l2: spec.l2.map(Cache::new),
            hpm: Hpm::default(),
            cycles: 0.0,
            dram_row: u64::MAX,
            spec,
        }
    }

    /// Effective DRAM penalty for an access to `addr`, modeling the open
    /// row buffer.
    fn dram_penalty(&mut self, addr: Addr) -> f64 {
        let row = addr / DRAM_ROW_BYTES;
        let factor = if row == self.dram_row {
            ROW_HIT_FACTOR
        } else {
            1.0
        };
        self.dram_row = row;
        self.spec.mem_penalty * factor
    }

    /// The timing specification in force.
    pub fn spec(&self) -> &CpuSpec {
        &self.spec
    }

    /// Which platform this machine models.
    pub fn platform(&self) -> PlatformKind {
        self.spec.kind
    }

    /// Elapsed cycles (truncated from the internal accumulator).
    pub fn cycles(&self) -> u64 {
        self.cycles as u64
    }

    /// Elapsed simulated wall-clock time in seconds.
    pub fn now(&self) -> f64 {
        self.cycles / self.spec.freq_hz
    }

    /// Live HPM counter file.
    pub fn hpm(&self) -> &Hpm {
        &self.hpm
    }

    /// Copy the counters and cycle counter (what the OS-timer sampler and
    /// the DAQ read).
    pub fn snapshot(&self) -> HpmSnapshot {
        HpmSnapshot {
            cycles: self.cycles(),
            counters: self.hpm,
        }
    }

    /// L1 data cache statistics.
    pub fn l1d_stats(&self) -> crate::CacheStats {
        self.l1d.stats()
    }

    /// L2 statistics, if the platform has an L2.
    pub fn l2_stats(&self) -> Option<crate::CacheStats> {
        self.l2.as_ref().map(Cache::stats)
    }

    // ---- execution charges ----

    /// Retire `n` integer ALU operations.
    pub fn int_ops(&mut self, n: u32) {
        self.hpm.instructions += u64::from(n);
        self.hpm.int_ops += u64::from(n);
        self.cycles += f64::from(n) * self.spec.int_cost;
    }

    /// Retire `n` floating point operations.
    pub fn fp_ops(&mut self, n: u32) {
        self.hpm.instructions += u64::from(n);
        self.hpm.fp_ops += u64::from(n);
        self.cycles += f64::from(n) * self.spec.fp_cost;
    }

    /// Retire one transcendental math intrinsic (sqrt/sin/...).
    pub fn math_op(&mut self) {
        self.hpm.instructions += 1;
        self.hpm.fp_ops += 1;
        self.cycles += self.spec.math_cost;
    }

    /// Retire one branch.
    pub fn branch(&mut self) {
        self.hpm.instructions += 1;
        self.hpm.branches += 1;
        self.cycles += self.spec.branch_cost;
    }

    /// Retire a data load from `addr`, walking the cache hierarchy.
    pub fn load(&mut self, addr: Addr) {
        self.hpm.instructions += 1;
        self.hpm.loads += 1;
        self.cycles += self.spec.mem_base_cost;
        self.data_access(addr);
    }

    /// Retire a data store to `addr` (write-allocate, charged like a load).
    pub fn store(&mut self, addr: Addr) {
        self.hpm.instructions += 1;
        self.hpm.stores += 1;
        self.cycles += self.spec.mem_base_cost;
        self.data_access(addr);
    }

    /// Fetch one instruction-cache line at `addr` (the runtime calls this
    /// per basic block / dispatch step, not per µop).
    pub fn ifetch(&mut self, addr: Addr) {
        self.hpm.l1i_accesses += 1;
        if !self.l1i.access(addr) {
            self.hpm.l1i_misses += 1;
            let mut stall = self.spec.ifetch_miss_penalty;
            let mut to_dram = false;
            if let Some(l2) = &mut self.l2 {
                self.hpm.l2_accesses += 1;
                if !l2.access(addr) {
                    self.hpm.l2_misses += 1;
                    to_dram = true;
                }
            } else {
                to_dram = true;
            }
            if to_dram {
                self.hpm.mem_accesses += 1;
                stall += self.dram_penalty(addr);
            }
            self.hpm.stall_cycles += stall as u64;
            self.cycles += stall;
        }
    }

    /// Stall for raw `cycles` without retiring instructions (idle loops,
    /// throttling duty-off periods, bulk modeled work).
    pub fn stall(&mut self, cycles: f64) {
        self.hpm.stall_cycles += cycles as u64;
        self.cycles += cycles;
    }

    /// Touch `bytes` starting at `addr` line-by-line as loads (streaming
    /// read, e.g. class-file parsing or GC copy source).
    pub fn stream_read(&mut self, addr: Addr, bytes: u32) {
        let line = u64::from(self.l1d.line_bytes());
        let mut a = addr & !(line - 1);
        let end = addr + u64::from(bytes);
        while a < end {
            self.load(a);
            a += line;
        }
    }

    /// Touch `bytes` starting at `addr` line-by-line as stores (streaming
    /// write, e.g. GC copy destination or code installation).
    pub fn stream_write(&mut self, addr: Addr, bytes: u32) {
        let line = u64::from(self.l1d.line_bytes());
        let mut a = addr & !(line - 1);
        let end = addr + u64::from(bytes);
        while a < end {
            self.store(a);
            a += line;
        }
    }

    /// Copy `bytes` from `src` to `dst`: streaming reads plus streaming
    /// writes plus per-word ALU work (the cost shape of a GC copy,
    /// including forwarding-pointer bookkeeping).
    pub fn memcpy(&mut self, src: Addr, dst: Addr, bytes: u32) {
        self.stream_read(src, bytes);
        self.stream_write(dst, bytes);
        self.int_ops(bytes / 4);
    }

    fn data_access(&mut self, addr: Addr) {
        self.hpm.l1d_accesses += 1;
        if !self.l1d.access(addr) {
            self.hpm.l1d_misses += 1;
            let mut stall = 0.0;
            let mut to_dram = false;
            if let Some(l2) = &mut self.l2 {
                self.hpm.l2_accesses += 1;
                stall += self.spec.l1_miss_penalty;
                if !l2.access(addr) {
                    self.hpm.l2_misses += 1;
                    to_dram = true;
                }
            } else {
                to_dram = true;
            }
            if to_dram {
                self.hpm.mem_accesses += 1;
                stall += self.dram_penalty(addr);
            }
            self.hpm.stall_cycles += stall as u64;
            self.cycles += stall;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HEAP_BASE;

    #[test]
    fn cycles_advance_with_work() {
        let mut m = Machine::new(PlatformKind::PentiumM);
        assert_eq!(m.cycles(), 0);
        m.int_ops(1000);
        let c = m.cycles();
        assert!((400..=500).contains(&c), "got {c}");
        assert_eq!(m.hpm().instructions, 1000);
    }

    #[test]
    fn repeated_loads_hit_cache_and_get_cheaper() {
        let mut m = Machine::new(PlatformKind::PentiumM);
        m.load(HEAP_BASE);
        let cold = m.cycles();
        m.load(HEAP_BASE);
        let warm = m.cycles() - cold;
        assert!(
            warm < cold,
            "warm access {warm} should be cheaper than cold {cold}"
        );
        assert_eq!(m.hpm().l1d_misses, 1);
        assert_eq!(m.hpm().l2_misses, 1);
        assert_eq!(m.hpm().mem_accesses, 1);
    }

    #[test]
    fn pxa_has_no_l2_traffic() {
        let mut m = Machine::new(PlatformKind::Pxa255);
        m.load(HEAP_BASE);
        assert_eq!(m.hpm().l2_accesses, 0);
        assert_eq!(m.hpm().mem_accesses, 1);
        assert!(m.l2_stats().is_none());
    }

    #[test]
    fn fp_is_catastrophically_slow_on_pxa() {
        let mut p6 = Machine::new(PlatformKind::PentiumM);
        let mut xs = Machine::new(PlatformKind::Pxa255);
        p6.fp_ops(100);
        xs.fp_ops(100);
        assert!(xs.cycles() > 20 * p6.cycles());
    }

    #[test]
    fn now_reflects_frequency() {
        let mut m = Machine::new(PlatformKind::PentiumM);
        m.stall(1.6e9);
        assert!((m.now() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn memcpy_touches_both_ranges() {
        let mut m = Machine::new(PlatformKind::PentiumM);
        m.memcpy(HEAP_BASE, HEAP_BASE + 0x10000, 256);
        // 4 lines read + 4 lines written + 2 ALU ops per copied word
        assert_eq!(m.hpm().loads, 4);
        assert_eq!(m.hpm().stores, 4);
        assert_eq!(m.hpm().int_ops, 64);
    }

    #[test]
    fn snapshot_is_consistent() {
        let mut m = Machine::new(PlatformKind::PentiumM);
        m.int_ops(10);
        let s = m.snapshot();
        assert_eq!(s.counters.instructions, 10);
        assert_eq!(s.cycles, m.cycles());
    }

    #[test]
    fn stall_adds_cycles_without_instructions() {
        let mut m = Machine::new(PlatformKind::PentiumM);
        m.stall(500.0);
        assert_eq!(m.cycles(), 500);
        assert_eq!(m.hpm().instructions, 0);
    }
}
