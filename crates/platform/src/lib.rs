//! Hardware platform models for the `vmprobe` characterization suite.
//!
//! The paper measures two real boards:
//!
//! * **P6** — a 1.6 GHz Pentium M development board with 32 KB L1I, 32 KB
//!   L1D, a 1 MB on-die L2, and 512 MB of DDR SDRAM;
//! * **DBPXA255** — an Intel PXA255 (XScale) development board at 400 MHz
//!   with 32-way 32 KB instruction and data caches, **no L2**, and 64 MB of
//!   SDRAM.
//!
//! This crate substitutes cycle-accounting models for that silicon: a
//! [`Machine`] owns a [`CpuSpec`], a set-associative LRU [`Cache`] hierarchy
//! and a hardware-performance-monitor counter file ([`Hpm`]). The managed
//! runtime and the garbage collectors charge every instruction and memory
//! access into the machine; cycles, IPC and cache miss rates are *emergent*,
//! which is what lets the power model upstairs reproduce the paper's
//! component power ordering mechanistically.
//!
//! # Example
//!
//! ```
//! use vmprobe_platform::{Machine, PlatformKind};
//!
//! let mut m = Machine::new(PlatformKind::PentiumM);
//! m.int_ops(100);
//! m.load(0x1000_0000);
//! assert!(m.cycles() > 0);
//! assert_eq!(m.hpm().loads, 1);
//! ```

#![warn(missing_docs)]
mod addr;
mod cache;
mod cpu;
mod exec;
mod hpm;
mod machine;

pub use addr::{Addr, CLASSFILE_BASE, CODE_BASE, HEAP_BASE, PROBE_BASE, STACK_BASE, VM_BASE};
pub use cache::{Cache, CacheConfig, CacheStats};
pub use cpu::{CpuSpec, PlatformKind};
pub use exec::Exec;
pub use hpm::{Hpm, HpmDelta, HpmSnapshot, HpmUnwrapper, COUNTER_MASK_32, HPM_COUNTER_COUNT};
pub use machine::Machine;
