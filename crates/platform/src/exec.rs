//! The [`Exec`] charging interface.
//!
//! Both the interpreter and the garbage collectors express their work as
//! calls on this trait. [`Machine`](crate::Machine) implements it directly;
//! the measurement layer wraps a machine in a sampling adapter that also
//! implements `Exec`, so that the 40 µs DAQ keeps sampling *during*
//! collector pauses — exactly as the paper's physical rig keeps sampling
//! while the GC thread runs.

use crate::{Addr, Machine};

/// A sink for executed work: instructions and memory accesses.
///
/// All methods mirror [`Machine`]'s charging API; see there for semantics.
/// The trait is object-safe so collectors can take `&mut dyn Exec`.
pub trait Exec {
    /// Retire `n` integer ALU operations.
    fn int_ops(&mut self, n: u32);
    /// Retire `n` floating point operations.
    fn fp_ops(&mut self, n: u32);
    /// Retire one transcendental math intrinsic.
    fn math_op(&mut self);
    /// Retire one branch.
    fn branch(&mut self);
    /// Retire a data load.
    fn load(&mut self, addr: Addr);
    /// Retire a data store.
    fn store(&mut self, addr: Addr);
    /// Fetch an instruction-cache line.
    fn ifetch(&mut self, addr: Addr);
    /// Stall without retiring instructions.
    fn stall(&mut self, cycles: f64);
    /// Streaming line-granularity read of `bytes` at `addr`.
    fn stream_read(&mut self, addr: Addr, bytes: u32);
    /// Streaming line-granularity write of `bytes` at `addr`.
    fn stream_write(&mut self, addr: Addr, bytes: u32);
    /// Bulk copy: streaming read + write + per-word ALU work.
    fn memcpy(&mut self, src: Addr, dst: Addr, bytes: u32);
    /// Elapsed cycles.
    fn cycles(&self) -> u64;
    /// Elapsed simulated seconds.
    fn now(&self) -> f64;
}

impl Exec for Machine {
    fn int_ops(&mut self, n: u32) {
        Machine::int_ops(self, n);
    }
    fn fp_ops(&mut self, n: u32) {
        Machine::fp_ops(self, n);
    }
    fn math_op(&mut self) {
        Machine::math_op(self);
    }
    fn branch(&mut self) {
        Machine::branch(self);
    }
    fn load(&mut self, addr: Addr) {
        Machine::load(self, addr);
    }
    fn store(&mut self, addr: Addr) {
        Machine::store(self, addr);
    }
    fn ifetch(&mut self, addr: Addr) {
        Machine::ifetch(self, addr);
    }
    fn stall(&mut self, cycles: f64) {
        Machine::stall(self, cycles);
    }
    fn stream_read(&mut self, addr: Addr, bytes: u32) {
        Machine::stream_read(self, addr, bytes);
    }
    fn stream_write(&mut self, addr: Addr, bytes: u32) {
        Machine::stream_write(self, addr, bytes);
    }
    fn memcpy(&mut self, src: Addr, dst: Addr, bytes: u32) {
        Machine::memcpy(self, src, dst, bytes);
    }
    fn cycles(&self) -> u64 {
        Machine::cycles(self)
    }
    fn now(&self) -> f64 {
        Machine::now(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlatformKind;

    fn drive(e: &mut dyn Exec) {
        e.int_ops(5);
        e.load(0x1000_0000);
        e.branch();
    }

    #[test]
    fn machine_implements_exec_object_safely() {
        let mut m = Machine::new(PlatformKind::PentiumM);
        drive(&mut m);
        assert_eq!(m.hpm().instructions, 7);
    }
}
