//! Hardware performance monitor (HPM) counter file.
//!
//! The paper's methodology samples HPM counters from the OS timer (1 ms on
//! the P6, 10 ms on the PXA255) and matches them offline with the power
//! trace. This module provides the counter file, cheap snapshots, and
//! between-snapshot deltas with the derived rates (IPC, L2 miss rate) the
//! paper uses to explain component power.

use serde::{Deserialize, Serialize};

/// Live counter file incremented by the [`Machine`](crate::Machine).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hpm {
    /// Retired instructions (all µops charged by the runtime).
    pub instructions: u64,
    /// Integer ALU operations.
    pub int_ops: u64,
    /// Floating point operations (including math intrinsics).
    pub fp_ops: u64,
    /// Branches.
    pub branches: u64,
    /// Data loads.
    pub loads: u64,
    /// Data stores.
    pub stores: u64,
    /// L1I accesses.
    pub l1i_accesses: u64,
    /// L1I misses.
    pub l1i_misses: u64,
    /// L1D accesses.
    pub l1d_accesses: u64,
    /// L1D misses.
    pub l1d_misses: u64,
    /// L2 accesses (zero on platforms without L2).
    pub l2_accesses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Accesses that reached DRAM.
    pub mem_accesses: u64,
    /// Cycles spent stalled on the memory hierarchy.
    pub stall_cycles: u64,
}

/// A point-in-time copy of the counter file plus the cycle counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HpmSnapshot {
    /// Cycle count at snapshot time.
    pub cycles: u64,
    /// Counter values.
    pub counters: Hpm,
}

impl HpmSnapshot {
    /// Counter movement between `earlier` and `self`.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `earlier` does not postdate `self`.
    pub fn delta_since(&self, earlier: &HpmSnapshot) -> HpmDelta {
        debug_assert!(earlier.cycles <= self.cycles, "snapshots out of order");
        let a = &earlier.counters;
        let b = &self.counters;
        HpmDelta {
            cycles: self.cycles - earlier.cycles,
            instructions: b.instructions - a.instructions,
            fp_ops: b.fp_ops - a.fp_ops,
            l1d_misses: b.l1d_misses - a.l1d_misses,
            l2_accesses: b.l2_accesses - a.l2_accesses,
            l2_misses: b.l2_misses - a.l2_misses,
            mem_accesses: b.mem_accesses - a.mem_accesses,
            stall_cycles: b.stall_cycles - a.stall_cycles,
        }
    }
}

/// Width mask of the physical counters on both measured platforms: the P6
/// family and the PXA255 expose 32-bit performance counters, so a sampler
/// that reads them slowly enough sees wraparound.
pub const COUNTER_MASK_32: u64 = 0xFFFF_FFFF;

/// Number of distinct counters in the [`Hpm`] counter file — the number of
/// individual register reads a full OS-timer HPM sample performs (and, in
/// non-transparent measurement mode, pays for).
pub const HPM_COUNTER_COUNT: usize = 14;

macro_rules! for_each_counter {
    ($m:ident) => {
        $m!(
            instructions,
            int_ops,
            fp_ops,
            branches,
            loads,
            stores,
            l1i_accesses,
            l1i_misses,
            l1d_accesses,
            l1d_misses,
            l2_accesses,
            l2_misses,
            mem_accesses,
            stall_cycles
        );
    };
}

impl HpmSnapshot {
    /// The snapshot as a 32-bit counter file would report it: every counter
    /// truncated to 32 bits. The cycle counter is left intact — it is the
    /// simulator's timebase, not part of the wrapping counter file.
    pub fn wrapped32(&self) -> HpmSnapshot {
        let mut c = self.counters;
        macro_rules! mask {
            ($($f:ident),*) => { $(c.$f &= COUNTER_MASK_32;)* };
        }
        for_each_counter!(mask);
        HpmSnapshot {
            cycles: self.cycles,
            counters: c,
        }
    }
}

/// Reconstructs monotone 64-bit counters from a stream of 32-bit (wrapped)
/// snapshots, the way the paper's offline analysis accumulates HPM samples.
///
/// Reconstruction is **exact** for all deltas as long as each counter
/// advances by fewer than 2^32 between consecutive snapshots — guaranteed
/// here because the DAQ samples every 40 µs and the perf monitor every
/// 1–10 ms. (The absolute base of a counter that exceeded 32 bits before
/// the *first* snapshot is unrecoverable, but deltas never see it.)
#[derive(Debug, Clone, Default)]
pub struct HpmUnwrapper {
    last_raw: Option<Hpm>,
    acc: Hpm,
    wraps: u64,
}

impl HpmUnwrapper {
    /// A fresh unwrapper with no history.
    pub fn new() -> Self {
        HpmUnwrapper::default()
    }

    /// Number of individual counter wraps detected so far.
    pub fn wraps_detected(&self) -> u64 {
        self.wraps
    }

    /// Feed one raw (possibly wrapped) snapshot; returns the reconstructed
    /// monotone snapshot.
    pub fn unwrap_snapshot(&mut self, raw: &HpmSnapshot) -> HpmSnapshot {
        match self.last_raw {
            None => {
                self.acc = raw.counters;
            }
            Some(prev) => {
                macro_rules! advance {
                    ($($f:ident),*) => {
                        $(
                            if raw.counters.$f < prev.$f {
                                self.wraps += 1;
                            }
                            let delta =
                                raw.counters.$f.wrapping_sub(prev.$f) & COUNTER_MASK_32;
                            self.acc.$f += delta;
                        )*
                    };
                }
                for_each_counter!(advance);
            }
        }
        self.last_raw = Some(raw.counters);
        HpmSnapshot {
            cycles: raw.cycles,
            counters: self.acc,
        }
    }
}

/// Counter movement over a sampling window; input to the power model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HpmDelta {
    /// Elapsed cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// Floating point operations.
    pub fp_ops: u64,
    /// L1D misses.
    pub l1d_misses: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// DRAM accesses.
    pub mem_accesses: u64,
    /// Memory stall cycles.
    pub stall_cycles: u64,
}

impl HpmDelta {
    /// Instructions per cycle over the window (0 for an empty window).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// L2 miss rate over the window (misses / accesses), the statistic the
    /// paper quotes per component (e.g. 54% for the GenCopy collector).
    pub fn l2_miss_rate(&self) -> f64 {
        if self.l2_accesses == 0 {
            0.0
        } else {
            self.l2_misses as f64 / self.l2_accesses as f64
        }
    }

    /// Merge two deltas (used when aggregating windows per component).
    pub fn merged(&self, other: &HpmDelta) -> HpmDelta {
        HpmDelta {
            cycles: self.cycles + other.cycles,
            instructions: self.instructions + other.instructions,
            fp_ops: self.fp_ops + other.fp_ops,
            l1d_misses: self.l1d_misses + other.l1d_misses,
            l2_accesses: self.l2_accesses + other.l2_accesses,
            l2_misses: self.l2_misses + other.l2_misses,
            mem_accesses: self.mem_accesses + other.mem_accesses,
            stall_cycles: self.stall_cycles + other.stall_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_and_rates() {
        let a = HpmSnapshot {
            cycles: 100,
            counters: Hpm {
                instructions: 50,
                l2_accesses: 10,
                l2_misses: 2,
                ..Hpm::default()
            },
        };
        let b = HpmSnapshot {
            cycles: 300,
            counters: Hpm {
                instructions: 210,
                l2_accesses: 30,
                l2_misses: 12,
                ..Hpm::default()
            },
        };
        let d = b.delta_since(&a);
        assert_eq!(d.cycles, 200);
        assert_eq!(d.instructions, 160);
        assert!((d.ipc() - 0.8).abs() < 1e-12);
        assert!((d.l2_miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_window_rates_are_zero() {
        let d = HpmDelta::default();
        assert_eq!(d.ipc(), 0.0);
        assert_eq!(d.l2_miss_rate(), 0.0);
    }

    #[test]
    fn unwrapper_reconstructs_across_a_wrap() {
        let mk = |instructions: u64, cycles: u64| HpmSnapshot {
            cycles,
            counters: Hpm {
                instructions,
                ..Hpm::default()
            },
        };
        let mut unwrap = HpmUnwrapper::new();
        let near = COUNTER_MASK_32 - 10;
        let a = unwrap.unwrap_snapshot(&mk(near, 100).wrapped32());
        let b = unwrap.unwrap_snapshot(&mk(near + 50, 200).wrapped32());
        assert_eq!(b.delta_since(&a).instructions, 50);
        assert_eq!(unwrap.wraps_detected(), 1);
    }

    #[test]
    fn counter_count_matches_the_counter_file() {
        let mut n = 0;
        macro_rules! count {
            ($($f:ident),*) => { $(let _ = stringify!($f); n += 1;)* };
        }
        for_each_counter!(count);
        assert_eq!(n, HPM_COUNTER_COUNT);
    }

    #[test]
    fn merged_sums_fields() {
        let a = HpmDelta {
            cycles: 10,
            instructions: 5,
            ..HpmDelta::default()
        };
        let b = HpmDelta {
            cycles: 20,
            instructions: 15,
            ..HpmDelta::default()
        };
        let m = a.merged(&b);
        assert_eq!(m.cycles, 30);
        assert_eq!(m.instructions, 20);
    }
}
