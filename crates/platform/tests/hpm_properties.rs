//! Property tests for 32-bit HPM counter unwrapping.

use proptest::prelude::*;
use vmprobe_platform::{HpmSnapshot, HpmUnwrapper};

proptest! {
    #[test]
    fn unwrapping_is_exact_across_multiple_wraps(
        steps in prop::collection::vec(0x4000_0000u64..0x8000_0000, 8..20),
    ) {
        // Each step advances the counters by < 2^32 (the unwrapper's
        // documented exactness condition) but the totals cross the 32-bit
        // boundary several times. The reconstruction must equal the true
        // 64-bit counters at every snapshot, not just at the end.
        let mut unwrap = HpmUnwrapper::new();
        let mut truth = HpmSnapshot::default();
        for &s in &steps {
            truth.cycles += s * 3;
            truth.counters.instructions += s;
            truth.counters.int_ops += s / 2;
            truth.counters.loads += s / 3;
            truth.counters.stores += s / 5;
            truth.counters.branches += s / 7;
            truth.counters.mem_accesses += s / 11;
            let rebuilt = unwrap.unwrap_snapshot(&truth.wrapped32());
            prop_assert_eq!(rebuilt.counters, truth.counters);
            // The cycle counter is the timebase, never masked.
            prop_assert_eq!(rebuilt.cycles, truth.cycles);
        }
        // 8 steps of >= 2^30 instructions alone cross 2^32 at least twice.
        prop_assert!(
            unwrap.wraps_detected() >= 2,
            "expected >= 2 wraps, saw {}",
            unwrap.wraps_detected()
        );
    }

    #[test]
    fn unwrapping_non_wrapped_streams_is_the_identity(
        steps in prop::collection::vec(1u64..100_000, 1..30),
    ) {
        let mut unwrap = HpmUnwrapper::new();
        let mut truth = HpmSnapshot::default();
        for &s in &steps {
            truth.cycles += s;
            truth.counters.instructions += s;
            truth.counters.loads += s / 2;
            let rebuilt = unwrap.unwrap_snapshot(&truth.wrapped32());
            prop_assert_eq!(rebuilt, truth);
        }
        prop_assert_eq!(unwrap.wraps_detected(), 0);
    }
}
