//! Property tests: the set-associative LRU cache against an executable
//! reference model, and machine cycle-accounting invariants.

use std::collections::VecDeque;

use proptest::prelude::*;
use vmprobe_platform::{Cache, CacheConfig, Machine, PlatformKind};

/// Reference model: per-set recency queues, most recent at the back.
struct RefLru {
    sets: u64,
    ways: usize,
    line_shift: u32,
    queues: Vec<VecDeque<u64>>,
}

impl RefLru {
    fn new(cfg: CacheConfig) -> Self {
        let sets = u64::from(cfg.sets());
        Self {
            sets,
            ways: cfg.ways as usize,
            line_shift: cfg.line_bytes.trailing_zeros(),
            queues: (0..sets).map(|_| VecDeque::new()).collect(),
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line % self.sets) as usize;
        let q = &mut self.queues[set];
        if let Some(pos) = q.iter().position(|&l| l == line) {
            q.remove(pos);
            q.push_back(line);
            true
        } else {
            if q.len() == self.ways {
                q.pop_front();
            }
            q.push_back(line);
            false
        }
    }
}

fn small_config() -> CacheConfig {
    CacheConfig {
        name: "prop",
        size_bytes: 1024,
        ways: 4,
        line_bytes: 32,
    }
}

proptest! {
    #[test]
    fn cache_matches_reference_lru(addrs in prop::collection::vec(0u64..4096, 1..600)) {
        let cfg = small_config();
        let mut cache = Cache::new(cfg);
        let mut oracle = RefLru::new(cfg);
        for (i, &a) in addrs.iter().enumerate() {
            let hit = cache.access(a);
            let expect = oracle.access(a);
            prop_assert_eq!(hit, expect, "divergence at access {} (addr {:#x})", i, a);
        }
        // Stats agree with the replayed outcomes.
        let misses = {
            let mut o2 = RefLru::new(cfg);
            addrs.iter().filter(|&&a| !o2.access(a)).count() as u64
        };
        prop_assert_eq!(cache.stats().accesses, addrs.len() as u64);
        prop_assert_eq!(cache.stats().misses, misses);
    }

    #[test]
    fn contains_never_lies(addrs in prop::collection::vec(0u64..2048, 1..200)) {
        let mut cache = Cache::new(small_config());
        for &a in &addrs {
            cache.access(a);
            prop_assert!(cache.contains(a), "just-accessed line must be resident");
        }
    }

    #[test]
    fn machine_cycles_are_monotonic_and_work_scales(
        ops in prop::collection::vec((0u8..5, 0u64..1_000_000), 1..300),
    ) {
        let mut m = Machine::new(PlatformKind::PentiumM);
        let mut last = 0u64;
        for &(kind, addr) in &ops {
            match kind {
                0 => m.int_ops(3),
                1 => m.fp_ops(2),
                2 => m.load(0x1000_0000 + addr * 8),
                3 => m.store(0x1000_0000 + addr * 8),
                _ => m.branch(),
            }
            let now = m.cycles();
            prop_assert!(now >= last, "cycles must never go backwards");
            last = now;
        }
        // Instruction count equals what we charged.
        let expected: u64 = ops
            .iter()
            .map(|&(k, _)| match k {
                0 => 3,
                1 => 2,
                _ => 1,
            })
            .sum();
        prop_assert_eq!(m.hpm().instructions, expected);
    }

    #[test]
    fn snapshot_deltas_are_consistent(splits in prop::collection::vec(1u32..500, 2..20)) {
        let mut m = Machine::new(PlatformKind::Pxa255);
        let mut snaps = vec![m.snapshot()];
        for &n in &splits {
            m.int_ops(n);
            snaps.push(m.snapshot());
        }
        // Sum of window deltas equals the full-run delta.
        let total = snaps.last().unwrap().delta_since(&snaps[0]);
        let sum_instr: u64 = snaps
            .windows(2)
            .map(|w| w[1].delta_since(&w[0]).instructions)
            .sum();
        prop_assert_eq!(total.instructions, sum_instr);
        let sum_cycles: u64 = snaps
            .windows(2)
            .map(|w| w[1].delta_since(&w[0]).cycles)
            .sum();
        prop_assert_eq!(total.cycles, sum_cycles);
    }
}
