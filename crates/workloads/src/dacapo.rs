//! The five DaCapo (beta051009) applications the paper uses — a suite of
//! memory-intensive programs "typically used in the study of Java garbage
//! collectors" (paper Section V), with default data sets.

use crate::{Benchmark, Blueprint, Suite};

/// The DaCapo benchmarks in the paper's order.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "antlr",
            suite: Suite::DaCapo,
            description: "A grammar parser generator",
            blueprint: Blueprint {
                phases: 8,
                lists_per_phase: 42,
                nodes_per_list: 700,
                trees_per_phase: 2,
                tree_depth: 9, // grammar ASTs
                live_records: 7_000,
                record_payload_words: 4,
                queries_per_phase: 3_000,
                query_walk: 2,
                int_iters: 12_000,
                fp_iters: 0,
                math_every: 0,
                hot_kernels: 5,
                app_classes: 60,
                class_padding: 900,
                work_array_words: 40_960,
            },
        },
        Benchmark {
            name: "fop",
            suite: Suite::DaCapo,
            description: "Application that generates a PDF file from an XSL-FO file",
            blueprint: Blueprint {
                phases: 5,
                lists_per_phase: 30,
                nodes_per_list: 500,
                trees_per_phase: 2,
                tree_depth: 9, // formatting-object trees
                live_records: 6_000,
                record_payload_words: 8,
                queries_per_phase: 2_000,
                query_walk: 3,
                int_iters: 8_000,
                fp_iters: 0,
                math_every: 0,
                hot_kernels: 3,
                // fop's defining trait: a huge class surface with heavy
                // class files — the paper's 24% class-loader energy peak.
                app_classes: 190,
                class_padding: 3_600,
                work_array_words: 40_960,
            },
        },
        Benchmark {
            name: "jython",
            suite: Suite::DaCapo,
            description: "Python program interpreter",
            blueprint: Blueprint {
                phases: 10,
                lists_per_phase: 70,
                nodes_per_list: 700, // interpreter frames and boxed values
                trees_per_phase: 0,
                tree_depth: 0,
                live_records: 6_500,
                record_payload_words: 4,
                queries_per_phase: 5_000,
                query_walk: 2,
                int_iters: 20_000,
                fp_iters: 0,
                math_every: 0,
                hot_kernels: 8,
                app_classes: 70,
                class_padding: 800,
                work_array_words: 40_960,
            },
        },
        Benchmark {
            name: "pmd",
            suite: Suite::DaCapo,
            description: "An analyzer for Java classes",
            blueprint: Blueprint {
                phases: 9,
                lists_per_phase: 48,
                nodes_per_list: 800,
                trees_per_phase: 3,
                tree_depth: 10, // analyzed-source ASTs
                live_records: 7_000,
                record_payload_words: 8,
                queries_per_phase: 6_000,
                query_walk: 4,
                int_iters: 8_000,
                fp_iters: 0,
                math_every: 0,
                hot_kernels: 4,
                app_classes: 55,
                class_padding: 900,
                work_array_words: 40_960,
            },
        },
        Benchmark {
            name: "ps",
            suite: Suite::DaCapo,
            description: "A Postscript file reader and interpreter",
            blueprint: Blueprint {
                phases: 8,
                lists_per_phase: 34,
                nodes_per_list: 600,
                trees_per_phase: 0,
                tree_depth: 0,
                live_records: 5_000,
                record_payload_words: 4,
                queries_per_phase: 4_000,
                query_walk: 2,
                int_iters: 30_000, // rasterization inner loops
                fp_iters: 6_000,
                math_every: 0,
                hot_kernels: 3,
                app_classes: 30,
                class_padding: 700,
                work_array_words: 49_152,
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_benchmarks_with_dacapo_character() {
        let b = benchmarks();
        assert_eq!(b.len(), 5);
        // fop carries the class-loading crown.
        let fop = &b[1].blueprint;
        for other in &b {
            let weight =
                u64::from(other.blueprint.app_classes) * u64::from(other.blueprint.class_padding);
            assert!(u64::from(fop.app_classes) * u64::from(fop.class_padding) >= weight);
        }
    }
}
