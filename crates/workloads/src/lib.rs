//! Synthetic benchmark programs for the `vmprobe` runtime.
//!
//! The paper evaluates 16 applications across three suites (its Figure 5):
//! seven from **SpecJVM98** (run with the full `-s100` data set, or `-s10`
//! on the embedded board), five from **DaCapo** beta051009, and four
//! sequential **Java Grande Forum** kernels (data set A).
//!
//! The original workloads are Java programs we cannot run; each benchmark
//! here is a *bytecode program* for the `vmprobe` ISA whose resource
//! profile is modeled on published characterizations of its namesake:
//! total allocation volume, live-set size, object demographics (list/tree
//! churn vs long-lived record stores), pointer-chasing intensity,
//! integer vs floating-point mix, hot-method structure, and class-count /
//! class-file footprint. Those are precisely the axes the paper's results
//! move along (GC load, locality, compiler activity, class loading).
//!
//! All sizes are pre-scaled by the suite-wide `SIM_SCALE = 1/8` documented
//! in the `vmprobe` core crate: a paper heap of "32 MB" is simulated as
//! 4 MiB, and the blueprints below size their live sets against that.
//!
//! # Example
//!
//! ```
//! use vmprobe_workloads::{benchmark, InputScale, Suite};
//!
//! let b = benchmark("_209_db").expect("known benchmark");
//! assert_eq!(b.suite, Suite::SpecJvm98);
//! let program = b.build(InputScale::Full);
//! assert!(program.method_count() > 5);
//! ```

#![warn(missing_docs)]
mod blueprint;
mod dacapo;
mod jgf;
mod spec;
mod synth;

pub use blueprint::{build_program, Blueprint, InputScale};
pub use synth::StdLib;

use serde::{Deserialize, Serialize};
use vmprobe_bytecode::Program;

/// Which published suite a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// SpecJVM98 (seven applications).
    SpecJvm98,
    /// DaCapo beta051009 (five applications).
    DaCapo,
    /// Java Grande Forum sequential benchmarks, data set A (four kernels).
    JavaGrande,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Suite::SpecJvm98 => "SpecJVM98",
            Suite::DaCapo => "DaCapo",
            Suite::JavaGrande => "Java Grande Forum",
        })
    }
}

/// A registered benchmark.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Canonical name (matching the paper, e.g. `_213_javac`).
    pub name: &'static str,
    /// Owning suite.
    pub suite: Suite,
    /// One-line description from the paper's Figure 5.
    pub description: &'static str,
    /// Resource blueprint the program is generated from.
    pub blueprint: Blueprint,
}

impl Benchmark {
    /// Generate the executable program at the given input scale.
    pub fn build(&self, scale: InputScale) -> Program {
        blueprint::build_program(&self.blueprint, scale)
    }
}

/// Every benchmark, in the paper's Figure 5 order.
pub fn all_benchmarks() -> Vec<Benchmark> {
    let mut v = spec::benchmarks();
    v.extend(dacapo::benchmarks());
    v.extend(jgf::benchmarks());
    v
}

/// The benchmarks of one suite.
pub fn suite_benchmarks(suite: Suite) -> Vec<Benchmark> {
    all_benchmarks()
        .into_iter()
        .filter(|b| b.suite == suite)
        .collect()
}

/// Look up a benchmark by name.
pub fn benchmark(name: &str) -> Option<Benchmark> {
    all_benchmarks().into_iter().find(|b| b.name == name)
}

/// The five SpecJVM98 applications the paper runs on the PXA255 board
/// (Section VI-E), in its order.
pub fn pxa255_benchmarks() -> Vec<Benchmark> {
    [
        "_201_compress",
        "_202_jess",
        "_209_db",
        "_213_javac",
        "_228_jack",
    ]
    .iter()
    .map(|n| benchmark(n).expect("registered"))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_paper_figure5() {
        let all = all_benchmarks();
        assert_eq!(all.len(), 16);
        assert_eq!(suite_benchmarks(Suite::SpecJvm98).len(), 7);
        assert_eq!(suite_benchmarks(Suite::DaCapo).len(), 5);
        assert_eq!(suite_benchmarks(Suite::JavaGrande).len(), 4);
        assert_eq!(pxa255_benchmarks().len(), 5);
    }

    #[test]
    fn names_are_unique_and_lookup_works() {
        let all = all_benchmarks();
        for b in &all {
            assert_eq!(benchmark(b.name).unwrap().name, b.name);
        }
        let mut names: Vec<_> = all.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn every_benchmark_builds_and_verifies() {
        for b in all_benchmarks() {
            let p = b.build(InputScale::Reduced);
            assert!(p.class_count() > 10, "{}: classes", b.name);
            assert!(p.method_count() >= 8, "{}: methods", b.name);
        }
    }
}
