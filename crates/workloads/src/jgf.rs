//! The four sequential Java Grande Forum benchmarks (data set A) the paper
//! uses: numerically intensive kernels with comparatively small, long-lived
//! data and heavy floating-point loops.

use crate::{Benchmark, Blueprint, Suite};

/// The Java Grande benchmarks in the paper's order.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "euler",
            suite: Suite::JavaGrande,
            description: "Benchmark on computational fluid dynamics",
            blueprint: Blueprint {
                phases: 10,
                lists_per_phase: 10,
                nodes_per_list: 500, // per-iteration temporaries
                trees_per_phase: 0,
                tree_depth: 0,
                live_records: 2_600, // flow-field state arrays (~0.9 MiB)
                record_payload_words: 28,
                queries_per_phase: 3_500,
                query_walk: 12,
                int_iters: 4_000,
                fp_iters: 60_000,
                math_every: 59,
                hot_kernels: 4,
                app_classes: 14,
                class_padding: 400,
                work_array_words: 49_152,
            },
        },
        Benchmark {
            name: "moldyn",
            suite: Suite::JavaGrande,
            description: "A molecular dynamic simulator",
            blueprint: Blueprint {
                phases: 12,
                lists_per_phase: 1,
                nodes_per_list: 200,
                trees_per_phase: 0,
                tree_depth: 0,
                live_records: 800, // particle state
                record_payload_words: 12,
                queries_per_phase: 1_500,
                query_walk: 8,
                int_iters: 0,
                fp_iters: 110_000, // pairwise-force loops dominate
                math_every: 41,
                hot_kernels: 5,
                app_classes: 12,
                class_padding: 400,
                work_array_words: 32_768,
            },
        },
        Benchmark {
            name: "raytracer",
            suite: Suite::JavaGrande,
            description: "A 3D raytracer",
            blueprint: Blueprint {
                phases: 10,
                lists_per_phase: 42,
                nodes_per_list: 600, // per-ray vector garbage
                trees_per_phase: 0,
                tree_depth: 0,
                live_records: 2_000,
                record_payload_words: 6,
                queries_per_phase: 2_000,
                query_walk: 3,
                int_iters: 0,
                fp_iters: 55_000,
                math_every: 37,
                hot_kernels: 6,
                app_classes: 16,
                class_padding: 500,
                work_array_words: 32_768,
            },
        },
        Benchmark {
            name: "search",
            suite: Suite::JavaGrande,
            description: "An Alpha-Beta prune search",
            blueprint: Blueprint {
                phases: 14,
                lists_per_phase: 15,
                nodes_per_list: 700,
                trees_per_phase: 4,
                tree_depth: 11, // game trees, built and pruned
                live_records: 1_200,
                record_payload_words: 2,
                queries_per_phase: 2_500,
                query_walk: 2,
                int_iters: 35_000, // board evaluation is integer work
                fp_iters: 0,
                math_every: 0,
                hot_kernels: 3,
                app_classes: 10,
                class_padding: 400,
                work_array_words: 40_960,
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_fp_leaning_kernels() {
        let b = benchmarks();
        assert_eq!(b.len(), 4);
        // Three of four are FP-dominated; search is the integer outlier.
        let fp_heavy = b.iter().filter(|x| x.blueprint.fp_iters > 0).count();
        assert_eq!(fp_heavy, 3);
        let search = &b[3].blueprint;
        assert!(search.trees_per_phase > 0 && search.fp_iters == 0);
    }
}
