//! Benchmark blueprints: declarative resource profiles turned into
//! executable programs.

use serde::{Deserialize, Serialize};
use vmprobe_bytecode::{ArrKind, Program, ProgramBuilder, Ty};

use crate::synth;

/// Input-set scaling, mirroring the paper's use of SpecJVM98 `-s100` on
/// the P6 and `-s10` on the memory-constrained PXA255 board.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InputScale {
    /// Full data set (`-s100` / DaCapo default / JGF size A).
    Full,
    /// Reduced data set (`-s10`): an eighth of the phase work and a
    /// quarter of the live set.
    Reduced,
}

impl InputScale {
    fn phase_div(self) -> u32 {
        match self {
            InputScale::Full => 1,
            InputScale::Reduced => 8,
        }
    }

    fn live_div(self) -> u32 {
        match self {
            InputScale::Full => 1,
            InputScale::Reduced => 4,
        }
    }
}

/// The resource profile a benchmark program is generated from.
///
/// All counts are per the *simulated* scale (`SIM_SCALE = 1/8` of paper
/// sizes). The interesting axes:
///
/// * `lists_per_phase`/`nodes_per_list`/`trees`/`tree_depth` — short- and
///   medium-lived allocation volume (GC load);
/// * `live_records`/`record_payload_words` — long-lived live set (copy
///   cost, heap pressure);
/// * `queries_per_phase`/`query_walk` — pointer-chasing intensity over the
///   live set (locality sensitivity, GC-vs-heap crossovers);
/// * `int_iters`/`fp_iters`/`math_every` — compute mix (IPC, power, PXA255
///   software-float penalty);
/// * `hot_kernels` — distinct hot methods (adaptive-compiler activity);
/// * `app_classes`/`class_padding` — class-count and class-file footprint
///   (class-loader cost).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Blueprint {
    /// Benchmark phases (outer iterations).
    pub phases: u32,
    /// Linked lists churned per phase.
    pub lists_per_phase: u32,
    /// Nodes per churned list.
    pub nodes_per_list: u32,
    /// Binary trees built and dropped per phase.
    pub trees_per_phase: u32,
    /// Depth of each churn tree.
    pub tree_depth: u32,
    /// Records in the long-lived store.
    pub live_records: u32,
    /// Payload words per record.
    pub record_payload_words: u32,
    /// Store probes per phase.
    pub queries_per_phase: u32,
    /// Payload words read per probe.
    pub query_walk: u32,
    /// Integer-kernel iterations per phase.
    pub int_iters: u32,
    /// Floating-point-kernel iterations per phase (split across
    /// `hot_kernels` clones).
    pub fp_iters: u32,
    /// Call a math intrinsic every N fp iterations (0 = never).
    pub math_every: u32,
    /// Number of distinct hot kernel methods.
    pub hot_kernels: u32,
    /// Application classes beyond the data classes.
    pub app_classes: u32,
    /// Class-file padding bytes per application class.
    pub class_padding: u32,
    /// Words in the static integer work array.
    pub work_array_words: u32,
}

impl Default for Blueprint {
    fn default() -> Self {
        Self {
            phases: 8,
            lists_per_phase: 20,
            nodes_per_list: 500,
            trees_per_phase: 0,
            tree_depth: 8,
            live_records: 500,
            record_payload_words: 4,
            queries_per_phase: 2_000,
            query_walk: 2,
            int_iters: 20_000,
            fp_iters: 0,
            math_every: 0,
            hot_kernels: 3,
            app_classes: 20,
            class_padding: 600,
            work_array_words: 4_096,
        }
    }
}

impl Blueprint {
    /// Estimated bytes allocated over a full-scale run (churn + trees +
    /// store), for inventory reports.
    pub fn est_alloc_bytes(&self) -> u64 {
        let node = 32u64;
        let tree_node = 40u64;
        let churn = u64::from(self.phases)
            * u64::from(self.lists_per_phase)
            * u64::from(self.nodes_per_list)
            * node;
        let trees = u64::from(self.phases)
            * u64::from(self.trees_per_phase)
            * ((1u64 << self.tree_depth) - 1)
            * tree_node;
        let store =
            u64::from(self.live_records) * (40 + 16 + 8 * u64::from(self.record_payload_words));
        churn + trees + store
    }

    /// Estimated live-set bytes (the record store).
    pub fn est_live_bytes(&self) -> u64 {
        u64::from(self.live_records) * (40 + 16 + 8 * u64::from(self.record_payload_words))
    }
}

/// Generate the executable program for `bp` at `scale`.
pub fn build_program(bp: &Blueprint, scale: InputScale) -> Program {
    let pd = scale.phase_div();
    let ld = scale.live_div();
    let phases = (bp.phases / pd).max(1);
    let live_records = (bp.live_records / ld).max(16);
    let queries = (bp.queries_per_phase / pd.min(2)).max(1);
    let int_iters = bp.int_iters / pd.min(4);
    let fp_iters = bp.fp_iters / pd.min(4);
    // A probe can never walk past the payload it probes.
    let query_walk = bp.query_walk.min(bp.record_payload_words);

    let mut p = ProgramBuilder::new();
    let lib = synth::stdlib(&mut p, 2_000);
    let node = synth::define_node(&mut p);
    let record = synth::define_record(&mut p);
    let tree = synth::define_tree(&mut p);

    // Application classes (drive class-loader cost); instantiated once at
    // startup like class initializers running.
    let mut app_classes = Vec::new();
    for i in 0..bp.app_classes {
        app_classes.push(
            p.class(format!("app/Module{i}"))
                .field("state", Ty::Ref)
                .field("id", Ty::Int)
                .classfile_padding(bp.class_padding)
                .build(),
        );
    }

    let store = p.static_slot("store", Ty::Ref);
    let seed = p.static_slot("seed", Ty::Int);
    let chk = p.static_slot("checksum", Ty::Int);
    let work = p.static_slot("work", Ty::Ref);

    let build_list = synth::build_list_method(&mut p, node);
    let churn = synth::churn_method(&mut p, node, build_list);
    let build_tree = synth::build_tree_method(&mut p, tree);
    let build_store = synth::build_store_method(&mut p, record, store);
    let query = synth::query_method(&mut p, record, store, seed, chk);
    let int_kernel = synth::int_kernel_method(&mut p, "int_kernel", work, chk);
    let mut fp_kernels = Vec::new();
    for k in 0..bp.hot_kernels.max(1) {
        fp_kernels.push(synth::fp_kernel_method(
            &mut p,
            &format!("fp_kernel_{k}"),
            bp.math_every,
            chk,
        ));
    }

    let app_init = {
        let classes = app_classes.clone();
        let work_words = bp.work_array_words;
        p.function("app_init", 0, 1, move |b| {
            for &c in &classes {
                b.new_obj(c).store(0);
            }
            b.const_i(i64::from(work_words))
                .new_arr(ArrKind::Int)
                .put_static(work);
            b.const_i(0x5eed_5eed).put_static(seed);
            b.const_i(0).put_static(chk);
            b.ret();
        })
    };

    let bp2 = *bp;
    let fp_clones = fp_kernels.clone();
    let main = p.function("main", 0, 1, move |b| {
        b.call(lib.init);
        b.call(app_init);
        b.const_i(i64::from(live_records))
            .const_i(i64::from(bp2.record_payload_words))
            .call(build_store);
        b.for_range(0, 0, i64::from(phases), move |b| {
            if bp2.lists_per_phase > 0 {
                b.const_i(i64::from(bp2.lists_per_phase))
                    .const_i(i64::from(bp2.nodes_per_list))
                    .call(churn);
            }
            for _ in 0..bp2.trees_per_phase {
                b.const_i(i64::from(bp2.tree_depth)).call(build_tree).pop();
            }
            if queries > 0 {
                b.const_i(i64::from(queries))
                    .const_i(i64::from(query_walk))
                    .call(query);
            }
            if int_iters > 0 {
                b.const_i(i64::from(int_iters)).call(int_kernel);
            }
            if fp_iters > 0 {
                let per = i64::from(fp_iters / fp_clones.len() as u32);
                for &fk in &fp_clones {
                    b.const_i(per).call(fk);
                }
            }
        });
        b.get_static(chk).ret_value();
    });

    p.finish(main).expect("generated benchmark must verify")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_blueprint_builds_and_runs_shape() {
        let bp = Blueprint::default();
        let p = build_program(&bp, InputScale::Reduced);
        assert!(p.class_count() > 40);
        assert!(p.total_classfile_bytes() > 30_000);
    }

    #[test]
    fn estimates_scale_with_parameters() {
        let small = Blueprint::default();
        let big = Blueprint {
            nodes_per_list: 5_000,
            ..small
        };
        assert!(big.est_alloc_bytes() > small.est_alloc_bytes());
        let fat = Blueprint {
            live_records: 50_000,
            ..small
        };
        assert!(fat.est_live_bytes() > small.est_live_bytes());
    }

    #[test]
    fn reduced_scale_shrinks_the_program_work() {
        // Reduced inputs divide phases; the program still verifies.
        let bp = Blueprint {
            phases: 16,
            ..Blueprint::default()
        };
        let full = build_program(&bp, InputScale::Full);
        let reduced = build_program(&bp, InputScale::Reduced);
        // Same structure, different constants.
        assert_eq!(full.method_count(), reduced.method_count());
    }
}
