//! Shared bytecode generators: standard-library prelude, data-structure
//! churn, record stores, pointer-chasing queries and compute kernels.
//!
//! Every benchmark program is assembled from these parts; blueprints (see
//! [`crate::Blueprint`]) choose the mix and the sizes.

use vmprobe_bytecode::{ArrKind, ClassId, MathFn, MethodBuilder, MethodId, ProgramBuilder, Ty};

/// Linear congruential generator constants (Knuth's MMIX), used by the
/// bytecode-level PRNG that drives query index selection deterministically.
const LCG_A: i64 = 6364136223846793005;
const LCG_C: i64 = 1442695040888963407;

/// Handles to the standard-library prelude.
#[derive(Debug, Clone)]
pub struct StdLib {
    /// Classes in the prelude (all marked `system`).
    pub classes: Vec<ClassId>,
    /// Call once at program start: touches the library classes the way a
    /// real runtime resolves `java.lang.*` and the collections during
    /// startup (free on a Jikes-style boot image; a storm of class-loader
    /// calls on Kaffe).
    pub init: MethodId,
}

/// Names of the modeled system classes (a representative slice of what a
/// JVM resolves while booting a typical application).
const STDLIB_CLASSES: [&str; 36] = [
    "java/lang/Object",
    "java/lang/Class",
    "java/lang/String",
    "java/lang/StringBuilder",
    "java/lang/System",
    "java/lang/Thread",
    "java/lang/Throwable",
    "java/lang/Exception",
    "java/lang/Integer",
    "java/lang/Long",
    "java/lang/Float",
    "java/lang/Double",
    "java/lang/Character",
    "java/lang/Boolean",
    "java/lang/Math",
    "java/lang/Runtime",
    "java/lang/ClassLoader",
    "java/lang/ref/Reference",
    "java/util/ArrayList",
    "java/util/HashMap",
    "java/util/Hashtable",
    "java/util/Vector",
    "java/util/Iterator",
    "java/util/Arrays",
    "java/util/Properties",
    "java/util/Enumeration",
    "java/io/InputStream",
    "java/io/OutputStream",
    "java/io/PrintStream",
    "java/io/File",
    "java/io/BufferedReader",
    "java/io/FileInputStream",
    "java/net/URL",
    "java/security/AccessController",
    "java/util/zip/ZipFile",
    "java/util/jar/JarFile",
];

/// Additional bootstrap classes resolved transitively by the named ones
/// (a real JVM pulls in several hundred classes before `main` runs).
const STDLIB_EXTRA: usize = 54;

/// Declare the standard-library prelude: `padding` models the per-class
/// class-file weight (constant pools, attributes) beyond fields and code.
pub fn stdlib(p: &mut ProgramBuilder, padding: u32) -> StdLib {
    let mut classes = Vec::with_capacity(STDLIB_CLASSES.len() + STDLIB_EXTRA);
    for name in STDLIB_CLASSES {
        classes.push(
            p.class(name)
                .system(true)
                .field("a", Ty::Ref)
                .field("b", Ty::Int)
                .classfile_padding(padding)
                .build(),
        );
    }
    for i in 0..STDLIB_EXTRA {
        classes.push(
            p.class(format!("java/internal/Boot{i}"))
                .system(true)
                .field("a", Ty::Ref)
                .classfile_padding(padding)
                .build(),
        );
    }
    // The init method instantiates each library class once (resolution +
    // a small allocation), as class initializers do.
    let holder = classes[0];
    let class_list = classes.clone();
    let init = p.method(holder, "bootstrap", 0, 1, move |b| {
        for &c in &class_list {
            b.new_obj(c).store(0);
        }
        b.ret();
    });
    StdLib { classes, init }
}

/// Declare the `Node` class used by list churn: `{next: Ref, val: Int}`.
pub fn define_node(p: &mut ProgramBuilder) -> ClassId {
    p.class("Node")
        .field("next", Ty::Ref)
        .field("val", Ty::Int)
        .build()
}

/// Field indices of [`define_node`]'s class.
pub const NODE_NEXT: u16 = 0;
/// Node value field index.
pub const NODE_VAL: u16 = 1;

/// Declare the `Record` class used by long-lived stores:
/// `{key: Int, val: Int, payload: Ref}`.
pub fn define_record(p: &mut ProgramBuilder) -> ClassId {
    p.class("Record")
        .field("key", Ty::Int)
        .field("val", Ty::Int)
        .field("payload", Ty::Ref)
        .build()
}

/// Record field indices.
pub const REC_KEY: u16 = 0;
/// Record value field index.
pub const REC_VAL: u16 = 1;
/// Record payload (array) field index.
pub const REC_PAYLOAD: u16 = 2;

/// Declare the `TreeNode` class: `{left: Ref, right: Ref, key: Int}`.
pub fn define_tree(p: &mut ProgramBuilder) -> ClassId {
    p.class("TreeNode")
        .field("left", Ty::Ref)
        .field("right", Ty::Ref)
        .field("key", Ty::Int)
        .build()
}

/// Emit `seed = seed * LCG_A + LCG_C` on local `seed`.
fn lcg_step(b: &mut MethodBuilder, seed: u8) {
    b.load(seed)
        .const_i(LCG_A)
        .mul()
        .const_i(LCG_C)
        .add()
        .store(seed);
}

/// Emit `push((seed >>> 33) % modulo_local)` (non-negative index).
fn lcg_index(b: &mut MethodBuilder, seed: u8, modulo_local: u8) {
    b.load(seed)
        .const_i(33)
        .shr()
        .const_i(0x7fff_ffff)
        .band()
        .load(modulo_local)
        .rem();
}

/// `build_list(n) -> head`: allocate a linked list of `n` nodes (arg in
/// local 0), threading `next` pointers through the write barrier.
pub fn build_list_method(p: &mut ProgramBuilder, node: ClassId) -> MethodId {
    // locals: 0 = n, 1 = i, 2 = head
    p.method(node, "build_list", 1, 2, |b| {
        b.null().store(2);
        b.const_i(0).store(1);
        b.loop_while(
            |b| {
                b.load(1).load(0).lt();
            },
            |b| {
                // n = new Node; n.next = head; n.val = i; head = n
                b.new_obj(node).dup().dup();
                b.load(2).put_field(NODE_NEXT);
                b.load(1).put_field(NODE_VAL);
                b.store(2);
                b.load(1).const_i(1).add().store(1);
            },
        );
        b.load(2).ret_value();
    })
}

/// `churn(lists, nodes)`: build and immediately drop `lists` linked lists
/// of `nodes` nodes each — the short-lived object storm generational
/// collectors feast on.
pub fn churn_method(p: &mut ProgramBuilder, node: ClassId, build_list: MethodId) -> MethodId {
    // locals: 0 = lists, 1 = nodes, 2 = i
    p.method(node, "churn", 2, 1, move |b| {
        b.const_i(0).store(2);
        b.loop_while(
            |b| {
                b.load(2).load(0).lt();
            },
            |b| {
                b.load(1).call(build_list).pop();
                b.load(2).const_i(1).add().store(2);
            },
        );
        b.ret();
    })
}

/// `build_tree(depth) -> root`: recursive binary-tree construction
/// (medium-lived data, dropped per phase).
pub fn build_tree_method(p: &mut ProgramBuilder, tree: ClassId) -> MethodId {
    let m = p.declare(tree, "build_tree", 1, 1, true);
    p.define(m, move |b| {
        let grow = b.label();
        b.load(0).const_i(0).gt().br_true(grow);
        b.null().ret_value();
        b.bind(grow);
        b.new_obj(tree).store(1);
        b.load(1).load(0).put_field(2); // key = depth
        b.load(1);
        b.load(0).const_i(1).sub().call(m);
        b.put_field(0); // left
        b.load(1);
        b.load(0).const_i(1).sub().call(m);
        b.put_field(1); // right
        b.load(1).ret_value();
    });
    m
}

/// `build_store(n, payload_words)`: create the long-lived record store — a
/// static reference array of `n` records, each owning an int-array payload.
/// This is the benchmark's *live set*.
pub fn build_store_method(p: &mut ProgramBuilder, record: ClassId, store_static: u16) -> MethodId {
    // locals: 0 = n, 1 = payload_words, 2 = i, 3 = rec
    p.method(record, "build_store", 2, 2, move |b| {
        b.load(0).new_arr(ArrKind::Ref).put_static(store_static);
        b.const_i(0).store(2);
        b.loop_while(
            |b| {
                b.load(2).load(0).lt();
            },
            |b| {
                b.new_obj(record).store(3);
                b.load(3).load(2).put_field(REC_KEY);
                b.load(3).load(2).const_i(3).mul().put_field(REC_VAL);
                b.load(3)
                    .load(1)
                    .new_arr(ArrKind::Int)
                    .put_field(REC_PAYLOAD);
                b.get_static(store_static).load(2).load(3).astore();
                b.load(2).const_i(1).add().store(2);
            },
        );
        b.ret();
    })
}

/// `query(count, walk)`: probe the record store at pseudo-random indices,
/// reading each record's fields and walking `walk` words of its payload —
/// the pointer-chasing access pattern whose locality copying collectors
/// improve (the paper's `_209_db` effect).
pub fn query_method(
    p: &mut ProgramBuilder,
    record: ClassId,
    store_static: u16,
    seed_static: u16,
    checksum_static: u16,
) -> MethodId {
    let _ = record;
    // locals: 0 = count, 1 = walk, 2 = i, 3 = seed, 4 = len, 5 = rec, 6 = j
    p.function("query", 2, 5, move |b| {
        b.get_static(seed_static).store(3);
        b.get_static(store_static).arr_len().store(4);
        b.const_i(0).store(2);
        b.loop_while(
            |b| {
                b.load(2).load(0).lt();
            },
            |b| {
                lcg_step(b, 3);
                // rec = store[index]
                b.get_static(store_static);
                lcg_index(b, 3, 4);
                b.aload().store(5);
                // checksum += rec.key + rec.val
                b.get_static(checksum_static);
                b.load(5).get_field(REC_KEY).add();
                b.load(5).get_field(REC_VAL).add();
                b.put_static(checksum_static);
                // walk the payload
                b.const_i(0).store(6);
                b.loop_while(
                    |b| {
                        b.load(6).load(1).lt();
                    },
                    |b| {
                        b.get_static(checksum_static);
                        b.load(5).get_field(REC_PAYLOAD).load(6).aload().add();
                        b.put_static(checksum_static);
                        b.load(6).const_i(1).add().store(6);
                    },
                );
                b.load(2).const_i(1).add().store(2);
            },
        );
        b.load(3).put_static(seed_static);
        b.ret();
    })
}

/// `int_kernel(iters)`: a compress-style integer loop over a static work
/// array — shifts, masks, dependent loads and stores.
pub fn int_kernel_method(
    p: &mut ProgramBuilder,
    name: &str,
    work_static: u16,
    checksum_static: u16,
) -> MethodId {
    // locals: 0 = iters, 1 = i, 2 = acc, 3 = len
    p.function(name, 1, 3, move |b| {
        b.get_static(work_static).arr_len().store(3);
        b.const_i(0).store(2);
        b.const_i(0).store(1);
        b.loop_while(
            |b| {
                b.load(1).load(0).lt();
            },
            |b| {
                // acc = ((acc << 1) ^ work[i % len]) + i
                b.load(2).const_i(1).shl();
                b.get_static(work_static).load(1).load(3).rem().aload();
                b.bxor().load(1).add().store(2);
                // work[(i*7 + 3) % len] = acc & 0xffff
                b.get_static(work_static);
                b.load(1).const_i(7).mul().const_i(3).add().load(3).rem();
                b.load(2).const_i(0xffff).band();
                b.astore();
                b.load(1).const_i(1).add().store(1);
            },
        );
        b.get_static(checksum_static)
            .load(2)
            .add()
            .put_static(checksum_static);
        b.ret();
    })
}

/// `fp_kernel(iters)`: a floating-point loop (mpegaudio / Java Grande
/// style); every `math_every` iterations it calls a transcendental
/// intrinsic (0 = never).
pub fn fp_kernel_method(
    p: &mut ProgramBuilder,
    name: &str,
    math_every: u32,
    checksum_static: u16,
) -> MethodId {
    // locals: 0 = iters, 1 = i, 2 = x, 3 = y
    p.function(name, 1, 3, move |b| {
        b.const_f(1.000001).store(2);
        b.const_f(0.5).store(3);
        b.const_i(0).store(1);
        b.loop_while(
            |b| {
                b.load(1).load(0).lt();
            },
            |b| {
                // x = x * 1.0000001 + y * 0.999
                b.load(2).const_f(1.000_000_1).fmul();
                b.load(3).const_f(0.999).fmul().fadd().store(2);
                // y = y + x * 1e-7
                b.load(3).load(2).const_f(1e-7).fmul().fadd().store(3);
                if math_every > 0 {
                    b.load(1)
                        .const_i(i64::from(math_every))
                        .rem()
                        .const_i(0)
                        .eq();
                    b.if_then(|b| {
                        b.load(2).load(3).fadd().math(MathFn::Sqrt).store(2);
                    });
                }
                b.load(1).const_i(1).add().store(1);
            },
        );
        b.get_static(checksum_static)
            .load(2)
            .f2i()
            .add()
            .put_static(checksum_static);
        b.ret();
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmprobe_bytecode::ProgramBuilder;

    #[test]
    fn stdlib_declares_system_classes() {
        let mut p = ProgramBuilder::new();
        let lib = stdlib(&mut p, 1024);
        assert_eq!(lib.classes.len(), 36 + STDLIB_EXTRA);
        let main = p.function("main", 0, 0, move |b| {
            b.call(lib.init).ret();
        });
        let prog = p.finish(main).unwrap();
        assert!(prog.classes().iter().filter(|c| c.is_system()).count() >= 36);
    }

    #[test]
    fn all_generators_verify_together() {
        let mut p = ProgramBuilder::new();
        let _lib = stdlib(&mut p, 256);
        let node = define_node(&mut p);
        let record = define_record(&mut p);
        let tree = define_tree(&mut p);
        let store = p.static_slot("store", Ty::Ref);
        let seed = p.static_slot("seed", Ty::Int);
        let chk = p.static_slot("chk", Ty::Int);
        let work = p.static_slot("work", Ty::Ref);

        let bl = build_list_method(&mut p, node);
        let churn = churn_method(&mut p, node, bl);
        let bt = build_tree_method(&mut p, tree);
        let bs = build_store_method(&mut p, record, store);
        let q = query_method(&mut p, record, store, seed, chk);
        let ik = int_kernel_method(&mut p, "int_kernel", work, chk);
        let fk = fp_kernel_method(&mut p, "fp_kernel", 16, chk);

        let main = p.function("main", 0, 0, move |b| {
            b.const_i(64)
                .new_arr(vmprobe_bytecode::ArrKind::Int)
                .put_static(work);
            b.const_i(1).put_static(seed);
            b.const_i(50).const_i(4).call(bs);
            b.const_i(3).const_i(20).call(churn);
            b.const_i(6).call(bt).pop();
            b.const_i(30).const_i(2).call(q);
            b.const_i(100).call(ik);
            b.const_i(100).call(fk);
            b.get_static(chk).ret_value();
        });
        assert!(p.finish(main).is_ok());
    }
}
