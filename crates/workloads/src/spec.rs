//! The seven SpecJVM98 applications (paper Figure 5, run with `-s100`).
//!
//! Each blueprint encodes the published character of its namesake:
//! `_201_compress` is an integer kernel with little allocation,
//! `_209_db` holds a large memory-resident store it pointer-chases,
//! `_213_javac` is the allocation monster (the paper's 60 %-JVM-energy
//! case at 32 MB), `_222_mpegaudio` is FP-dense with many hot methods,
//! and so on. Counts are at the suite's 1/8 simulation scale.

use crate::{Benchmark, Blueprint, Suite};

/// The SpecJVM98 benchmarks in the paper's order.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "_201_compress",
            suite: Suite::SpecJvm98,
            description: "A modified Lempel-Ziv compression algorithm",
            blueprint: Blueprint {
                phases: 6,
                lists_per_phase: 2,
                nodes_per_list: 600,
                trees_per_phase: 0,
                tree_depth: 0,
                live_records: 900,
                record_payload_words: 8,
                queries_per_phase: 1_500,
                query_walk: 4,
                int_iters: 160_000,
                fp_iters: 0,
                math_every: 0,
                hot_kernels: 2,
                app_classes: 12,
                class_padding: 400,
                work_array_words: 49_152, // 384 KB compression tables
            },
        },
        Benchmark {
            name: "_202_jess",
            suite: Suite::SpecJvm98,
            description: "A Java Expert Shell System",
            blueprint: Blueprint {
                phases: 10,
                lists_per_phase: 56,
                nodes_per_list: 800,
                trees_per_phase: 2,
                tree_depth: 8,
                live_records: 8_000,
                record_payload_words: 4,
                queries_per_phase: 3_000,
                query_walk: 2,
                int_iters: 12_000,
                fp_iters: 0,
                math_every: 0,
                hot_kernels: 4,
                app_classes: 30,
                class_padding: 600,
                work_array_words: 40_960,
            },
        },
        Benchmark {
            name: "_209_db",
            suite: Suite::SpecJvm98,
            description: "Database application working on a memory-resident database",
            blueprint: Blueprint {
                phases: 8,
                lists_per_phase: 16,
                nodes_per_list: 700,
                trees_per_phase: 0,
                tree_depth: 0,
                live_records: 6_000, // ~1.1 MiB live: the memory-resident DB
                record_payload_words: 16,
                queries_per_phase: 9_000, // chase-dominated
                query_walk: 10,
                int_iters: 6_000,
                fp_iters: 0,
                math_every: 0,
                hot_kernels: 2,
                app_classes: 16,
                class_padding: 500,
                work_array_words: 32_768,
            },
        },
        Benchmark {
            name: "_213_javac",
            suite: Suite::SpecJvm98,
            description: "A Java compiler based on SDK 1.02",
            blueprint: Blueprint {
                phases: 12,
                lists_per_phase: 34,
                nodes_per_list: 900,
                trees_per_phase: 3,
                tree_depth: 10, // per-file ASTs, built and dropped
                live_records: 7_500,
                record_payload_words: 8,
                queries_per_phase: 4_000,
                query_walk: 3,
                int_iters: 10_000,
                fp_iters: 0,
                math_every: 0,
                hot_kernels: 6,
                app_classes: 42,
                class_padding: 800,
                work_array_words: 40_960,
            },
        },
        Benchmark {
            name: "_222_mpegaudio",
            suite: Suite::SpecJvm98,
            description: "Audio decoder based on the ISO MPEG Layer-3 standard",
            blueprint: Blueprint {
                phases: 8,
                lists_per_phase: 2,
                nodes_per_list: 300,
                trees_per_phase: 0,
                tree_depth: 0,
                live_records: 500,
                record_payload_words: 8,
                queries_per_phase: 800,
                query_walk: 2,
                int_iters: 12_000,
                fp_iters: 70_000, // FP decode loops
                math_every: 97,
                hot_kernels: 8, // many hot filter methods: opt-compiler peak
                app_classes: 24,
                class_padding: 500,
                work_array_words: 49_152,
            },
        },
        Benchmark {
            name: "_227_mtrt",
            suite: Suite::SpecJvm98,
            description: "Raytracing application",
            blueprint: Blueprint {
                phases: 10,
                lists_per_phase: 45,
                nodes_per_list: 550, // short-lived ray/vector objects
                trees_per_phase: 1,
                tree_depth: 8, // scene BSP
                live_records: 7_000,
                record_payload_words: 8,
                queries_per_phase: 2_500,
                query_walk: 3,
                int_iters: 4_000,
                fp_iters: 35_000,
                math_every: 31,
                hot_kernels: 6,
                app_classes: 28,
                class_padding: 600,
                work_array_words: 40_960,
            },
        },
        Benchmark {
            name: "_228_jack",
            suite: Suite::SpecJvm98,
            description: "A Java Parser generator",
            blueprint: Blueprint {
                phases: 16, // jack runs its input 16 times
                lists_per_phase: 30,
                nodes_per_list: 600,
                trees_per_phase: 2,
                tree_depth: 8,
                live_records: 7_000,
                record_payload_words: 4,
                queries_per_phase: 2_500,
                query_walk: 2,
                int_iters: 14_000,
                fp_iters: 0,
                math_every: 0,
                hot_kernels: 4,
                app_classes: 26,
                class_padding: 700,
                work_array_words: 40_960,
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_benchmarks_with_spec_character() {
        let b = benchmarks();
        assert_eq!(b.len(), 7);
        // compress is kernel-dominated, javac allocation-dominated.
        let compress = &b[0].blueprint;
        let javac = &b[3].blueprint;
        assert!(javac.est_alloc_bytes() > 4 * compress.est_alloc_bytes());
        // db owns the largest live set.
        let db = &b[2].blueprint;
        for other in &b {
            if other.name != "_209_db" {
                assert!(db.est_live_bytes() >= other.blueprint.est_live_bytes());
            }
        }
        // mpegaudio is the FP + hot-method outlier.
        let mpeg = &b[4].blueprint;
        assert!(mpeg.fp_iters > 0 && mpeg.hot_kernels >= 8);
    }
}
