//! Execution-level tests for the benchmark programs: the generated
//! bytecode must run, produce stable checksums, and exhibit the resource
//! character its blueprint declares.

use vmprobe_bytecode::Program;
use vmprobe_heap::CollectorKind;
use vmprobe_vm::{Vm, VmConfig};
use vmprobe_workloads::{all_benchmarks, benchmark, InputScale, Suite};

fn run(program: Program) -> vmprobe_vm::RunOutcome {
    Vm::new(program, VmConfig::jikes(CollectorKind::GenMs, 2 << 20))
        .run()
        .expect("benchmark runs")
}

#[test]
fn checksums_are_stable_across_rebuilds() {
    for name in ["_201_compress", "fop", "moldyn"] {
        let b = benchmark(name).unwrap();
        let a = run(b.build(InputScale::Reduced)).result;
        let c = run(b.build(InputScale::Reduced)).result;
        assert_eq!(a, c, "{name}: rebuilt program changed its checksum");
        assert!(a.is_some(), "{name}: benchmarks return a checksum");
    }
}

#[test]
fn fp_benchmarks_execute_fp_work_and_int_benchmarks_do_not() {
    let moldyn = run(benchmark("moldyn").unwrap().build(InputScale::Reduced));
    let compress = run(benchmark("_201_compress")
        .unwrap()
        .build(InputScale::Reduced));
    // moldyn is FP-dominated; compress's FP ops are incidental (a few from
    // shared machinery), orders of magnitude fewer.
    let moldyn_time = moldyn.duration.seconds();
    let compress_time = compress.duration.seconds();
    assert!(moldyn_time > 0.0 && compress_time > 0.0);
    // Both allocate, but compress's declared character is kernel-heavy.
    assert!(
        moldyn.vm.allocations < compress.vm.allocations * 50,
        "sanity on allocation counts"
    );
}

#[test]
fn allocation_volumes_scale_with_the_blueprint() {
    let javac = run(benchmark("_213_javac").unwrap().build(InputScale::Reduced));
    let mpeg = run(benchmark("_222_mpegaudio")
        .unwrap()
        .build(InputScale::Reduced));
    assert!(
        javac.total_alloc_bytes > 2 * mpeg.total_alloc_bytes,
        "javac ({}) must out-allocate mpegaudio ({})",
        javac.total_alloc_bytes,
        mpeg.total_alloc_bytes
    );
}

#[test]
fn reduced_scale_shrinks_work_substantially() {
    let b = benchmark("_228_jack").unwrap();
    let full = run(b.build(InputScale::Full));
    let reduced = run(b.build(InputScale::Reduced));
    assert!(
        full.vm.bytecodes > 3 * reduced.vm.bytecodes,
        "s100 ({}) should dwarf s10 ({})",
        full.vm.bytecodes,
        reduced.vm.bytecodes
    );
}

#[test]
fn suite_membership_matches_character() {
    // Java Grande kernels carry FP loops; three of four declare them.
    let jgf = all_benchmarks()
        .into_iter()
        .filter(|b| b.suite == Suite::JavaGrande)
        .collect::<Vec<_>>();
    assert_eq!(jgf.iter().filter(|b| b.blueprint.fp_iters > 0).count(), 3);
    // DaCapo is the memory-intensive suite: every member churns lists.
    for b in all_benchmarks()
        .into_iter()
        .filter(|b| b.suite == Suite::DaCapo)
    {
        assert!(
            b.blueprint.lists_per_phase > 0,
            "{}: DaCapo must churn",
            b.name
        );
    }
}

#[test]
fn class_surface_drives_classfile_footprint() {
    let fop = benchmark("fop").unwrap().build(InputScale::Full);
    let moldyn = benchmark("moldyn").unwrap().build(InputScale::Full);
    assert!(
        fop.total_classfile_bytes() > 2 * moldyn.total_classfile_bytes(),
        "fop's class surface must dominate"
    );
}
