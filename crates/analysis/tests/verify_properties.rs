//! Property and mutation tests for the dataflow verifier.
//!
//! Two obligations: every program the builder emits (including all
//! shipped benchmarks at both input scales) passes the dataflow tier,
//! and corrupted programs are rejected — never verified, never a panic.

use proptest::prelude::*;
use vmprobe_analysis::{verify_program, AnalysisError};
use vmprobe_bytecode::{ClassId, MathFn, MethodId, Op, Program, ProgramBuilder, Ty};
use vmprobe_workloads::{all_benchmarks, InputScale};

/// Every shipped benchmark, at both input scales, passes both tiers.
/// These are the exact programs the golden energy figures run, so the
/// load-time verification tier must wave all of them through.
#[test]
fn all_benchmarks_pass_the_dataflow_verifier() {
    for bench in all_benchmarks() {
        for scale in [InputScale::Full, InputScale::Reduced] {
            let program = bench.build(scale);
            let analysis = verify_program(&program);
            assert!(
                analysis.is_ok(),
                "{} @ {scale:?} rejected: {}",
                bench.name,
                analysis.unwrap_err()
            );
        }
    }
}

/// A known-good victim program for mutation: classes, statics, calls,
/// loops, floats and arrays, so most opcode kinds have a live context.
fn victim() -> Program {
    let mut p = ProgramBuilder::new();
    let cls = p
        .class("Victim")
        .field("x", Ty::Int)
        .field("f", Ty::Float)
        .build();
    let s = p.static_slot("acc", Ty::Int);
    let helper = p.method(cls, "helper", 1, 2, |b| {
        b.load(0).const_i(3).add().ret_value();
    });
    let main = p.method(cls, "main", 0, 4, move |b| {
        b.const_i(0).put_static(s);
        b.new_obj(cls).store(2);
        b.for_range(0, 0, 10, move |b| {
            b.load(0).call(helper).store(1);
            b.get_static(s).load(1).add().put_static(s);
        });
        b.const_f(2.0).math(MathFn::Sqrt).f2i().store(3);
        b.get_static(s).load(3).add().ret_value();
    });
    p.finish(main).expect("victim verifies")
}

/// Targeted corruptions that reference out-of-range entities must always
/// be rejected by some tier — and must never panic.
#[test]
fn out_of_range_ids_are_always_rejected() {
    let program = victim();
    let main = program.entry();
    let code = program.method(main).code().to_vec();
    let bad_ops: &[Op] = &[
        Op::Jump(10_000),
        Op::BrTrue(9_999),
        Op::BrFalse(u32::MAX),
        Op::Load(200),
        Op::Store(250),
        Op::Call(MethodId(4_000)),
        Op::New(ClassId(900)),
        Op::GetStatic(5_000),
        Op::PutStatic(5_000),
    ];
    for &bad in bad_ops {
        for pc in 0..code.len() {
            let mut mutated = code.clone();
            mutated[pc] = bad;
            let corrupt = program.with_method_code(main, mutated);
            let verdict = std::panic::catch_unwind(|| verify_program(&corrupt).map(|_| ()));
            match verdict {
                Ok(Err(_)) => {}
                Ok(Ok(())) => panic!("{bad:?} at pc {pc} verified"),
                Err(_) => panic!("{bad:?} at pc {pc} panicked the verifier"),
            }
        }
    }
}

/// The merge-point regression from the old linear-era verifier: two
/// branches reaching one join with *different depths* must be rejected
/// by the structural tier the dataflow pass delegates to.
#[test]
fn depth_mismatch_at_join_is_structurally_rejected() {
    let program = victim();
    let main = program.entry();
    // then-branch pushes two values, else-branch pushes one; join pops one.
    let code = vec![
        Op::ConstI(1),
        Op::BrFalse(5),
        Op::ConstI(7),
        Op::ConstI(8),
        Op::Jump(6),
        Op::ConstI(9), // join predecessor with depth 1 vs 2
        Op::Pop,
        Op::Ret,
    ];
    let corrupt = program.with_method_code(main, code);
    let err = verify_program(&corrupt).unwrap_err();
    assert!(
        matches!(
            err,
            AnalysisError::Structural(_) | AnalysisError::ShapeMismatch { .. }
        ),
        "got {err:?}"
    );
}

/// An arbitrary single-opcode replacement drawn from the full ISA with
/// in-range operands. Such a mutation may legitimately still verify (a
/// `Nop` for a `Nop`, an `Add` for a `Sub`); the property is that the
/// verifier always *terminates with a verdict* — it never panics.
fn arb_op(
    code_len: usize,
    n_methods: u32,
    n_classes: u16,
    n_statics: u16,
) -> Box<dyn Strategy<Value = Op>> {
    let target = 0..(code_len as u32 + 2); // may dangle past the end
    prop_oneof![
        any::<i64>().prop_map(Op::ConstI),
        any::<f64>().prop_map(Op::ConstF),
        Just(Op::ConstNull),
        Just(Op::Dup),
        Just(Op::Pop),
        Just(Op::Swap),
        (0u8..8).prop_map(Op::Load),
        (0u8..8).prop_map(Op::Store),
        Just(Op::Add),
        Just(Op::FAdd),
        Just(Op::Lt),
        Just(Op::IsNull),
        target.clone().prop_map(Op::Jump),
        target.clone().prop_map(Op::BrTrue),
        target.prop_map(Op::BrFalse),
        (0..n_methods.max(1)).prop_map(|m| Op::Call(MethodId(m))),
        Just(Op::Ret),
        Just(Op::RetV),
        (0..n_classes.max(1)).prop_map(|c| Op::New(ClassId(c))),
        (0u16..4).prop_map(Op::GetField),
        (0u16..4).prop_map(Op::PutField),
        (0..n_statics.max(1)).prop_map(Op::GetStatic),
        (0..n_statics.max(1)).prop_map(Op::PutStatic),
        Just(Op::ALoad),
        Just(Op::AStore),
        Just(Op::ArrLen),
        Just(Op::Nop),
    ]
    .boxed()
}

/// `(pc, replacement op)` pairs over the victim's entry method.
fn mutation_strategy() -> impl Strategy<Value = (usize, Op)> {
    let program = victim();
    let code_len = program.method(program.entry()).code().len();
    (
        0..code_len,
        arb_op(
            code_len,
            program.method_count() as u32,
            program.class_count() as u16,
            program.statics().len() as u16,
        ),
    )
}

proptest! {
    #[test]
    fn random_single_op_mutations_never_panic_the_verifier((pc, op) in mutation_strategy()) {
        let program = victim();
        let main = program.entry();
        let mut mutated = program.method(main).code().to_vec();
        mutated[pc] = op;
        let corrupt = program.with_method_code(main, mutated);
        // A random replacement may legitimately still verify (Nop for
        // Nop, Add for Sub); the property is that the verifier always
        // terminates with a verdict and never panics.
        let verdict = std::panic::catch_unwind(|| verify_program(&corrupt).map(|_| ()));
        prop_assert!(verdict.is_ok(), "verifier panicked on {:?} at pc {}", op, pc);
    }
}
