//! Static analysis for vmprobe bytecode.
//!
//! Three pieces, all dependency-free (only sibling vmprobe crates):
//!
//! * [`cfg`] — per-method control-flow graphs (basic blocks, successor
//!   edges, reachability, cycle detection with a topological order).
//! * [`verify`] — an abstract interpreter over the CFG: a worklist
//!   dataflow pass with a small type lattice per stack slot and local.
//!   It subsumes the builder's structural verifier (which it runs first)
//!   and adds merge-point-correct checks: branch-target stack-shape
//!   agreement with *typed* slots, uninitialized-local detection, and
//!   unreachable-code reporting. This is the load-time verification tier
//!   the VM's class loader and the serve daemon's admission path run.
//! * [`bounds`] — static worst-case cost/energy bounds: folds the
//!   platform's calibrated power coefficients over the program structure
//!   and a step budget to produce an energy figure guaranteed to
//!   dominate any measured run the VM clamps at that budget. The
//!   `analyze-gate` CI job cross-checks domination on every golden
//!   workload.
//! * [`lint`] — the determinism lint engine behind the `vmprobe-lint`
//!   binary: a substring scanner over the deterministic crates for
//!   banned nondeterminism (wall clocks, OS RNG, unkeyed hash maps).
//!
//! See DESIGN.md §14 for the lattice, the worklist algorithm, and the
//! bound soundness argument.

#![warn(missing_docs)]

pub mod bounds;
pub mod cfg;
pub mod lint;
pub mod verify;

pub use bounds::{bound_program, p_max_watts, BoundParams, MethodBound, ProgramBound, VmTier};
pub use cfg::{Block, Cfg};
pub use verify::{
    verify_class, verify_method, verify_program, AbsTy, AnalysisError, MethodAnalysis,
    ProgramAnalysis,
};
