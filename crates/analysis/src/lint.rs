//! Determinism lint: scan source trees for banned nondeterminism.
//!
//! vmprobe's core invariant is bit-identical determinism: the same
//! configuration must produce the same traces, figures, and cache keys
//! on every run. The crates on the simulation path (`vm`, `power`,
//! `heap`, `platform`, `faults`, `bytecode`, `workloads`) must therefore
//! never consult wall clocks, OS entropy, or iterate unkeyed hash maps
//! (whose order varies with the hasher seed).
//!
//! This is a deliberately dumb, dependency-free scanner: line-based raw
//! substring matching, no parsing. False positives (a banned token in a
//! string literal or comment) are expected and handled with an allowlist
//! file, one `path:line-substring` entry per line. The point is a cheap,
//! offline CI tripwire — not a type-system proof.

use std::fmt;
use std::path::{Path, PathBuf};

/// Banned substrings and why each one threatens determinism.
pub const BANNED: &[(&str, &str)] = &[
    ("Instant::now", "wall-clock time varies between runs"),
    ("SystemTime", "wall-clock time varies between runs"),
    ("thread_rng", "OS-seeded RNG varies between runs"),
    ("rand::", "external RNG crates are unseeded by default"),
    (
        "HashMap",
        "unkeyed hash iteration order varies with the hasher seed",
    ),
    (
        "HashSet",
        "unkeyed hash iteration order varies with the hasher seed",
    ),
];

/// The crates whose sources the lint walks (the deterministic core).
pub const SCANNED_CRATES: &[&str] = &[
    "vm",
    "power",
    "heap",
    "platform",
    "faults",
    "bytecode",
    "workloads",
];

/// One banned-pattern hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// File the hit is in, relative to the workspace root.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The banned substring that matched.
    pub pattern: &'static str,
    /// Why the pattern is banned.
    pub reason: &'static str,
    /// The offending source line, trimmed.
    pub text: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: `{}` ({}): {}",
            self.path, self.line, self.pattern, self.reason, self.text
        )
    }
}

/// An allowlist entry: suppresses findings in `path` whose source line
/// contains `fragment`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Workspace-relative path the entry applies to.
    pub path: String,
    /// Substring of the allowed source line.
    pub fragment: String,
}

/// Parse an allowlist file body.
///
/// Format: one entry per line, `path:fragment`; `#` starts a comment;
/// blank lines are ignored. The fragment is matched as a raw substring
/// of the offending source line.
pub fn parse_allowlist(body: &str) -> Vec<AllowEntry> {
    body.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (path, fragment) = l.split_once(':')?;
            Some(AllowEntry {
                path: path.trim().to_owned(),
                fragment: fragment.trim().to_owned(),
            })
        })
        .collect()
}

/// Scan one file's contents for banned patterns.
pub fn scan_source(rel_path: &str, body: &str, allow: &[AllowEntry]) -> Vec<Finding> {
    let mut used = vec![false; allow.len()];
    scan_source_tracking(rel_path, body, allow, &mut used)
}

/// Like [`scan_source`], additionally marking `used[i] = true` for every
/// allowlist entry that suppressed at least one finding. Feeding the same
/// `used` slice across a whole scan identifies stale entries — those that
/// suppress nothing anywhere and should be pruned.
pub fn scan_source_tracking(
    rel_path: &str,
    body: &str,
    allow: &[AllowEntry],
    used: &mut [bool],
) -> Vec<Finding> {
    assert_eq!(allow.len(), used.len(), "one used slot per allow entry");
    let mut findings = Vec::new();
    for (idx, line) in body.lines().enumerate() {
        for &(pattern, reason) in BANNED {
            if !line.contains(pattern) {
                continue;
            }
            let mut allowed = false;
            for (e, slot) in allow.iter().zip(used.iter_mut()) {
                if e.path == rel_path && line.contains(e.fragment.as_str()) {
                    allowed = true;
                    *slot = true;
                }
            }
            if allowed {
                continue;
            }
            findings.push(Finding {
                path: rel_path.to_owned(),
                line: idx + 1,
                pattern,
                reason,
                text: line.trim().to_owned(),
            });
        }
    }
    findings
}

/// Recursively collect `.rs` files under `dir`, sorted for stable output.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Every `.rs` file the lint covers under `root`, in scan order.
pub fn scanned_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for krate in SCANNED_CRATES {
        let dir = root.join("crates").join(krate);
        if dir.is_dir() {
            rust_files(&dir, &mut files)?;
        }
    }
    Ok(files)
}

/// Scan the deterministic crates under `root` (the workspace root).
///
/// Returns all findings not suppressed by `allow`, in path/line order.
pub fn scan_workspace(root: &Path, allow: &[AllowEntry]) -> std::io::Result<Vec<Finding>> {
    scan_workspace_stale(root, allow).map(|(findings, _)| findings)
}

/// [`scan_workspace`], additionally returning the *stale* allowlist
/// entries: those that suppressed nothing anywhere in the scan. A stale
/// entry is a latent hole — it silently re-enables itself the day a real
/// finding appears on a line matching its fragment — so CI rejects them
/// via `vmprobe-lint --forbid-stale`.
pub fn scan_workspace_stale(
    root: &Path,
    allow: &[AllowEntry],
) -> std::io::Result<(Vec<Finding>, Vec<AllowEntry>)> {
    let mut findings = Vec::new();
    let mut used = vec![false; allow.len()];
    for file in scanned_files(root)? {
        let body = std::fs::read_to_string(&file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        findings.extend(scan_source_tracking(&rel, &body, allow, &mut used));
    }
    let stale = allow
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(e, _)| e.clone())
        .collect();
    Ok((findings, stale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_source_has_no_findings() {
        let src = "use std::collections::BTreeMap;\nfn main() { let m = BTreeMap::new(); }\n";
        assert!(scan_source("crates/vm/src/x.rs", src, &[]).is_empty());
    }

    #[test]
    fn banned_patterns_are_reported_with_line_numbers() {
        let src = "fn t() {\n    let t0 = std::time::Instant::now();\n}\n";
        let f = scan_source("crates/vm/src/x.rs", src, &[]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
        assert_eq!(f[0].pattern, "Instant::now");
    }

    #[test]
    fn allowlist_suppresses_by_path_and_fragment() {
        let src = "let name = \"java/util/HashMap\";\n";
        let allow = parse_allowlist("# comment\n\ncrates/vm/src/x.rs: java/util/HashMap\n");
        assert!(scan_source("crates/vm/src/x.rs", src, &allow).is_empty());
        // Same line in another file is still reported.
        assert_eq!(scan_source("crates/vm/src/y.rs", src, &allow).len(), 1);
    }

    #[test]
    fn stale_allowlist_entries_are_detected() {
        let allow = parse_allowlist(
            "crates/vm/src/x.rs: java/util/HashMap\ncrates/vm/src/gone.rs: Instant::now\n",
        );
        let src = "let name = \"java/util/HashMap\";\n";
        let mut used = vec![false; allow.len()];
        let f = scan_source_tracking("crates/vm/src/x.rs", src, &allow, &mut used);
        assert!(f.is_empty());
        assert_eq!(used, [true, false], "only the first entry fired");
    }

    fn workspace_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .to_path_buf()
    }

    #[test]
    fn register_ir_sources_are_inside_the_lint_perimeter() {
        // The rir module ships hot-path execution code; a wall clock or
        // unseeded hash there would break bit-identical replay exactly
        // like one in the interpreter. Pin that the scanner sees it.
        let files = scanned_files(&workspace_root()).expect("workspace scan");
        for expect in ["rir/mod.rs", "rir/lower.rs", "rir/exec.rs"] {
            assert!(
                files
                    .iter()
                    .any(|p| p.to_string_lossy().replace('\\', "/").ends_with(expect)),
                "lint perimeter lost crates/vm/src/{expect}"
            );
        }
    }

    #[test]
    fn live_workspace_is_clean_with_no_stale_allowlist_entries() {
        let root = workspace_root();
        let body = std::fs::read_to_string(root.join("determinism-allowlist.txt"))
            .expect("allowlist exists");
        let allow = parse_allowlist(&body);
        let (findings, stale) = scan_workspace_stale(&root, &allow).expect("scan");
        assert!(findings.is_empty(), "determinism findings: {findings:?}");
        assert!(stale.is_empty(), "stale allowlist entries: {stale:?}");
    }

    #[test]
    fn allowlist_is_fragment_specific() {
        let src = "use std::collections::HashMap;\nlet s = \"HashMap doc\";\n";
        let allow = parse_allowlist("crates/vm/src/x.rs: HashMap doc\n");
        let f = scan_source("crates/vm/src/x.rs", src, &allow);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
    }
}
