//! Determinism lint: scan source trees for banned nondeterminism.
//!
//! vmprobe's core invariant is bit-identical determinism: the same
//! configuration must produce the same traces, figures, and cache keys
//! on every run. The crates on the simulation path (`vm`, `power`,
//! `heap`, `platform`, `faults`, `bytecode`, `workloads`) must therefore
//! never consult wall clocks, OS entropy, or iterate unkeyed hash maps
//! (whose order varies with the hasher seed).
//!
//! This is a deliberately dumb, dependency-free scanner: line-based raw
//! substring matching, no parsing. False positives (a banned token in a
//! string literal or comment) are expected and handled with an allowlist
//! file, one `path:line-substring` entry per line. The point is a cheap,
//! offline CI tripwire — not a type-system proof.

use std::fmt;
use std::path::{Path, PathBuf};

/// Banned substrings and why each one threatens determinism.
pub const BANNED: &[(&str, &str)] = &[
    ("Instant::now", "wall-clock time varies between runs"),
    ("SystemTime", "wall-clock time varies between runs"),
    ("thread_rng", "OS-seeded RNG varies between runs"),
    ("rand::", "external RNG crates are unseeded by default"),
    (
        "HashMap",
        "unkeyed hash iteration order varies with the hasher seed",
    ),
    (
        "HashSet",
        "unkeyed hash iteration order varies with the hasher seed",
    ),
];

/// The crates whose sources the lint walks (the deterministic core).
pub const SCANNED_CRATES: &[&str] = &[
    "vm",
    "power",
    "heap",
    "platform",
    "faults",
    "bytecode",
    "workloads",
];

/// One banned-pattern hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// File the hit is in, relative to the workspace root.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The banned substring that matched.
    pub pattern: &'static str,
    /// Why the pattern is banned.
    pub reason: &'static str,
    /// The offending source line, trimmed.
    pub text: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: `{}` ({}): {}",
            self.path, self.line, self.pattern, self.reason, self.text
        )
    }
}

/// An allowlist entry: suppresses findings in `path` whose source line
/// contains `fragment`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Workspace-relative path the entry applies to.
    pub path: String,
    /// Substring of the allowed source line.
    pub fragment: String,
}

/// Parse an allowlist file body.
///
/// Format: one entry per line, `path:fragment`; `#` starts a comment;
/// blank lines are ignored. The fragment is matched as a raw substring
/// of the offending source line.
pub fn parse_allowlist(body: &str) -> Vec<AllowEntry> {
    body.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (path, fragment) = l.split_once(':')?;
            Some(AllowEntry {
                path: path.trim().to_owned(),
                fragment: fragment.trim().to_owned(),
            })
        })
        .collect()
}

/// Scan one file's contents for banned patterns.
pub fn scan_source(rel_path: &str, body: &str, allow: &[AllowEntry]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, line) in body.lines().enumerate() {
        for &(pattern, reason) in BANNED {
            if !line.contains(pattern) {
                continue;
            }
            let allowed = allow
                .iter()
                .any(|e| e.path == rel_path && line.contains(e.fragment.as_str()));
            if allowed {
                continue;
            }
            findings.push(Finding {
                path: rel_path.to_owned(),
                line: idx + 1,
                pattern,
                reason,
                text: line.trim().to_owned(),
            });
        }
    }
    findings
}

/// Recursively collect `.rs` files under `dir`, sorted for stable output.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scan the deterministic crates under `root` (the workspace root).
///
/// Returns all findings not suppressed by `allow`, in path/line order.
pub fn scan_workspace(root: &Path, allow: &[AllowEntry]) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for krate in SCANNED_CRATES {
        let dir = root.join("crates").join(krate);
        if !dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rust_files(&dir, &mut files)?;
        for file in files {
            let body = std::fs::read_to_string(&file)?;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            findings.extend(scan_source(&rel, &body, allow));
        }
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_source_has_no_findings() {
        let src = "use std::collections::BTreeMap;\nfn main() { let m = BTreeMap::new(); }\n";
        assert!(scan_source("crates/vm/src/x.rs", src, &[]).is_empty());
    }

    #[test]
    fn banned_patterns_are_reported_with_line_numbers() {
        let src = "fn t() {\n    let t0 = std::time::Instant::now();\n}\n";
        let f = scan_source("crates/vm/src/x.rs", src, &[]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
        assert_eq!(f[0].pattern, "Instant::now");
    }

    #[test]
    fn allowlist_suppresses_by_path_and_fragment() {
        let src = "let name = \"java/util/HashMap\";\n";
        let allow = parse_allowlist("# comment\n\ncrates/vm/src/x.rs: java/util/HashMap\n");
        assert!(scan_source("crates/vm/src/x.rs", src, &allow).is_empty());
        // Same line in another file is still reported.
        assert_eq!(scan_source("crates/vm/src/y.rs", src, &allow).len(), 1);
    }

    #[test]
    fn allowlist_is_fragment_specific() {
        let src = "use std::collections::HashMap;\nlet s = \"HashMap doc\";\n";
        let allow = parse_allowlist("crates/vm/src/x.rs: HashMap doc\n");
        let f = scan_source("crates/vm/src/x.rs", src, &allow);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
    }
}
