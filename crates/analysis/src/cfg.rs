//! Per-method control-flow graphs.
//!
//! A method body is partitioned into basic blocks at the classic leader
//! points: the entry instruction, every branch target, and every
//! instruction following a branch or terminator. The resulting graph is
//! what both the dataflow verifier (worklist over blocks) and the bound
//! computation (longest weighted path over an acyclic graph) walk.
//!
//! Construction assumes the body already passed the structural verifier
//! ([`vmprobe_bytecode::verify_method`]): every branch target is in range
//! and the body does not fall off the end.

use vmprobe_bytecode::{Method, Op};

/// One basic block: a maximal straight-line run of instructions.
#[derive(Debug, Clone)]
pub struct Block {
    /// First instruction index (inclusive).
    pub start: usize,
    /// One past the last instruction index (exclusive).
    pub end: usize,
    /// Successor block indices, in (fallthrough, branch-target) order.
    pub succs: Vec<usize>,
}

impl Block {
    /// Instruction indices of this block.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }
}

/// The control-flow graph of one method body.
#[derive(Debug, Clone)]
pub struct Cfg {
    blocks: Vec<Block>,
    /// Block index owning each instruction.
    block_of: Vec<usize>,
}

impl Cfg {
    /// Build the CFG for a structurally valid body.
    pub fn new(method: &Method) -> Self {
        let code = method.code();
        let n = code.len();
        let mut leader = vec![false; n];
        if n > 0 {
            leader[0] = true;
        }
        for (pc, op) in code.iter().enumerate() {
            if let Some(t) = op.branch_target() {
                if (t as usize) < n {
                    leader[t as usize] = true;
                }
                if pc + 1 < n {
                    leader[pc + 1] = true;
                }
            } else if op.is_terminator() && pc + 1 < n {
                leader[pc + 1] = true;
            }
        }

        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; n];
        let mut start = 0usize;
        for pc in 0..n {
            if pc > start && leader[pc] {
                blocks.push(Block {
                    start,
                    end: pc,
                    succs: Vec::new(),
                });
                start = pc;
            }
            block_of[pc] = blocks.len();
        }
        if n > 0 {
            blocks.push(Block {
                start,
                end: n,
                succs: Vec::new(),
            });
        }

        for block in &mut blocks {
            let last = block.end - 1;
            let mut succs = Vec::new();
            match code[last] {
                Op::Jump(t) => succs.push(block_of[t as usize]),
                Op::BrTrue(t) | Op::BrFalse(t) => {
                    if last + 1 < n {
                        succs.push(block_of[last + 1]);
                    }
                    succs.push(block_of[t as usize]);
                }
                Op::Ret | Op::RetV => {}
                _ => {
                    if last + 1 < n {
                        succs.push(block_of[last + 1]);
                    }
                }
            }
            block.succs = succs;
        }

        Self { blocks, block_of }
    }

    /// The blocks, in instruction order (block 0 is the entry).
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The block containing instruction `pc`.
    pub fn block_of(&self, pc: usize) -> usize {
        self.block_of[pc]
    }

    /// Blocks reachable from the entry (bitset over block indices).
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        if self.blocks.is_empty() {
            return seen;
        }
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(b) = stack.pop() {
            for &s in &self.blocks[b].succs {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }

    /// Whether any cycle is reachable from the entry, plus a reverse
    /// post-order over the reachable blocks (a valid topological order
    /// when the graph is acyclic).
    pub fn cycle_and_order(&self) -> (bool, Vec<usize>) {
        // Iterative three-color DFS: a gray→gray edge is a back edge.
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let mut color = vec![WHITE; self.blocks.len()];
        let mut post = Vec::new();
        let mut cyclic = false;
        if self.blocks.is_empty() {
            return (false, post);
        }
        // Stack entries are (block, next-successor index to visit).
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        color[0] = GRAY;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            if *next < self.blocks[b].succs.len() {
                let s = self.blocks[b].succs[*next];
                *next += 1;
                match color[s] {
                    WHITE => {
                        color[s] = GRAY;
                        stack.push((s, 0));
                    }
                    GRAY => cyclic = true,
                    _ => {}
                }
            } else {
                color[b] = BLACK;
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        (cyclic, post)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmprobe_bytecode::ProgramBuilder;

    #[test]
    fn straight_line_is_one_block() {
        let mut p = ProgramBuilder::new();
        let main = p.function("main", 0, 1, |b| {
            b.const_i(1).store(0).ret();
        });
        let prog = p.finish(main).unwrap();
        let cfg = Cfg::new(prog.method(main));
        assert_eq!(cfg.blocks().len(), 1);
        assert!(cfg.blocks()[0].succs.is_empty());
        let (cyclic, order) = cfg.cycle_and_order();
        assert!(!cyclic);
        assert_eq!(order, vec![0]);
    }

    #[test]
    fn diamond_has_four_blocks_and_no_cycle() {
        let mut p = ProgramBuilder::new();
        let main = p.function("main", 0, 1, |b| {
            b.const_i(1);
            b.if_else(
                |b| {
                    b.const_i(2).store(0);
                },
                |b| {
                    b.const_i(3).store(0);
                },
            );
            b.ret();
        });
        let prog = p.finish(main).unwrap();
        let cfg = Cfg::new(prog.method(main));
        let (cyclic, order) = cfg.cycle_and_order();
        assert!(!cyclic);
        assert!(cfg.blocks().len() >= 4, "blocks: {}", cfg.blocks().len());
        assert_eq!(order.len(), cfg.reachable().iter().filter(|&&r| r).count());
    }

    #[test]
    fn loops_are_detected_as_cycles() {
        let mut p = ProgramBuilder::new();
        let main = p.function("main", 0, 2, |b| {
            b.const_i(0).store(0);
            b.for_range(1, 0, 10, |b| {
                b.load(0).load(1).add().store(0);
            });
            b.ret();
        });
        let prog = p.finish(main).unwrap();
        let cfg = Cfg::new(prog.method(main));
        let (cyclic, _) = cfg.cycle_and_order();
        assert!(cyclic);
    }
}
