//! Determinism lint runner.
//!
//! Scans the deterministic crates (`vm`, `power`, `heap`, `platform`,
//! `faults`, `bytecode`, `workloads`) for banned nondeterminism sources
//! and reports every hit not suppressed by the allowlist.
//!
//! ```text
//! vmprobe-lint [--root DIR] [--allowlist FILE] [--quiet] [--forbid-stale]
//! ```
//!
//! * `--root DIR` — workspace root (default: current directory).
//! * `--allowlist FILE` — allowlist path (default: `ROOT/determinism-allowlist.txt`;
//!   a missing default file is treated as empty).
//! * `--quiet` — suppress the per-finding lines; only the summary.
//! * `--forbid-stale` — also fail if any allowlist entry suppresses
//!   nothing (stale entries are otherwise only warned about).
//!
//! Exit codes: `0` clean, `1` findings (or stale entries under
//! `--forbid-stale`), `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use vmprobe_analysis::lint::{parse_allowlist, scan_workspace_stale, SCANNED_CRATES};

fn usage() -> ExitCode {
    eprintln!("usage: vmprobe-lint [--root DIR] [--allowlist FILE] [--quiet] [--forbid-stale]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut allowlist: Option<PathBuf> = None;
    let mut quiet = false;
    let mut forbid_stale = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage(),
            },
            "--allowlist" => match args.next() {
                Some(v) => allowlist = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--quiet" => quiet = true,
            "--forbid-stale" => forbid_stale = true,
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    let explicit = allowlist.is_some();
    let allow_path = allowlist.unwrap_or_else(|| root.join("determinism-allowlist.txt"));
    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(body) => parse_allowlist(&body),
        Err(e) if !explicit && e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => {
            eprintln!("vmprobe-lint: cannot read {}: {e}", allow_path.display());
            return ExitCode::from(2);
        }
    };

    let (findings, stale) = match scan_workspace_stale(&root, &allow) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("vmprobe-lint: scan failed under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if !quiet {
        for f in &findings {
            println!("{f}");
        }
    }
    for e in &stale {
        println!(
            "vmprobe-lint: stale allowlist entry `{}:{}` suppresses nothing — prune it",
            e.path, e.fragment
        );
    }
    println!(
        "vmprobe-lint: {} finding(s) across crates {{{}}} ({} allowlist entr{}, {} stale)",
        findings.len(),
        SCANNED_CRATES.join(", "),
        allow.len(),
        if allow.len() == 1 { "y" } else { "ies" },
        stale.len(),
    );

    if findings.is_empty() && (stale.is_empty() || !forbid_stale) {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
