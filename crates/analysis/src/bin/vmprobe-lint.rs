//! Determinism lint runner.
//!
//! Scans the deterministic crates (`vm`, `power`, `heap`, `platform`,
//! `faults`, `bytecode`, `workloads`) for banned nondeterminism sources
//! and reports every hit not suppressed by the allowlist.
//!
//! ```text
//! vmprobe-lint [--root DIR] [--allowlist FILE] [--quiet]
//! ```
//!
//! * `--root DIR` — workspace root (default: current directory).
//! * `--allowlist FILE` — allowlist path (default: `ROOT/determinism-allowlist.txt`;
//!   a missing default file is treated as empty).
//! * `--quiet` — suppress the per-finding lines; only the summary.
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use vmprobe_analysis::lint::{parse_allowlist, scan_workspace, SCANNED_CRATES};

fn usage() -> ExitCode {
    eprintln!("usage: vmprobe-lint [--root DIR] [--allowlist FILE] [--quiet]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut allowlist: Option<PathBuf> = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage(),
            },
            "--allowlist" => match args.next() {
                Some(v) => allowlist = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    let explicit = allowlist.is_some();
    let allow_path = allowlist.unwrap_or_else(|| root.join("determinism-allowlist.txt"));
    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(body) => parse_allowlist(&body),
        Err(e) if !explicit && e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => {
            eprintln!("vmprobe-lint: cannot read {}: {e}", allow_path.display());
            return ExitCode::from(2);
        }
    };

    let findings = match scan_workspace(&root, &allow) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("vmprobe-lint: scan failed under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if !quiet {
        for f in &findings {
            println!("{f}");
        }
    }
    println!(
        "vmprobe-lint: {} finding(s) across crates {{{}}} ({} allowlist entr{})",
        findings.len(),
        SCANNED_CRATES.join(", "),
        allow.len(),
        if allow.len() == 1 { "y" } else { "ies" },
    );

    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
