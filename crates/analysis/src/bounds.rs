//! Static worst-case cost and energy bounds.
//!
//! The runtime meter charges every operation to a cycle-accurate cost
//! model and integrates power over those cycles. This module computes the
//! *static* counterpart: an upper bound on the cycles — and therefore the
//! energy — a program can consume, derived purely from its structure plus
//! a step budget `S` for loops.
//!
//! # Soundness argument (summary; full version in DESIGN.md §14)
//!
//! Measured energy is `∫ P dt ≤ P_max · T`, where `P_max` bounds the
//! instantaneous CPU+DRAM power of the platform's calibrated model at its
//! saturation clips (IPC 1.15, FP rate 0.5/cycle, memory rate
//! `freq / mem_base_cost`), and `T = C / freq` for total cycles `C`. So a
//! sound cycle bound yields a sound energy bound. Cycles split into
//!
//! * **class loading** — every class loaded once, cost proportional to
//!   its class-file bytes (the loader's parse/verify/install phases);
//! * **compilation** — every method compiled once per tier it can reach
//!   (baseline *and* opt for Jikes, JIT for Kaffe), cost proportional to
//!   its bytecode bytes at the most expensive per-byte rate;
//! * **interpretation** — at most `S` bytecode steps (the VM's step
//!   clamp), each costing at most the program's worst single-step cost,
//!   computed from the opcode inventory actually present;
//! * **allocation & GC** — at most `S` allocation sites execute; each
//!   can zero at most a heap-sized object and trigger at most two
//!   collections (the VM's retry loop aborts with `OutOfMemory` after
//!   two), each collection touching at most the whole heap;
//! * **scheduler quanta** — one quantum of bookkeeping per
//!   `quantum_cycles` of the above, folded in as a multiplier.
//!
//! Every per-unit constant is an upper bound on the corresponding meter
//! charge, so each term dominates its dynamic counterpart and the total
//! dominates the measured energy of *any* run clamped at `S` steps. The
//! bound is deliberately loose (documented term by term in DESIGN.md);
//! the `analyze-gate` CI job cross-checks domination against measured
//! energy on every golden workload, which also catches drift between
//! these mirrored constants and the VM's real cost model.
//!
//! Per-method bounds report the longest weighted acyclic path through the
//! method's own CFG (callee cost excluded); methods with loops carry no
//! finite per-invocation bound and are covered by the step-clamped
//! program bound instead.

use vmprobe_bytecode::{MethodId, Op, Program};
use vmprobe_platform::{CpuSpec, PlatformKind};
use vmprobe_power::PowerCoeffs;

use crate::cfg::Cfg;

/// Mirror of `PowerModel::IPC_SATURATION` (private to the power crate).
/// Drift is caught by the `analyze-gate` CI job: a lower clip there would
/// let measured power exceed our `P_max`.
const IPC_SATURATION: f64 = 1.15;
/// Mirror of the FP-rate clip in `PowerModel::cpu_power`.
const FP_SATURATION: f64 = 0.5;

// Mirrors of the VM's compilation cost model (`crates/vm/src/compiler.rs`,
// private constants). Integer ops per bytecode byte, per tier.
const BASE_OPS_PER_BYTE: f64 = 80.0;
const JIT_OPS_PER_BYTE: f64 = 140.0;
const OPT_OPS_PER_BYTE: f64 = 2_200.0;
/// Mirror of the interpreter's worst dispatch cost (`Tier::Uncompiled`).
const DISPATCH_OPS: f64 = 8.0;
/// Mirror of the class loader's parse + verify work per byte
/// (`crates/vm/src/classloader.rs`: `PARSE_OPS_PER_BYTE` +
/// `VERIFY_OPS_PER_BYTE`).
const LOADER_OPS_PER_BYTE: f64 = 5.0;

/// Which personality's compilation tiers to account for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmTier {
    /// Jikes RVM: baseline on first call, opt recompilation possible.
    Jikes,
    /// Kaffe: JIT on first call, no recompilation.
    Kaffe,
}

/// Inputs the bound is computed against.
#[derive(Debug, Clone, Copy)]
pub struct BoundParams {
    /// Hardware platform (timing and power calibration).
    pub platform: PlatformKind,
    /// Which VM's compilation tiers to bound.
    pub vm: VmTier,
    /// Simulated heap bytes (bounds per-collection and per-alloc work).
    pub heap_bytes: u64,
    /// Scheduler quantum in cycles.
    pub quantum_cycles: u64,
    /// Step budget `S`: the bound is sound for any run the VM clamps at
    /// `S` bytecode steps or fewer.
    pub step_budget: u64,
}

/// Worst-case bound for one method.
#[derive(Debug, Clone)]
pub struct MethodBound {
    /// The method.
    pub method: MethodId,
    /// Method name.
    pub name: String,
    /// Instruction count.
    pub ops: usize,
    /// Basic-block count.
    pub blocks: usize,
    /// Whether the CFG has a cycle (no finite per-invocation bound).
    pub cyclic: bool,
    /// Worst-case cycles for one invocation through the method's own
    /// code (callees excluded), when acyclic.
    pub acyclic_cycles: Option<f64>,
    /// `acyclic_cycles` converted to joules at `P_max`.
    pub acyclic_energy_j: Option<f64>,
}

/// Program-wide static bound.
#[derive(Debug, Clone)]
pub struct ProgramBound {
    /// Peak modeled CPU+DRAM power in watts.
    pub p_max_w: f64,
    /// Clock the cycle bound is converted at.
    pub freq_hz: f64,
    /// Cycle bound on class loading (all classes once).
    pub classload_cycles: f64,
    /// Cycle bound on compilation (all methods, all reachable tiers).
    pub compile_cycles: f64,
    /// Cycle bound on interpreting `S` steps.
    pub interpret_cycles: f64,
    /// Cycle bound on allocation zeroing and garbage collection.
    pub gc_cycles: f64,
    /// Multiplier folding in per-quantum scheduler/controller work.
    pub quantum_multiplier: f64,
    /// Cycle bound excluding the GC term (the tight-ish part).
    pub core_cycles: f64,
    /// Total cycle bound.
    pub total_cycles: f64,
    /// Energy bound excluding the GC term, in joules.
    pub core_energy_j: f64,
    /// Total energy bound in joules.
    pub total_energy_j: f64,
    /// The step budget the bound was instantiated at.
    pub step_budget: u64,
    /// Per-method invocation bounds.
    pub methods: Vec<MethodBound>,
}

/// Upper bound on the modeled instantaneous CPU+DRAM power draw.
pub fn p_max_watts(platform: PlatformKind) -> f64 {
    let spec = CpuSpec::of(platform);
    let c = PowerCoeffs::of(platform);
    // Accesses per second can never exceed one per `mem_base_cost`
    // cycles; `c_mem` is calibrated per access per microsecond.
    let max_access_per_s = spec.freq_hz / spec.mem_base_cost;
    let max_access_per_us = max_access_per_s / 1e6;
    let cpu = c.cpu_idle_w
        + c.c_ipc * IPC_SATURATION
        + c.c_fp * FP_SATURATION
        + c.c_mem * max_access_per_us;
    let dram = c.dram_idle_w + c.dram_energy_per_access_j * max_access_per_s;
    cpu + dram
}

/// Per-primitive worst-case cycle costs for one platform.
#[derive(Debug, Clone, Copy)]
struct CostModel {
    int: f64,
    fp: f64,
    math: f64,
    branch: f64,
    /// Any single load/store/ifetch, assuming every cache misses all the
    /// way to DRAM.
    mem: f64,
}

impl CostModel {
    fn of(platform: PlatformKind) -> Self {
        let s = CpuSpec::of(platform);
        Self {
            int: s.int_cost,
            fp: s.fp_cost,
            math: s.math_cost,
            branch: s.branch_cost,
            mem: s.mem_base_cost + s.l1_miss_penalty + s.mem_penalty + s.ifetch_miss_penalty,
        }
    }

    /// Worst-case cycles to execute `op` once, *excluding* dispatch and
    /// instruction fetch (added per step) and excluding allocation/GC
    /// work (bounded separately). `max_args` caps the argument-store
    /// burst a `Call` can trigger in the callee's prologue.
    fn op_cycles(&self, op: Op, max_args: f64) -> f64 {
        match op {
            Op::ConstI(_) | Op::ConstF(_) | Op::ConstNull | Op::Dup | Op::Pop | Op::Nop => self.int,
            Op::Swap => 2.0 * self.int,
            // Locals may live in memory (non-opt tiers).
            Op::Load(_) | Op::Store(_) => self.mem,
            Op::Add
            | Op::Sub
            | Op::Mul
            | Op::Div
            | Op::Rem
            | Op::Shl
            | Op::Shr
            | Op::And
            | Op::Or
            | Op::Xor
            | Op::Neg => self.int,
            Op::FAdd | Op::FSub | Op::FMul | Op::FDiv | Op::FNeg | Op::I2F | Op::F2I => self.fp,
            Op::Math(_) => self.math,
            Op::Lt | Op::Le | Op::Gt | Op::Ge | Op::Eq | Op::Ne | Op::IsNull => self.int,
            Op::Jump(_) | Op::BrTrue(_) | Op::BrFalse(_) => self.branch,
            // Call: 4 ops at the site + callee prologue arg stores.
            Op::Call(_) => 4.0 * self.int + max_args * self.mem,
            Op::Ret | Op::RetV => 3.0 * self.int,
            // New/NewArr admin (allocation zeroing is in the GC term);
            // New also pays the loader fast-path check.
            Op::New(_) => 4.0 * self.int,
            Op::NewArr(_) => 2.0 * self.int,
            Op::GetField(_) | Op::GetStatic(_) | Op::ArrLen => self.mem,
            // Stores may also run a write barrier (remembered-set probe
            // and insert: bounded by a few mem ops and ALU work).
            Op::PutField(_) | Op::PutStatic(_) => self.mem + 4.0 * self.mem + 8.0 * self.int,
            Op::ALoad => 2.0 * self.int + self.mem,
            Op::AStore => 2.0 * self.int + self.mem + 4.0 * self.mem + 8.0 * self.int,
        }
    }

    /// Worst-case cycles for one interpreter step of `op`: dispatch at
    /// the slowest tier, an instruction fetch (charged every step here,
    /// though the VM fetches every eighth), and the op itself.
    fn step_cycles(&self, op: Op, max_args: f64) -> f64 {
        DISPATCH_OPS * self.int + self.mem + self.op_cycles(op, max_args)
    }
}

/// Compute the static bound for `program` under `params`.
///
/// The caller is expected to have verified the program first (the CFG
/// walk assumes structural validity); [`crate::verify_program`] does
/// both tiers.
pub fn bound_program(program: &Program, params: &BoundParams) -> ProgramBound {
    let cost = CostModel::of(params.platform);
    let spec = CpuSpec::of(params.platform);
    let p_max = p_max_watts(params.platform);
    let s = params.step_budget as f64;
    let heap = params.heap_bytes as f64;

    let max_args = f64::from(
        program
            .methods()
            .iter()
            .map(|m| u32::from(m.n_args()))
            .max()
            .unwrap_or(0),
    );

    // Worst single-step cost over the opcode inventory actually present.
    let mut worst_step = 0.0f64;
    for m in program.methods() {
        for &op in m.code() {
            worst_step = worst_step.max(cost.step_cycles(op, max_args));
        }
    }

    // Class loading: stream the file, parse + verify (5 ops/byte with an
    // ifetch per 48-op chunk), write metadata. Charging one worst-case
    // memory access per byte dominates the line-granular streaming.
    let total_file_bytes = program.total_classfile_bytes() as f64;
    let classload_cycles = total_file_bytes
        * (cost.mem + LOADER_OPS_PER_BYTE * (cost.int + cost.mem / 48.0))
        + program.class_count() as f64 * (384.0 * cost.mem + 64.0 * cost.int);

    // Compilation: every method, once per tier its personality can
    // reach. Per compiled op: the ALU work plus amortized load/store
    // traffic (one load per 96-op chunk, one store per 4 ops) — charging
    // a full memory access per op dominates. Code installation streams
    // `bytes × expansion ≤ 8` into the code region.
    let ops_per_byte = match params.vm {
        VmTier::Jikes => BASE_OPS_PER_BYTE + OPT_OPS_PER_BYTE,
        VmTier::Kaffe => JIT_OPS_PER_BYTE,
    };
    let total_code_bytes: f64 = program
        .methods()
        .iter()
        .map(|m| f64::from(m.bytecode_bytes()))
        .sum();
    let compile_cycles =
        total_code_bytes * (ops_per_byte * (cost.int + cost.mem / 4.0) + 8.0 * cost.mem);

    // Interpretation: S steps, each at the program's worst step cost.
    let interpret_cycles = s * worst_step;

    // Allocation and GC: each of the ≤ S allocating steps can zero at
    // most a heap-sized object and force at most two collections, each
    // touching at most every heap byte (mark/copy/sweep). One worst-case
    // memory access per byte dominates any collector's per-byte work.
    let gc_cycles = s * 3.0 * heap * cost.mem;

    // Scheduler quanta: one per `quantum_cycles`, each costing the timer
    // tick (350 int ops + 2 accesses) plus a controller scan bounded by
    // the method count. Folded in as a multiplier on everything above.
    let n_methods = program.method_count() as f64;
    let quantum_overhead = 350.0 * cost.int
        + 2.0 * cost.mem
        + (3.0 * n_methods + 64.0) * cost.int
        + n_methods * cost.mem;
    let q = params.quantum_cycles as f64;
    let quantum_multiplier = if quantum_overhead < q {
        q / (q - quantum_overhead)
    } else {
        // Degenerate configuration: overhead swamps the quantum. Keep
        // the bound finite by charging one full overhead per work cycle.
        1.0 + quantum_overhead
    };

    let core = (classload_cycles + compile_cycles + interpret_cycles + quantum_overhead)
        * quantum_multiplier;
    let total =
        (classload_cycles + compile_cycles + interpret_cycles + gc_cycles + quantum_overhead)
            * quantum_multiplier;

    let to_joules = |cycles: f64| p_max * cycles / spec.freq_hz;

    let methods = program
        .methods()
        .iter()
        .map(|m| {
            let cfg = Cfg::new(m);
            let (cyclic, order) = cfg.cycle_and_order();
            let acyclic_cycles = if cyclic {
                None
            } else {
                Some(longest_path(&cfg, &order, |pc| {
                    cost.step_cycles(m.code()[pc], max_args)
                }))
            };
            MethodBound {
                method: m.id(),
                name: m.name().to_owned(),
                ops: m.code().len(),
                blocks: cfg.blocks().len(),
                cyclic,
                acyclic_cycles,
                acyclic_energy_j: acyclic_cycles.map(to_joules),
            }
        })
        .collect();

    ProgramBound {
        p_max_w: p_max,
        freq_hz: spec.freq_hz,
        classload_cycles,
        compile_cycles,
        interpret_cycles,
        gc_cycles,
        quantum_multiplier,
        core_cycles: core,
        total_cycles: total,
        core_energy_j: to_joules(core),
        total_energy_j: to_joules(total),
        step_budget: params.step_budget,
        methods,
    }
}

/// Longest weighted path from the entry block over an acyclic CFG given
/// in topological order; weights are per-instruction costs.
fn longest_path(cfg: &Cfg, topo: &[usize], op_cost: impl Fn(usize) -> f64) -> f64 {
    let mut best = vec![f64::NEG_INFINITY; cfg.blocks().len()];
    if topo.is_empty() {
        return 0.0;
    }
    best[topo[0]] = 0.0;
    let mut overall = 0.0f64;
    for &b in topo {
        if best[b] == f64::NEG_INFINITY {
            continue; // unreachable
        }
        let block = &cfg.blocks()[b];
        let weight: f64 = block.range().map(&op_cost).sum();
        let out = best[b] + weight;
        overall = overall.max(out);
        for &s in &block.succs {
            if out > best[s] {
                best[s] = out;
            }
        }
    }
    overall
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmprobe_bytecode::ProgramBuilder;

    fn params() -> BoundParams {
        BoundParams {
            platform: PlatformKind::PentiumM,
            vm: VmTier::Jikes,
            heap_bytes: 1 << 20,
            quantum_cycles: 1_600_000,
            step_budget: 10_000,
        }
    }

    #[test]
    fn p_max_exceeds_idle_on_both_platforms() {
        for p in [PlatformKind::PentiumM, PlatformKind::Pxa255] {
            let c = PowerCoeffs::of(p);
            let pm = p_max_watts(p);
            assert!(pm.is_finite());
            assert!(pm > c.cpu_idle_w + c.dram_idle_w);
        }
    }

    #[test]
    fn bound_is_finite_and_positive() {
        let mut p = ProgramBuilder::new();
        let main = p.function("main", 0, 2, |b| {
            b.const_i(0).store(0);
            b.for_range(1, 0, 100, |b| {
                b.load(0).load(1).add().store(0);
            });
            b.load(0).ret_value();
        });
        let prog = p.finish(main).unwrap();
        let bound = bound_program(&prog, &params());
        assert!(bound.total_cycles.is_finite());
        assert!(bound.total_energy_j.is_finite());
        assert!(bound.total_energy_j > 0.0);
        assert!(bound.total_cycles >= bound.core_cycles);
        assert!(bound.quantum_multiplier >= 1.0);
        // The lone method loops, so it has no finite invocation bound.
        assert!(bound.methods[0].cyclic);
        assert!(bound.methods[0].acyclic_cycles.is_none());
    }

    #[test]
    fn acyclic_method_bound_covers_the_longest_branch() {
        let mut p = ProgramBuilder::new();
        let main = p.function("main", 0, 1, |b| {
            b.const_i(1);
            b.if_else(
                |b| {
                    // Expensive arm: a math intrinsic.
                    b.const_f(2.0).math(vmprobe_bytecode::MathFn::Sqrt).pop();
                },
                |b| {
                    b.nop();
                },
            );
            b.ret();
        });
        let prog = p.finish(main).unwrap();
        let bound = bound_program(&prog, &params());
        let m = &bound.methods[0];
        assert!(!m.cyclic);
        let cycles = m.acyclic_cycles.unwrap();
        // Must cover at least the math op of the expensive arm.
        let math = CpuSpec::of(PlatformKind::PentiumM).math_cost;
        assert!(cycles > math, "longest path {cycles} must include {math}");
    }

    #[test]
    fn bound_grows_with_step_budget() {
        let mut p = ProgramBuilder::new();
        let main = p.function("main", 0, 0, |b| {
            b.ret();
        });
        let prog = p.finish(main).unwrap();
        let small = bound_program(&prog, &params());
        let big = bound_program(
            &prog,
            &BoundParams {
                step_budget: 1_000_000,
                ..params()
            },
        );
        assert!(big.total_cycles > small.total_cycles);
        assert!(big.interpret_cycles > small.interpret_cycles);
    }
}
