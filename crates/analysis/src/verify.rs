//! Merge-point-correct bytecode verification by abstract interpretation.
//!
//! The structural verifier in `vmprobe_bytecode` checks branch ranges,
//! stack depths and signature consistency with a worklist over `(pc,
//! depth)` pairs; it knows nothing about *types*. This module runs a
//! second, stricter tier: a worklist dataflow pass over each method's
//! [`Cfg`](crate::Cfg) with an abstract type per stack slot and per
//! local, so two branches that reach one merge point with the same depth
//! but *incompatible* types are caught before the program runs.
//!
//! # The lattice
//!
//! ```text
//!            Uninit            (possibly-uninitialized local)
//!               |
//!            Conflict          (incompatible types merged)
//!            /  |  \
//!         Int Float Ref        (precise)
//!            \  |  /
//!            Unknown           (no static type information)
//! ```
//!
//! [`AbsTy::Unknown`] is the bottom element (a call result, heap load,
//! or argument — no static claim, so it joins as the identity); the join
//! of two *distinct* precise types is [`AbsTy::Conflict`]; `Conflict`
//! and [`AbsTy::Uninit`] absorb upward. Join is the least upper bound of
//! this genuine lattice (height 3), so it is associative and merge-order
//! independent; each transfer function only moves states up, so the
//! worklist pass terminates.
//!
//! The pass runs in two phases: propagate frames to the fixpoint without
//! judging operand types, then check every reachable instruction against
//! its *final* in-state. Checking only at the fixpoint means a merge
//! point reports the merged type (`conflict`), not whichever branch the
//! worklist happened to visit first.
//!
//! # Severity policy
//!
//! The VM's [`Value`](../../vmprobe_vm/enum.Value.html) coercions are
//! *total* — type confusion can never crash the interpreter, it only
//! produces well-defined garbage. Verification failures here are
//! therefore a deliberate stricter static tier, not a soundness
//! requirement of the interpreter:
//!
//! * consuming a `Conflict` value in a typed operation (ALU, FP, field
//!   access, call argument, return value) — **rejected**: the program's
//!   meaning depends on which branch ran, which is exactly the bug class
//!   merge-point verification exists to catch;
//! * reading a local no path has written ([`AbsTy::Uninit`]) in a typed
//!   operation — **rejected** (dynamically it reads `I(0)`, but no
//!   generated or hand-written workload does this on purpose);
//! * unreachable instructions — **reported** as a diagnostic on the
//!   [`MethodAnalysis`], never a rejection (dead code is wasteful, not
//!   wrong).

use std::fmt;

use vmprobe_bytecode::{ClassId, Method, MethodId, Op, Program, Ty, VerifyError};

use crate::cfg::Cfg;

/// Abstract type of one stack slot or local variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsTy {
    /// Definitely an integer.
    Int,
    /// Definitely a float.
    Float,
    /// Definitely a reference (null included).
    Ref,
    /// Some initialized value of statically unknowable type (a call
    /// result, a heap load, a method argument). Bottom of the lattice:
    /// it carries no claim, so joining it with anything is the identity.
    Unknown,
    /// Incompatible precise types merged at a join point; using this in
    /// a typed operation is a verification error.
    Conflict,
    /// A local no path has initialized yet.
    Uninit,
}

impl AbsTy {
    /// Least upper bound of two abstract types.
    pub fn join(self, other: AbsTy) -> AbsTy {
        use AbsTy::{Conflict, Uninit, Unknown};
        match (self, other) {
            (a, b) if a == b => a,
            (Uninit, _) | (_, Uninit) => Uninit,
            (Conflict, _) | (_, Conflict) => Conflict,
            // Unknown carries no claim: identity.
            (Unknown, x) | (x, Unknown) => x,
            // Two distinct precise types.
            _ => Conflict,
        }
    }

    /// The abstract type of a declared [`Ty`].
    pub fn of(ty: Ty) -> AbsTy {
        match ty {
            Ty::Int => AbsTy::Int,
            Ty::Float => AbsTy::Float,
            Ty::Ref => AbsTy::Ref,
        }
    }

    fn label(self) -> &'static str {
        match self {
            AbsTy::Int => "int",
            AbsTy::Float => "float",
            AbsTy::Ref => "ref",
            AbsTy::Unknown => "unknown",
            AbsTy::Conflict => "conflict",
            AbsTy::Uninit => "uninit",
        }
    }
}

impl fmt::Display for AbsTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What a consuming operation will accept.
#[derive(Debug, Clone, Copy)]
enum Want {
    /// `{Int, Unknown}` — integer ALU, shift counts, branch conditions,
    /// array indices and lengths.
    Int,
    /// `{Float, Unknown}` — FP ALU and math intrinsics.
    Float,
    /// `{Ref, Unknown}` — field/array base objects.
    Ref,
    /// Any initialized, unconflicted value — comparison operands, stored
    /// values, call arguments, returned values.
    Value,
    /// Anything at all, `Conflict` included — pure stack movement
    /// (`Pop`, `Dup`, `Swap`, `Store`). The VM moves these as raw words;
    /// only a *typed* use of a conflicted value is an error.
    Move,
    /// Exactly this declared static type (or `Unknown`).
    Decl(AbsTy),
}

impl Want {
    fn accepts(self, t: AbsTy) -> bool {
        match self {
            Want::Int => matches!(t, AbsTy::Int | AbsTy::Unknown),
            Want::Float => matches!(t, AbsTy::Float | AbsTy::Unknown),
            Want::Ref => matches!(t, AbsTy::Ref | AbsTy::Unknown),
            Want::Value => !matches!(t, AbsTy::Conflict | AbsTy::Uninit),
            Want::Move => true,
            Want::Decl(d) => t == d || t == AbsTy::Unknown,
        }
    }

    fn label(self) -> &'static str {
        match self {
            Want::Int => "int",
            Want::Float => "float",
            Want::Ref => "ref",
            Want::Value => "initialized value",
            Want::Move => "any",
            Want::Decl(AbsTy::Int) => "int (declared)",
            Want::Decl(AbsTy::Float) => "float (declared)",
            Want::Decl(_) => "ref (declared)",
        }
    }
}

/// Why the dataflow verifier rejected a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// The structural tier already rejected it (branch ranges, stack
    /// depths, signatures); the dataflow pass never ran.
    Structural(VerifyError),
    /// A typed operation consumed a value of the wrong abstract type —
    /// including a `conflict` produced by merging incompatible branches.
    TypeConflict {
        /// The offending method.
        method: MethodId,
        /// Instruction index.
        pc: u32,
        /// What the operation accepts.
        wanted: &'static str,
        /// What the abstract stack held.
        found: AbsTy,
    },
    /// A typed operation read a local that no path to it has written.
    UninitLocal {
        /// The offending method.
        method: MethodId,
        /// Instruction index of the read.
        pc: u32,
        /// The local slot.
        local: u8,
    },
    /// Two predecessors reached a merge point with different stack
    /// depths. The structural tier catches this first; kept so the
    /// dataflow pass is self-contained when called on raw bodies.
    ShapeMismatch {
        /// The offending method.
        method: MethodId,
        /// First instruction of the merge block.
        pc: u32,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Structural(e) => write!(f, "structural: {e}"),
            AnalysisError::TypeConflict {
                method,
                pc,
                wanted,
                found,
            } => write!(
                f,
                "{method} pc {pc}: operand type mismatch (wanted {wanted}, found {found})"
            ),
            AnalysisError::UninitLocal { method, pc, local } => write!(
                f,
                "{method} pc {pc}: read of possibly-uninitialized local {local}"
            ),
            AnalysisError::ShapeMismatch { method, pc } => {
                write!(f, "{method} pc {pc}: stack depth disagrees at merge point")
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<VerifyError> for AnalysisError {
    fn from(e: VerifyError) -> Self {
        AnalysisError::Structural(e)
    }
}

/// Per-method facts the dataflow pass produced alongside the verdict.
#[derive(Debug, Clone)]
pub struct MethodAnalysis {
    /// The analyzed method.
    pub method: MethodId,
    /// Number of basic blocks in the CFG.
    pub blocks: usize,
    /// Whether the CFG contains a reachable cycle.
    pub cyclic: bool,
    /// Instruction indices of unreachable code (diagnostic only).
    pub unreachable_pcs: Vec<u32>,
}

/// Program-wide result of the dataflow tier.
#[derive(Debug, Clone)]
pub struct ProgramAnalysis {
    /// One entry per method, in method-id order.
    pub methods: Vec<MethodAnalysis>,
}

impl ProgramAnalysis {
    /// Total unreachable instructions across all methods.
    pub fn unreachable_ops(&self) -> usize {
        self.methods.iter().map(|m| m.unreachable_pcs.len()).sum()
    }
}

/// Abstract machine state at one program point.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Frame {
    stack: Vec<AbsTy>,
    locals: Vec<AbsTy>,
}

impl Frame {
    fn entry(method: &Method) -> Self {
        let n_args = method.n_args() as usize;
        let n_locals = method.n_locals() as usize;
        let mut locals = vec![AbsTy::Uninit; n_locals];
        for slot in locals.iter_mut().take(n_args) {
            *slot = AbsTy::Unknown;
        }
        Self {
            stack: Vec::new(),
            locals,
        }
    }

    /// Join `other` into `self`; `Ok(true)` when anything changed.
    fn merge(&mut self, other: &Frame) -> Result<bool, ()> {
        if self.stack.len() != other.stack.len() {
            return Err(());
        }
        let mut changed = false;
        for (a, b) in self
            .stack
            .iter_mut()
            .zip(&other.stack)
            .chain(self.locals.iter_mut().zip(&other.locals))
        {
            let j = a.join(*b);
            if j != *a {
                *a = j;
                changed = true;
            }
        }
        Ok(changed)
    }
}

/// Verify one method through both tiers: structural first (delegated to
/// [`vmprobe_bytecode::verify_method`]), then the dataflow pass.
///
/// # Errors
///
/// [`AnalysisError::Structural`] wrapping the first structural defect, or
/// a typed dataflow rejection ([`AnalysisError::TypeConflict`],
/// [`AnalysisError::UninitLocal`], [`AnalysisError::ShapeMismatch`]).
pub fn verify_method(program: &Program, id: MethodId) -> Result<MethodAnalysis, AnalysisError> {
    let method = program.method(id);
    vmprobe_bytecode::verify_method(program, method)?;
    let cfg = Cfg::new(method);
    let (cyclic, _) = cfg.cycle_and_order();

    let n_blocks = cfg.blocks().len();
    let mut in_states: Vec<Option<Frame>> = vec![None; n_blocks];
    in_states[0] = Some(Frame::entry(method));
    let mut worklist = vec![0usize];
    let mut queued = vec![false; n_blocks];
    queued[0] = true;

    // Phase 1: propagate frames to the fixpoint. Operand types are not
    // judged here — a block visited early would otherwise be checked
    // against a partial (pre-merge) state.
    while let Some(b) = worklist.pop() {
        queued[b] = false;
        let mut state = in_states[b].clone().expect("queued block has a state");
        let block = &cfg.blocks()[b];
        for pc in block.range() {
            transfer(program, method, pc, &mut state, false)?;
        }
        for &s in &block.succs {
            let start = cfg.blocks()[s].start as u32;
            let changed = match &mut in_states[s] {
                Some(existing) => {
                    existing
                        .merge(&state)
                        .map_err(|()| AnalysisError::ShapeMismatch {
                            method: id,
                            pc: start,
                        })?
                }
                slot @ None => {
                    *slot = Some(state.clone());
                    true
                }
            };
            if changed && !queued[s] {
                queued[s] = true;
                worklist.push(s);
            }
        }
    }

    // Phase 2: check every reachable instruction against its final
    // in-state, so merge points are judged on the merged types.
    for (b, in_state) in in_states.iter().enumerate() {
        let Some(in_state) = in_state else { continue };
        let mut state = in_state.clone();
        for pc in cfg.blocks()[b].range() {
            transfer(program, method, pc, &mut state, true)?;
        }
    }

    let reachable = cfg.reachable();
    let mut unreachable_pcs = Vec::new();
    for (i, block) in cfg.blocks().iter().enumerate() {
        if !reachable[i] {
            unreachable_pcs.extend(block.range().map(|pc| pc as u32));
        }
    }

    Ok(MethodAnalysis {
        method: id,
        blocks: n_blocks,
        cyclic,
        unreachable_pcs,
    })
}

/// Verify every method of one class (the load-time granularity).
///
/// # Errors
///
/// The first failing method's error (see [`verify_method`]).
pub fn verify_class(program: &Program, id: ClassId) -> Result<(), AnalysisError> {
    for &m in program.class(id).methods() {
        verify_method(program, m)?;
    }
    Ok(())
}

/// Verify every method of the program.
///
/// # Errors
///
/// The first failing method's error (see [`verify_method`]).
pub fn verify_program(program: &Program) -> Result<ProgramAnalysis, AnalysisError> {
    let mut methods = Vec::with_capacity(program.method_count());
    for m in program.methods() {
        methods.push(verify_method(program, m.id())?);
    }
    Ok(ProgramAnalysis { methods })
}

/// Pop one operand; judge it against `want` only when `check` is set
/// (phase 2 — phase 1 merely propagates shapes).
fn pop(
    state: &mut Frame,
    method: MethodId,
    pc: usize,
    want: Want,
    check: bool,
) -> Result<AbsTy, AnalysisError> {
    // Structural verification already proved depths, so underflow here
    // would be a bug in this module, not in the input.
    let t = state.stack.pop().expect("structurally verified depth");
    if !check || want.accepts(t) {
        Ok(t)
    } else {
        Err(AnalysisError::TypeConflict {
            method,
            pc: pc as u32,
            wanted: want.label(),
            found: t,
        })
    }
}

/// Abstractly execute one instruction. With `check` unset this is the
/// pure transfer function (propagation); with it set, operand types are
/// judged and violations are returned.
fn transfer(
    program: &Program,
    method: &Method,
    pc: usize,
    state: &mut Frame,
    check: bool,
) -> Result<(), AnalysisError> {
    let id = method.id();
    let op = method.code()[pc];
    match op {
        Op::ConstI(_) => state.stack.push(AbsTy::Int),
        Op::ConstF(_) => state.stack.push(AbsTy::Float),
        Op::ConstNull => state.stack.push(AbsTy::Ref),
        Op::Dup => {
            let t = *state.stack.last().expect("structurally verified depth");
            state.stack.push(t);
        }
        Op::Pop => {
            pop(state, id, pc, Want::Move, check)?;
        }
        Op::Swap => {
            let n = state.stack.len();
            state.stack.swap(n - 1, n - 2);
        }
        Op::Load(n) => {
            let t = state.locals[n as usize];
            if check && t == AbsTy::Uninit {
                return Err(AnalysisError::UninitLocal {
                    method: id,
                    pc: pc as u32,
                    local: n,
                });
            }
            state.stack.push(t);
        }
        Op::Store(n) => {
            let t = pop(state, id, pc, Want::Move, check)?;
            state.locals[n as usize] = t;
        }

        Op::Add
        | Op::Sub
        | Op::Mul
        | Op::Div
        | Op::Rem
        | Op::Shl
        | Op::Shr
        | Op::And
        | Op::Or
        | Op::Xor => {
            pop(state, id, pc, Want::Int, check)?;
            pop(state, id, pc, Want::Int, check)?;
            state.stack.push(AbsTy::Int);
        }
        Op::Neg => {
            pop(state, id, pc, Want::Int, check)?;
            state.stack.push(AbsTy::Int);
        }
        Op::FAdd | Op::FSub | Op::FMul | Op::FDiv => {
            pop(state, id, pc, Want::Float, check)?;
            pop(state, id, pc, Want::Float, check)?;
            state.stack.push(AbsTy::Float);
        }
        Op::FNeg | Op::Math(_) => {
            pop(state, id, pc, Want::Float, check)?;
            state.stack.push(AbsTy::Float);
        }
        Op::I2F => {
            pop(state, id, pc, Want::Int, check)?;
            state.stack.push(AbsTy::Float);
        }
        Op::F2I => {
            pop(state, id, pc, Want::Float, check)?;
            state.stack.push(AbsTy::Int);
        }

        Op::Lt | Op::Le | Op::Gt | Op::Ge | Op::Eq | Op::Ne => {
            // The interpreter compares any mix of types through total
            // coercions, so both operands only need to be initialized
            // and unconflicted.
            pop(state, id, pc, Want::Value, check)?;
            pop(state, id, pc, Want::Value, check)?;
            state.stack.push(AbsTy::Int);
        }
        Op::IsNull => {
            pop(state, id, pc, Want::Value, check)?;
            state.stack.push(AbsTy::Int);
        }

        Op::Jump(_) => {}
        Op::BrTrue(_) | Op::BrFalse(_) => {
            pop(state, id, pc, Want::Int, check)?;
        }
        Op::Call(callee) => {
            let sig = program.method(callee);
            for _ in 0..sig.n_args() {
                pop(state, id, pc, Want::Value, check)?;
            }
            if sig.returns_value() {
                state.stack.push(AbsTy::Unknown);
            }
        }
        Op::Ret => {}
        Op::RetV => {
            pop(state, id, pc, Want::Value, check)?;
        }

        Op::New(_) => state.stack.push(AbsTy::Ref),
        Op::NewArr(_) => {
            pop(state, id, pc, Want::Int, check)?;
            state.stack.push(AbsTy::Ref);
        }
        Op::GetField(_) => {
            pop(state, id, pc, Want::Ref, check)?;
            // The receiver's runtime class — and with it the field's
            // type — is not statically known.
            state.stack.push(AbsTy::Unknown);
        }
        Op::PutField(_) => {
            pop(state, id, pc, Want::Value, check)?; // value
            pop(state, id, pc, Want::Ref, check)?; // object
        }
        Op::GetStatic(s) => {
            state
                .stack
                .push(AbsTy::of(program.statics()[s as usize].ty()));
        }
        Op::PutStatic(s) => {
            let decl = AbsTy::of(program.statics()[s as usize].ty());
            pop(state, id, pc, Want::Decl(decl), check)?;
        }
        Op::ALoad => {
            pop(state, id, pc, Want::Int, check)?; // index
            pop(state, id, pc, Want::Ref, check)?; // array
            state.stack.push(AbsTy::Unknown);
        }
        Op::AStore => {
            pop(state, id, pc, Want::Value, check)?; // value
            pop(state, id, pc, Want::Int, check)?; // index
            pop(state, id, pc, Want::Ref, check)?; // array
        }
        Op::ArrLen => {
            pop(state, id, pc, Want::Ref, check)?;
            state.stack.push(AbsTy::Int);
        }
        Op::Nop => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmprobe_bytecode::ProgramBuilder;

    #[test]
    fn join_is_commutative_idempotent_and_absorbing() {
        use AbsTy::*;
        let all = [Int, Float, Ref, Unknown, Conflict, Uninit];
        for &a in &all {
            assert_eq!(a.join(a), a, "idempotent {a}");
            for &b in &all {
                assert_eq!(a.join(b), b.join(a), "commutative {a} {b}");
                // Associativity over the small carrier.
                for &c in &all {
                    assert_eq!(a.join(b).join(c), a.join(b.join(c)), "assoc {a} {b} {c}");
                }
            }
            assert_eq!(a.join(Uninit), Uninit);
            assert!(matches!(a.join(Conflict), Conflict | Uninit));
        }
        assert_eq!(Int.join(Float), Conflict);
        assert_eq!(Int.join(Ref), Conflict);
        assert_eq!(Float.join(Ref), Conflict);
        // Unknown is bottom: identity under join.
        assert_eq!(Int.join(Unknown), Int);
        assert_eq!(Conflict.join(Unknown), Conflict);
    }

    #[test]
    fn straight_line_program_verifies() {
        let mut p = ProgramBuilder::new();
        let main = p.function("main", 0, 2, |b| {
            b.const_i(40).store(0).load(0).const_i(2).add().ret_value();
        });
        let prog = p.finish(main).unwrap();
        let a = verify_program(&prog).unwrap();
        assert_eq!(a.methods.len(), 1);
        assert!(!a.methods[0].cyclic);
        assert!(a.methods[0].unreachable_pcs.is_empty());
    }

    #[test]
    fn merge_of_int_and_float_rejected_only_at_typed_use() {
        // Two branches reach the join with the SAME depth but Int on one
        // path and Float on the other; the structural verifier accepts
        // this. Merely popping the merged value is fine …
        let mut p = ProgramBuilder::new();
        let benign = p.function("benign", 0, 0, |b| {
            b.const_i(1);
            b.if_else(
                |b| {
                    b.const_i(7);
                },
                |b| {
                    b.const_f(7.0);
                },
            );
            b.pop().ret();
        });
        let prog = p.finish(benign).unwrap();
        vmprobe_bytecode::verify_program(&prog).expect("structural tier accepts");
        verify_program(&prog).expect("untyped use of a merged value is fine");

        // … but feeding it to an integer op is the merge-point bug.
        let mut p = ProgramBuilder::new();
        let bad = p.function("bad", 0, 0, |b| {
            b.const_i(1);
            b.if_else(
                |b| {
                    b.const_i(7);
                },
                |b| {
                    b.const_f(7.0);
                },
            );
            b.const_i(1).add().ret_value();
        });
        let prog = p.finish(bad);
        // The builder's own gate is the structural tier, which accepts it.
        let prog = prog.expect("structural tier accepts the merge-point bug");
        let err = verify_program(&prog).unwrap_err();
        assert!(
            matches!(
                err,
                AnalysisError::TypeConflict {
                    found: AbsTy::Conflict,
                    ..
                }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn uninitialized_local_read_is_rejected() {
        let mut p = ProgramBuilder::new();
        let main = p.function("main", 0, 1, |b| {
            b.load(0).ret_value();
        });
        let prog = p.finish(main).expect("structural tier accepts");
        let err = verify_program(&prog).unwrap_err();
        assert!(
            matches!(err, AnalysisError::UninitLocal { local: 0, .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn one_sided_initialization_is_uninit_at_the_join() {
        let mut p = ProgramBuilder::new();
        let main = p.function("main", 1, 1, |b| {
            b.load(0);
            b.if_then(|b| {
                b.const_i(5).store(1);
            });
            b.load(1).ret_value();
        });
        let prog = p.finish(main).expect("structural tier accepts");
        let err = verify_program(&prog).unwrap_err();
        assert!(matches!(err, AnalysisError::UninitLocal { local: 1, .. }));
    }

    #[test]
    fn arguments_are_initialized() {
        let mut p = ProgramBuilder::new();
        let callee = p.function("callee", 2, 0, |b| {
            b.load(0).load(1).add().ret_value();
        });
        let main = p.function("main", 0, 0, |b| {
            b.const_i(1).const_i(2).call(callee).ret_value();
        });
        let prog = p.finish(main).unwrap();
        verify_program(&prog).unwrap();
    }

    #[test]
    fn float_op_on_int_rejected() {
        let mut p = ProgramBuilder::new();
        let main = p.function("main", 0, 0, |b| {
            b.const_i(1).const_i(2).fadd().ret_value();
        });
        let prog = p.finish(main).expect("structural tier accepts");
        let err = verify_program(&prog).unwrap_err();
        assert!(matches!(
            err,
            AnalysisError::TypeConflict {
                found: AbsTy::Int,
                ..
            }
        ));
    }

    #[test]
    fn static_types_flow_through() {
        let mut p = ProgramBuilder::new();
        let s = p.static_slot("acc", Ty::Float);
        let main = p.function("main", 0, 0, |b| {
            b.const_f(1.0).put_static(s);
            b.get_static(s).const_f(2.0).fadd().pop().ret();
        });
        let prog = p.finish(main).unwrap();
        verify_program(&prog).unwrap();

        // Storing an int into the float static is rejected.
        let mut p = ProgramBuilder::new();
        let s = p.static_slot("acc", Ty::Float);
        let main = p.function("main", 0, 0, |b| {
            b.const_i(1).put_static(s).ret();
        });
        let prog = p.finish(main).expect("structural tier accepts");
        assert!(verify_program(&prog).is_err());
    }

    #[test]
    fn loops_verify_and_are_marked_cyclic() {
        let mut p = ProgramBuilder::new();
        let main = p.function("main", 0, 2, |b| {
            b.const_i(0).store(0);
            b.for_range(1, 0, 100, |b| {
                b.load(0).load(1).add().store(0);
            });
            b.load(0).ret_value();
        });
        let prog = p.finish(main).unwrap();
        let a = verify_program(&prog).unwrap();
        assert!(a.methods[0].cyclic);
    }

    #[test]
    fn structural_errors_are_wrapped() {
        // An empty builder cannot even produce such a program; drive the
        // structural tier through the analysis entry point on a valid
        // program to confirm the passthrough shape instead.
        let mut p = ProgramBuilder::new();
        let main = p.function("main", 0, 0, |b| {
            b.ret();
        });
        let prog = p.finish(main).unwrap();
        assert!(verify_method(&prog, main).is_ok());
    }
}
