//! Property tests: programs assembled through the builder DSL always
//! verify, disassemble completely, and report consistent metadata.

use proptest::prelude::*;
use vmprobe_bytecode::{disassemble, ArrKind, MathFn, ProgramBuilder, Ty};

/// A structured random method body: a straight-line prefix, a counted
/// loop, and an arithmetic reduction — everything the builder's structured
/// helpers guarantee to balance.
#[derive(Debug, Clone)]
struct BodyPlan {
    consts: Vec<i64>,
    loop_iters: i64,
    use_floats: bool,
    use_arrays: bool,
    math: Option<MathFn>,
}

fn arb_body() -> impl Strategy<Value = BodyPlan> {
    (
        prop::collection::vec(any::<i64>(), 1..8),
        0i64..50,
        any::<bool>(),
        any::<bool>(),
        prop::option::of(prop_oneof![
            Just(MathFn::Sqrt),
            Just(MathFn::Sin),
            Just(MathFn::Cos),
            Just(MathFn::Log),
            Just(MathFn::Exp),
        ]),
    )
        .prop_map(
            |(consts, loop_iters, use_floats, use_arrays, math)| BodyPlan {
                consts,
                loop_iters,
                use_floats,
                use_arrays,
                math,
            },
        )
}

proptest! {
    #[test]
    fn builder_programs_always_verify(plans in prop::collection::vec(arb_body(), 1..6)) {
        let mut p = ProgramBuilder::new();
        let cls = p.class("Prop").field("x", Ty::Int).field("r", Ty::Ref).build();
        let mut methods = Vec::new();
        for (i, plan) in plans.iter().enumerate() {
            let plan = plan.clone();
            methods.push(p.method(cls, format!("m{i}"), 0, 4, move |b| {
                b.const_i(0).store(0);
                for &c in &plan.consts {
                    b.const_i(c).load(0).add().store(0);
                }
                b.for_range(1, 0, plan.loop_iters, |b| {
                    b.load(0).const_i(3).mul().store(0);
                });
                if plan.use_floats {
                    b.load(0).i2f().store(2);
                    b.load(2).const_f(1.5).fmul().store(2);
                    if let Some(m) = plan.math {
                        b.load(2).math(m).store(2);
                    }
                    b.load(2).f2i().load(0).add().store(0);
                }
                if plan.use_arrays {
                    b.const_i(4).new_arr(ArrKind::Int).store(3);
                    b.load(3).const_i(1).load(0).astore();
                    b.load(3).const_i(1).aload().store(0);
                }
                b.load(0).ret_value();
            }));
        }
        // A main that calls every generated method.
        let calls = methods.clone();
        let main = p.method(cls, "main", 0, 1, move |b| {
            b.const_i(0).store(0);
            for &m in &calls {
                b.call(m).load(0).add().store(0);
            }
            b.load(0).ret_value();
        });
        let program = p.finish(main);
        prop_assert!(program.is_ok(), "builder output failed verification: {:?}", program.err());

        // Disassembly is total: one line per instruction plus a header.
        let program = program.unwrap();
        for m in program.methods() {
            let listing = disassemble(&program, m.id());
            prop_assert_eq!(listing.lines().count(), m.code().len() + 1);
        }
    }

    #[test]
    fn bytecode_bytes_are_positive_and_additive(n_methods in 1usize..10) {
        let mut p = ProgramBuilder::new();
        let mut last = None;
        for i in 0..n_methods {
            last = Some(p.function(format!("f{i}"), 0, 1, |b| {
                b.const_i(7).store(0);
                b.load(0).ret_value();
            }));
        }
        let program = p.finish(last.unwrap()).unwrap();
        let total: u64 = program.methods().iter().map(|m| u64::from(m.bytecode_bytes())).sum();
        prop_assert!(total > 0);
        // Class-file size includes every method's bytes.
        let kernel = program.classes().iter().find(|c| c.name() == "Kernel").unwrap();
        prop_assert!(u64::from(program.classfile_bytes(kernel.id())) > total);
    }
}
