//! Method metadata and code bodies.

use serde::{Deserialize, Serialize};

use crate::{ClassId, Op};

/// Program-wide method identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct MethodId(pub u32);

impl std::fmt::Display for MethodId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "M{}", self.0)
    }
}

/// A method: signature, local-frame shape and bytecode body.
///
/// The modeled *bytecode length* ([`Method::bytecode_bytes`]) feeds the
/// compilation-cost model of the runtime's baseline, optimizing and JIT
/// compilers, exactly as real compile time scales with method size in Jikes
/// RVM's cost/benefit model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Method {
    id: MethodId,
    class: ClassId,
    name: String,
    n_args: u8,
    n_locals: u8,
    returns_value: bool,
    code: Vec<Op>,
    bytecode_bytes: u32,
}

impl Method {
    pub(crate) fn new(
        id: MethodId,
        class: ClassId,
        name: String,
        n_args: u8,
        n_locals: u8,
        returns_value: bool,
        code: Vec<Op>,
    ) -> Self {
        let bytecode_bytes = code.iter().map(Op::encoded_len).sum();
        Self {
            id,
            class,
            name,
            n_args,
            n_locals,
            returns_value,
            code,
            bytecode_bytes,
        }
    }

    /// The method's program-wide identity.
    pub fn id(&self) -> MethodId {
        self.id
    }

    /// Declaring class.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// Method name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of arguments, which occupy local slots `0..n_args`.
    pub fn n_args(&self) -> u8 {
        self.n_args
    }

    /// Total local slots (arguments included).
    pub fn n_locals(&self) -> u8 {
        self.n_locals
    }

    /// Whether a call to this method leaves a value on the caller's stack.
    pub fn returns_value(&self) -> bool {
        self.returns_value
    }

    /// The bytecode body.
    pub fn code(&self) -> &[Op] {
        &self.code
    }

    /// Modeled encoded size of the body in bytes.
    pub fn bytecode_bytes(&self) -> u32 {
        self.bytecode_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytecode_bytes_sums_encoded_lengths() {
        let m = Method::new(
            MethodId(0),
            ClassId(0),
            "f".into(),
            1,
            2,
            true,
            vec![Op::Load(0), Op::ConstI(1), Op::Add, Op::RetV],
        );
        assert_eq!(m.bytecode_bytes(), 2 + 5 + 1 + 1);
        assert_eq!(m.n_args(), 1);
        assert!(m.returns_value());
        assert_eq!(format!("{}", m.id()), "M0");
    }
}
