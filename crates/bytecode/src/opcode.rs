//! The instruction set of the vmprobe stack machine.

use serde::{Deserialize, Serialize};

use crate::{ClassId, MethodId};

/// Primitive type of a field, static slot or local variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Ty {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// Reference to a heap object (or null).
    Ref,
}

impl Ty {
    /// Modeled size in bytes this type occupies inside an object payload.
    ///
    /// All slots are 8 bytes, matching a 64-bit JVM object layout without
    /// compressed oops.
    pub const fn size_bytes(self) -> u32 {
        8
    }
}

/// Element kind of an array object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArrKind {
    /// Array of 64-bit integers.
    Int,
    /// Array of 64-bit floats.
    Float,
    /// Array of references; elements are traced by the garbage collector.
    Ref,
}

impl ArrKind {
    /// Modeled bytes per element.
    pub const fn elem_bytes(self) -> u32 {
        8
    }

    /// Whether elements are references the garbage collector must trace.
    pub const fn is_ref(self) -> bool {
        matches!(self, ArrKind::Ref)
    }
}

/// Transcendental / long-latency floating point intrinsics.
///
/// These model `java.lang.Math` style calls that SpecJVM98's `_222_mpegaudio`
/// and the Java Grande kernels lean on heavily. The platform model charges a
/// multi-cycle latency for each (and on the PXA255, which has no FPU, a large
/// software-emulation cost — the mechanism behind the XScale power inversion
/// in the paper's Section VI-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MathFn {
    /// Square root.
    Sqrt,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Natural logarithm.
    Log,
    /// Exponential.
    Exp,
}

/// A single bytecode instruction.
///
/// The machine is a classic operand-stack design: instructions pop their
/// operands from and push their results to an implicit stack; `Load`/`Store`
/// move values between the stack and method-local slots.
///
/// Control-flow targets (`Jump`, `BrTrue`, `BrFalse`) are absolute indices
/// into the owning method's code vector, validated by
/// [`verify_method`](crate::verify_method).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Op {
    // ---- constants and stack shuffling ----
    /// Push an integer constant.
    ConstI(i64),
    /// Push a float constant.
    ConstF(f64),
    /// Push the null reference.
    ConstNull,
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Pop,
    /// Swap the two top stack values.
    Swap,
    /// Push local slot `n`.
    Load(u8),
    /// Pop into local slot `n`.
    Store(u8),

    // ---- integer ALU ----
    /// Integer add: pops `b`, `a`; pushes `a + b` (wrapping).
    Add,
    /// Integer subtract (wrapping).
    Sub,
    /// Integer multiply (wrapping).
    Mul,
    /// Integer divide; division by zero yields 0 (the VM traps in real Java;
    /// we saturate so workloads remain total functions).
    Div,
    /// Integer remainder; zero divisor yields 0.
    Rem,
    /// Integer negate.
    Neg,
    /// Shift left by `b & 63`.
    Shl,
    /// Arithmetic shift right by `b & 63`.
    Shr,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,

    // ---- float ALU ----
    /// Float add.
    FAdd,
    /// Float subtract.
    FSub,
    /// Float multiply.
    FMul,
    /// Float divide.
    FDiv,
    /// Float negate.
    FNeg,
    /// Long-latency float intrinsic.
    Math(MathFn),

    // ---- conversions ----
    /// Integer to float.
    I2F,
    /// Float to integer (truncating; NaN becomes 0).
    F2I,

    // ---- comparisons: push integer 1 (true) or 0 (false) ----
    /// Less-than on two numbers of the same runtime kind.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Equality; also defined on references (identity) and null.
    Eq,
    /// Inequality.
    Ne,
    /// Pops a value; pushes 1 if it is the null reference.
    IsNull,

    // ---- control flow ----
    /// Unconditional jump to code index.
    Jump(u32),
    /// Pop an integer; jump if non-zero.
    BrTrue(u32),
    /// Pop an integer; jump if zero.
    BrFalse(u32),
    /// Call a method: pops `n_args` values (last argument on top), pushes the
    /// callee's return value if it returns one.
    Call(MethodId),
    /// Return with no value.
    Ret,
    /// Pop the top of stack and return it.
    RetV,

    // ---- objects and arrays ----
    /// Allocate an instance of a class (fields zero/null initialized);
    /// triggers class loading on first use and garbage collection when the
    /// heap is exhausted. Pushes the reference.
    New(ClassId),
    /// Pop an object reference; push its field `n`.
    GetField(u16),
    /// Pop value then object reference; store into field `n`. Reference
    /// stores pass through the collector's write barrier.
    PutField(u16),
    /// Push global static slot `n`.
    GetStatic(u16),
    /// Pop into global static slot `n`. Static reference slots are GC roots.
    PutStatic(u16),
    /// Pop a length; allocate an array and push its reference.
    NewArr(ArrKind),
    /// Pop index then array reference; push the element.
    ALoad,
    /// Pop value, index, then array reference; store the element.
    AStore,
    /// Pop an array reference; push its length.
    ArrLen,

    /// No operation (used as a patchable placeholder by tooling).
    Nop,
}

impl Op {
    /// Modeled encoded size of this instruction in a class file, in bytes.
    ///
    /// Used to compute method bytecode lengths (compilation cost) and
    /// class-file sizes (class loading cost). The values approximate JVM
    /// class-file encoding: one opcode byte plus operand bytes.
    pub const fn encoded_len(&self) -> u32 {
        match self {
            Op::ConstI(_) | Op::ConstF(_) => 5,
            Op::Jump(_) | Op::BrTrue(_) | Op::BrFalse(_) | Op::Call(_) | Op::New(_) => 3,
            Op::GetField(_) | Op::PutField(_) | Op::GetStatic(_) | Op::PutStatic(_) => 3,
            Op::Load(_) | Op::Store(_) | Op::NewArr(_) | Op::Math(_) => 2,
            _ => 1,
        }
    }

    /// Number of operand-stack values this instruction pops.
    ///
    /// `Call` pops the callee's argument count, which is not knowable from
    /// the opcode alone; the verifier special-cases it.
    pub fn pops(&self) -> usize {
        match self {
            Op::ConstI(_) | Op::ConstF(_) | Op::ConstNull | Op::Load(_) => 0,
            Op::GetStatic(_) | Op::Jump(_) | Op::Ret | Op::Nop | Op::New(_) => 0,
            Op::Dup => 1,
            Op::Pop | Op::Store(_) | Op::Neg | Op::FNeg | Op::Math(_) => 1,
            Op::I2F | Op::F2I | Op::IsNull | Op::BrTrue(_) | Op::BrFalse(_) => 1,
            Op::RetV | Op::GetField(_) | Op::PutStatic(_) => 1,
            Op::NewArr(_) | Op::ArrLen => 1,
            Op::Swap => 2,
            Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Rem => 2,
            Op::Shl | Op::Shr | Op::And | Op::Or | Op::Xor => 2,
            Op::FAdd | Op::FSub | Op::FMul | Op::FDiv => 2,
            Op::Lt | Op::Le | Op::Gt | Op::Ge | Op::Eq | Op::Ne => 2,
            Op::PutField(_) | Op::ALoad => 2,
            Op::AStore => 3,
            Op::Call(_) => 0, // verifier consults the callee signature
        }
    }

    /// Number of operand-stack values this instruction pushes.
    ///
    /// `Call` pushes 0 or 1 depending on the callee; the verifier
    /// special-cases it.
    pub fn pushes(&self) -> usize {
        match self {
            Op::Pop | Op::Store(_) | Op::Jump(_) | Op::BrTrue(_) | Op::BrFalse(_) => 0,
            Op::Ret | Op::RetV | Op::PutField(_) | Op::PutStatic(_) | Op::AStore | Op::Nop => 0,
            Op::Swap => 2,
            Op::Dup => 2,
            Op::Call(_) => 0, // verifier consults the callee signature
            _ => 1,
        }
    }

    /// Whether this instruction unconditionally transfers control (the
    /// instruction after it is not a fall-through successor).
    pub const fn is_terminator(&self) -> bool {
        matches!(self, Op::Jump(_) | Op::Ret | Op::RetV)
    }

    /// Branch target, if this is a control transfer with a static target.
    pub const fn branch_target(&self) -> Option<u32> {
        match self {
            Op::Jump(t) | Op::BrTrue(t) | Op::BrFalse(t) => Some(*t),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoded_len_matches_operand_width() {
        assert_eq!(Op::ConstI(1).encoded_len(), 5);
        assert_eq!(Op::Jump(0).encoded_len(), 3);
        assert_eq!(Op::Load(0).encoded_len(), 2);
        assert_eq!(Op::Add.encoded_len(), 1);
    }

    #[test]
    fn stack_effects_balance_for_simple_ops() {
        // A binary op consumes two and produces one.
        for op in [Op::Add, Op::FMul, Op::Lt, Op::Xor] {
            assert_eq!(op.pops(), 2);
            assert_eq!(op.pushes(), 1);
        }
        // Dup nets +1, Pop nets -1.
        assert_eq!(Op::Dup.pushes() as isize - Op::Dup.pops() as isize, 1);
        assert_eq!(Op::Pop.pushes() as isize - Op::Pop.pops() as isize, -1);
    }

    #[test]
    fn terminators_and_targets() {
        assert!(Op::Ret.is_terminator());
        assert!(Op::Jump(3).is_terminator());
        assert!(!Op::BrTrue(3).is_terminator());
        assert_eq!(Op::BrFalse(7).branch_target(), Some(7));
        assert_eq!(Op::Add.branch_target(), None);
    }

    #[test]
    fn ty_and_arrkind_sizes() {
        assert_eq!(Ty::Int.size_bytes(), 8);
        assert_eq!(ArrKind::Float.elem_bytes(), 8);
        assert!(ArrKind::Ref.is_ref());
        assert!(!ArrKind::Int.is_ref());
    }
}
