//! A tiny mnemonic assembler producing **unverified** [`Program`]s.
//!
//! The serving daemon's `verify` operation accepts tenant-submitted
//! bytecode as text; this module is the parser behind it. It is the one
//! sanctioned way to construct a [`Program`] that has *not* passed the
//! builder's verifier — which is exactly the point: the daemon and the
//! analysis crate's dataflow verifier need real invalid programs to
//! reject, and tests need a compact notation for them.
//!
//! **Never feed an assembled program straight to the runtime.** Run it
//! through `vmprobe-analysis`' `verify_program` first (the daemon does).
//!
//! # Notation
//!
//! One directive or instruction per line; `#` and `;` start comments.
//! All programs define a single implicit class named `Kernel`
//! (`ClassId(0)`); the first `.method` is the entry point.
//!
//! ```text
//! .field  next ref        # instance field on the implicit class
//! .static total int       # global static slot
//! .method main 0 2 ret    # name, n_args, n_locals, optional 'ret'
//!     const_i 0
//!     store 0
//! loop:
//!     load 0
//!     const_i 10
//!     lt
//!     brfalse done
//!     load 0
//!     const_i 1
//!     add
//!     store 0
//!     jump loop
//! done:
//!     load 0
//!     ret_value
//! ```
//!
//! Branch targets are label names or raw absolute indices written `@N`
//! (raw targets may dangle — useful for feeding the verifier garbage).
//! `call` takes a method name or `@N`; `get_static`/`put_static` take a
//! static name or a raw slot number; `get_field`/`put_field` a field
//! name or slot number; `new` takes no operand (the implicit class) or
//! `@N` for an arbitrary class id.

use std::fmt;

use crate::{
    ArrKind, Class, ClassId, FieldDef, MathFn, Method, MethodId, Op, Program, StaticDef, Ty,
};

/// A parse failure, with the 1-based source line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number of the offending line (0 for end-of-input
    /// errors such as a program with no methods).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// An unresolved branch or call operand.
enum PendingRef {
    /// `jump label` — patched once the method's labels are known.
    Branch { pc: usize, label: String },
    /// `call name` — patched once every method is declared.
    Call { pc: usize, name: String },
}

struct MethodInProgress {
    name: String,
    n_args: u8,
    n_locals: u8,
    returns_value: bool,
    decl_line: usize,
    code: Vec<Op>,
    labels: Vec<(String, u32)>,
    pending: Vec<PendingRef>,
}

/// Assemble `source` into an **unverified** [`Program`].
///
/// # Errors
///
/// Any syntactic defect — unknown mnemonic, malformed operand, duplicate
/// or undefined label, undefined method/static/field name, or a program
/// with no methods — is an [`AsmError`] naming the line. Semantic
/// defects (bad stack shapes, dangling `@N` targets, out-of-range ids)
/// are deliberately *not* errors here: detecting those is the dataflow
/// verifier's job.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut fields: Vec<FieldDef> = Vec::new();
    let mut statics: Vec<StaticDef> = Vec::new();
    let mut methods: Vec<MethodInProgress> = Vec::new();

    let err = |line: usize, message: String| AsmError { line, message };

    for (idx, raw) in source.lines().enumerate() {
        let lineno = idx + 1;
        let line = match raw.find(['#', ';']) {
            Some(cut) => &raw[..cut],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }

        // Labels may share a line with an instruction: `loop: load 0`.
        let mut rest = line;
        while let Some(colon) = rest.find(':') {
            let (name, after) = rest.split_at(colon);
            let name = name.trim();
            if name.is_empty() || !is_ident(name) {
                return Err(err(lineno, format!("bad label name '{name}'")));
            }
            let m = methods
                .last_mut()
                .ok_or_else(|| err(lineno, "label before any .method".into()))?;
            if m.labels.iter().any(|(l, _)| l == name) {
                return Err(err(lineno, format!("duplicate label '{name}'")));
            }
            let at = m.code.len() as u32;
            m.labels.push((name.to_owned(), at));
            rest = after[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }

        let mut tokens = rest.split_whitespace();
        let head = tokens.next().expect("non-empty line has a token");
        let operands: Vec<&str> = tokens.collect();

        if let Some(directive) = head.strip_prefix('.') {
            parse_directive(
                directive,
                &operands,
                lineno,
                &mut fields,
                &mut statics,
                &mut methods,
            )?;
            continue;
        }

        let m = methods
            .last_mut()
            .ok_or_else(|| err(lineno, format!("instruction '{head}' before any .method")))?;
        let pc = m.code.len();
        let op = parse_instruction(head, &operands, lineno, pc, &fields, &statics, m)?;
        m.code.push(op);
    }

    if methods.is_empty() {
        return Err(err(0, "program declares no .method".into()));
    }

    // Resolve labels and calls, then freeze.
    let names: Vec<String> = methods.iter().map(|m| m.name.clone()).collect();
    let mut frozen: Vec<Method> = Vec::new();
    let mut class = Class::new(ClassId(0), "Kernel".into(), fields, false, 0);
    for (i, m) in methods.iter_mut().enumerate() {
        for pending in &m.pending {
            match pending {
                PendingRef::Branch { pc, label } => {
                    let target = m
                        .labels
                        .iter()
                        .find(|(l, _)| l == label)
                        .map(|(_, at)| *at)
                        .ok_or_else(|| {
                            err(
                                m.decl_line,
                                format!("undefined label '{label}' in '{}'", m.name),
                            )
                        })?;
                    m.code[*pc] = match m.code[*pc] {
                        Op::Jump(_) => Op::Jump(target),
                        Op::BrTrue(_) => Op::BrTrue(target),
                        Op::BrFalse(_) => Op::BrFalse(target),
                        other => unreachable!("pending branch over {other:?}"),
                    };
                }
                PendingRef::Call { pc, name } => {
                    let target = names.iter().position(|n| n == name).ok_or_else(|| {
                        err(m.decl_line, format!("call to undefined method '{name}'"))
                    })?;
                    m.code[*pc] = Op::Call(MethodId(target as u32));
                }
            }
        }
        let id = MethodId(i as u32);
        class.push_method(id);
        frozen.push(Method::new(
            id,
            ClassId(0),
            m.name.clone(),
            m.n_args,
            m.n_locals,
            m.returns_value,
            std::mem::take(&mut m.code),
        ));
    }

    Ok(Program::new(vec![class], frozen, statics, MethodId(0)))
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$')
}

fn parse_ty(tok: &str, line: usize) -> Result<Ty, AsmError> {
    match tok {
        "int" => Ok(Ty::Int),
        "float" => Ok(Ty::Float),
        "ref" => Ok(Ty::Ref),
        other => Err(AsmError {
            line,
            message: format!("unknown type '{other}' (want int|float|ref)"),
        }),
    }
}

fn parse_directive(
    directive: &str,
    operands: &[&str],
    line: usize,
    fields: &mut Vec<FieldDef>,
    statics: &mut Vec<StaticDef>,
    methods: &mut Vec<MethodInProgress>,
) -> Result<(), AsmError> {
    let err = |message: String| AsmError { line, message };
    match directive {
        "field" | "static" => {
            let [name, ty] = operands else {
                return Err(err(format!(".{directive} wants: name type")));
            };
            if !is_ident(name) {
                return Err(err(format!("bad name '{name}'")));
            }
            let ty = parse_ty(ty, line)?;
            if directive == "field" {
                if !methods.is_empty() {
                    return Err(err(".field must precede every .method".into()));
                }
                fields.push(FieldDef::new(*name, ty));
            } else {
                statics.push(StaticDef::new(*name, ty));
            }
            Ok(())
        }
        "method" => {
            let (sig, returns_value) = match operands {
                [name, a, l] => ((name, a, l), false),
                [name, a, l, "ret"] => ((name, a, l), true),
                _ => {
                    return Err(err(".method wants: name n_args n_locals [ret]".into()));
                }
            };
            let (name, a, l) = sig;
            if !is_ident(name) || methods.iter().any(|m| &m.name == name) {
                return Err(err(format!("bad or duplicate method name '{name}'")));
            }
            let n_args: u8 = a.parse().map_err(|_| err(format!("bad n_args '{a}'")))?;
            let n_locals: u8 = l.parse().map_err(|_| err(format!("bad n_locals '{l}'")))?;
            methods.push(MethodInProgress {
                name: (*name).to_owned(),
                n_args,
                n_locals,
                returns_value,
                decl_line: line,
                code: Vec::new(),
                labels: Vec::new(),
                pending: Vec::new(),
            });
            Ok(())
        }
        other => Err(err(format!("unknown directive '.{other}'"))),
    }
}

/// Parse one instruction. Branch/call operands that need later resolution
/// push a [`PendingRef`] and return a placeholder with target 0.
fn parse_instruction(
    head: &str,
    operands: &[&str],
    line: usize,
    pc: usize,
    fields: &[FieldDef],
    statics: &[StaticDef],
    m: &mut MethodInProgress,
) -> Result<Op, AsmError> {
    let err = |message: String| AsmError { line, message };
    let none = |op: Op| -> Result<Op, AsmError> {
        if operands.is_empty() {
            Ok(op)
        } else {
            Err(err(format!("'{head}' takes no operand")))
        }
    };
    let one = || -> Result<&str, AsmError> {
        match operands {
            [x] => Ok(x),
            _ => Err(err(format!("'{head}' wants exactly one operand"))),
        }
    };
    // `@N` raw numeric reference (branch target, method, class id).
    let raw = |tok: &str| tok.strip_prefix('@').and_then(|n| n.parse::<u32>().ok());

    match head {
        "const_i" => Ok(Op::ConstI(
            one()?
                .parse()
                .map_err(|_| err("const_i wants an integer".into()))?,
        )),
        "const_f" => Ok(Op::ConstF(
            one()?
                .parse()
                .map_err(|_| err("const_f wants a float".into()))?,
        )),
        "const_null" => none(Op::ConstNull),
        "dup" => none(Op::Dup),
        "pop" => none(Op::Pop),
        "swap" => none(Op::Swap),
        "load" | "store" => {
            let slot: u8 = one()?
                .parse()
                .map_err(|_| err(format!("'{head}' wants a local slot 0-255")))?;
            Ok(if head == "load" {
                Op::Load(slot)
            } else {
                Op::Store(slot)
            })
        }
        "add" => none(Op::Add),
        "sub" => none(Op::Sub),
        "mul" => none(Op::Mul),
        "div" => none(Op::Div),
        "rem" => none(Op::Rem),
        "neg" => none(Op::Neg),
        "shl" => none(Op::Shl),
        "shr" => none(Op::Shr),
        "and" => none(Op::And),
        "or" => none(Op::Or),
        "xor" => none(Op::Xor),
        "fadd" => none(Op::FAdd),
        "fsub" => none(Op::FSub),
        "fmul" => none(Op::FMul),
        "fdiv" => none(Op::FDiv),
        "fneg" => none(Op::FNeg),
        "math" => Ok(Op::Math(match one()? {
            "sqrt" => MathFn::Sqrt,
            "sin" => MathFn::Sin,
            "cos" => MathFn::Cos,
            "log" => MathFn::Log,
            "exp" => MathFn::Exp,
            other => return Err(err(format!("unknown math fn '{other}'"))),
        })),
        "i2f" => none(Op::I2F),
        "f2i" => none(Op::F2I),
        "lt" => none(Op::Lt),
        "le" => none(Op::Le),
        "gt" => none(Op::Gt),
        "ge" => none(Op::Ge),
        "eq" => none(Op::Eq),
        "ne" => none(Op::Ne),
        "is_null" => none(Op::IsNull),
        "jump" | "br_true" | "br_false" => {
            let tok = one()?;
            let target = match raw(tok) {
                Some(n) => n,
                None => {
                    if !is_ident(tok) {
                        return Err(err(format!("bad branch target '{tok}'")));
                    }
                    m.pending.push(PendingRef::Branch {
                        pc,
                        label: tok.to_owned(),
                    });
                    0
                }
            };
            Ok(match head {
                "jump" => Op::Jump(target),
                "br_true" => Op::BrTrue(target),
                _ => Op::BrFalse(target),
            })
        }
        "call" => {
            let tok = one()?;
            match raw(tok) {
                Some(n) => Ok(Op::Call(MethodId(n))),
                None => {
                    if !is_ident(tok) {
                        return Err(err(format!("bad call target '{tok}'")));
                    }
                    m.pending.push(PendingRef::Call {
                        pc,
                        name: tok.to_owned(),
                    });
                    Ok(Op::Call(MethodId(0)))
                }
            }
        }
        "ret" => none(Op::Ret),
        "ret_value" => none(Op::RetV),
        "new" => match operands {
            [] => Ok(Op::New(ClassId(0))),
            [tok] => match raw(tok) {
                Some(n) => Ok(Op::New(ClassId(n as u16))),
                None => Err(err(format!("bad class reference '{tok}' (want @N)"))),
            },
            _ => Err(err("'new' wants at most one operand".into())),
        },
        "get_field" | "put_field" | "get_static" | "put_static" => {
            let tok = one()?;
            let table: Vec<&str> = if head.ends_with("field") {
                fields.iter().map(FieldDef::name).collect()
            } else {
                statics.iter().map(StaticDef::name).collect()
            };
            let slot: u16 = if let Ok(n) = tok.parse::<u16>() {
                n
            } else {
                table
                    .iter()
                    .position(|n| *n == tok)
                    .map(|i| i as u16)
                    .ok_or_else(|| err(format!("'{head}' target '{tok}' is not declared")))?
            };
            Ok(match head {
                "get_field" => Op::GetField(slot),
                "put_field" => Op::PutField(slot),
                "get_static" => Op::GetStatic(slot),
                _ => Op::PutStatic(slot),
            })
        }
        "new_arr" => Ok(Op::NewArr(match one()? {
            "int" => ArrKind::Int,
            "float" => ArrKind::Float,
            "ref" => ArrKind::Ref,
            other => return Err(err(format!("unknown array kind '{other}'"))),
        })),
        "a_load" => none(Op::ALoad),
        "a_store" => none(Op::AStore),
        "arr_len" => none(Op::ArrLen),
        "nop" => none(Op::Nop),
        other => Err(err(format!("unknown mnemonic '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_a_loop_with_labels() {
        let p = assemble(
            "
            .static total int
            .method main 0 2 ret
                const_i 0
                store 0
            loop: load 0
                const_i 10
                lt
                br_false done
                load 0
                const_i 1
                add
                store 0
                jump loop
            done:
                load 0
                dup
                put_static total
                ret_value
            ",
        )
        .expect("assembles");
        assert_eq!(p.method_count(), 1);
        assert_eq!(p.statics().len(), 1);
        let code = p.method(MethodId(0)).code();
        assert_eq!(code[5], Op::BrFalse(11));
        assert_eq!(code[10], Op::Jump(2));
        assert_eq!(code[12], Op::Dup);
        assert_eq!(code[13], Op::PutStatic(0));
        // The assembled loop passes the structural verifier too.
        crate::verify_program(&p).expect("structurally valid");
    }

    #[test]
    fn resolves_calls_fields_and_forward_references() {
        let p = assemble(
            "
            .field next ref
            .method main 0 1 ret
                call helper      # forward reference
                ret_value
            .method helper 0 1 ret
                new
                dup
                get_field next
                pop
                ret_value
            ",
        )
        .expect("assembles");
        assert_eq!(p.method(MethodId(0)).code()[0], Op::Call(MethodId(1)));
        assert_eq!(p.method(MethodId(1)).code()[2], Op::GetField(0));
    }

    #[test]
    fn raw_targets_may_dangle() {
        // `@N` operands skip resolution entirely: this is how tests and
        // tenants hand the dataflow verifier garbage to reject.
        let p = assemble(".method main 0 0\n jump @99\n ret").expect("assembles");
        assert_eq!(p.method(MethodId(0)).code()[0], Op::Jump(99));
        assert!(crate::verify_program(&p).is_err(), "dangling target");
    }

    #[test]
    fn errors_carry_line_numbers() {
        for (src, needle) in [
            ("load 0", "before any .method"),
            (".method m 0 0\n frob", "unknown mnemonic"),
            (".method m 0 0\n jump nowhere\n ret", "undefined label"),
            (".method m 0 0\n call ghost\n ret", "undefined method"),
            (".method m 0 0\n get_static missing\n ret", "not declared"),
            (".method m 0 0\n l: nop\n l: nop", "duplicate label"),
            ("", "no .method"),
        ] {
            let e = assemble(src).expect_err(src);
            assert!(e.to_string().contains(needle), "{src}: {e}");
        }
    }
}
