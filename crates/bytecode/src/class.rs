//! Class metadata: fields, static slots, and the modeled class-file size
//! that drives class-loading cost in the runtime.

use serde::{Deserialize, Serialize};

use crate::{MethodId, Ty};

/// Index of a class within a [`Program`](crate::Program).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ClassId(pub u16);

impl std::fmt::Display for ClassId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// An instance field declaration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldDef {
    name: String,
    ty: Ty,
}

impl FieldDef {
    /// Create a field declaration.
    pub fn new(name: impl Into<String>, ty: Ty) -> Self {
        Self {
            name: name.into(),
            ty,
        }
    }

    /// Field name (for diagnostics and disassembly).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Field type.
    pub fn ty(&self) -> Ty {
        self.ty
    }
}

/// A global static slot declaration.
///
/// Statics live in a single program-wide table (as if every class's statics
/// were interned into one runtime area); reference-typed slots are garbage
/// collection roots.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticDef {
    name: String,
    ty: Ty,
}

impl StaticDef {
    /// Create a static slot declaration.
    pub fn new(name: impl Into<String>, ty: Ty) -> Self {
        Self {
            name: name.into(),
            ty,
        }
    }

    /// Slot name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Slot type.
    pub fn ty(&self) -> Ty {
        self.ty
    }
}

/// A loaded class definition.
///
/// The `system` flag models the split the paper draws between Jikes RVM
/// (system classes merged into the boot image, so loading them at runtime is
/// free) and Kaffe (every class, including system classes, is loaded lazily
/// at runtime — the reason the class loader dominates Kaffe's energy on the
/// PXA255 in the paper's Figure 11).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Class {
    id: ClassId,
    name: String,
    fields: Vec<FieldDef>,
    methods: Vec<MethodId>,
    system: bool,
    extra_classfile_bytes: u32,
}

/// Modeled bytes of class-file overhead per declared field (constant-pool
/// entries, attribute tables).
const CLASSFILE_BYTES_PER_FIELD: u32 = 24;
/// Modeled fixed class-file header/constant-pool overhead in bytes.
const CLASSFILE_HEADER_BYTES: u32 = 320;

impl Class {
    pub(crate) fn new(
        id: ClassId,
        name: String,
        fields: Vec<FieldDef>,
        system: bool,
        extra_classfile_bytes: u32,
    ) -> Self {
        Self {
            id,
            name,
            fields,
            methods: Vec::new(),
            system,
            extra_classfile_bytes,
        }
    }

    pub(crate) fn push_method(&mut self, m: MethodId) {
        self.methods.push(m);
    }

    /// The class's identity within its program.
    pub fn id(&self) -> ClassId {
        self.id
    }

    /// Class name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared instance fields, in layout order.
    pub fn fields(&self) -> &[FieldDef] {
        &self.fields
    }

    /// Number of instance fields.
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }

    /// Methods declared by this class.
    pub fn methods(&self) -> &[MethodId] {
        &self.methods
    }

    /// Whether this is a system (boot-image eligible) class.
    pub fn is_system(&self) -> bool {
        self.system
    }

    /// Modeled payload size in bytes of an instance (excluding the object
    /// header, which the heap adds).
    pub fn instance_payload_bytes(&self) -> u32 {
        self.fields.iter().map(|f| f.ty().size_bytes()).sum()
    }

    /// Modeled size of this class's class file in bytes, given the total
    /// encoded length of its method bodies.
    ///
    /// Class loading cost in the runtime is proportional to this value: the
    /// loader streams the file, builds runtime metadata and verifies each
    /// method body.
    pub fn classfile_bytes(&self, method_bytecode_bytes: u32) -> u32 {
        CLASSFILE_HEADER_BYTES
            + self.fields.len() as u32 * CLASSFILE_BYTES_PER_FIELD
            + self.extra_classfile_bytes
            + method_bytecode_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_size_counts_all_fields() {
        let c = Class::new(
            ClassId(0),
            "Pair".into(),
            vec![FieldDef::new("a", Ty::Int), FieldDef::new("b", Ty::Ref)],
            false,
            0,
        );
        assert_eq!(c.instance_payload_bytes(), 16);
        assert_eq!(c.field_count(), 2);
    }

    #[test]
    fn classfile_size_scales_with_fields_and_code() {
        let small = Class::new(ClassId(0), "A".into(), vec![], false, 0);
        let big = Class::new(
            ClassId(1),
            "B".into(),
            vec![FieldDef::new("x", Ty::Int); 10],
            false,
            512,
        );
        assert!(big.classfile_bytes(1000) > small.classfile_bytes(0));
        assert_eq!(small.classfile_bytes(0), 320);
    }

    #[test]
    fn system_flag_round_trips() {
        let c = Class::new(ClassId(3), "java/lang/String".into(), vec![], true, 0);
        assert!(c.is_system());
        assert_eq!(c.id(), ClassId(3));
        assert_eq!(format!("{}", c.id()), "C3");
    }
}
