//! Bytecode ISA and program model for the `vmprobe` managed runtime.
//!
//! This crate defines the *language substrate* of the reproduction: a compact
//! stack-machine bytecode in the spirit of JVM bytecode, along with the class
//! and method metadata that the class loader, compilers and garbage collectors
//! of the `vmprobe-vm` runtime operate on.
//!
//! The design intentionally mirrors the parts of the Java class-file model
//! that matter for the paper's characterization:
//!
//! * classes with instance fields, static slots and a modeled *class-file
//!   size* (drives class-loading cost),
//! * methods with a modeled *bytecode length* (drives baseline / optimizing /
//!   JIT compilation cost and code-cache footprint),
//! * a verifier pass (class loading in real JVMs verifies bytecode; we model
//!   both its safety function and its cost),
//! * reference-typed fields and arrays so that real object graphs exist for
//!   the garbage collectors to trace.
//!
//! # Example
//!
//! Build a program that sums the integers `0..10` and returns the total:
//!
//! ```
//! use vmprobe_bytecode::{ProgramBuilder, Ty};
//!
//! # fn main() -> Result<(), vmprobe_bytecode::VerifyError> {
//! let mut p = ProgramBuilder::new();
//! let main = p.function("main", 0, 2, |b| {
//!     b.const_i(0).store(0); // acc = 0
//!     b.for_range(1, 0, 10, |b| {
//!         b.load(0).load(1).add().store(0);
//!     });
//!     b.load(0).ret_value();
//! });
//! let program = p.finish(main)?;
//! assert_eq!(program.method(main).name(), "main");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
mod asm;
mod builder;
mod class;
mod disasm;
mod method;
mod opcode;
mod program;
mod verifier;

pub use asm::{assemble, AsmError};
pub use builder::{ClassBuilder, Label, MethodBuilder, ProgramBuilder};
pub use class::{Class, ClassId, FieldDef, StaticDef};
pub use disasm::disassemble;
pub use method::{Method, MethodId};
pub use opcode::{ArrKind, MathFn, Op, Ty};
pub use program::Program;
pub use verifier::{verify_method, verify_program, VerifyError};
