//! Structural bytecode verification — the *first tier* of the two-tier
//! verifier.
//!
//! Real JVM class loading verifies bytecode before execution; we model both
//! the function (catching malformed workload programs at build time) and —
//! in the runtime — its cost. This tier performs an abstract interpretation
//! of operand-stack *depth* over the control-flow graph and validates every
//! static index an instruction carries. It deliberately does not track
//! *types*: two paths meeting at a join with equal depths but incompatible
//! slot types pass here.
//!
//! The second tier lives in `vmprobe-analysis` (`verify_method` /
//! `verify_program`), which runs a worklist dataflow pass with a type
//! lattice per stack slot and local, and is merge-point-correct. That tier
//! *delegates to this one first* — structural errors (dangling branches,
//! bad indices, depth mismatches) are reported from here as the single
//! source of truth, and the dataflow pass only ever adds findings on top.
//! Callers wanting full verification (the VM class loader, the serve
//! daemon's admission check, `vmprobe-analyze`) go through
//! `vmprobe_analysis`; this module alone is the cheap build-time screen.

use std::error::Error;
use std::fmt;

use crate::{Method, MethodId, Op, Program};

/// Why a method failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A branch target is outside the method body.
    BranchOutOfRange {
        /// Offending method.
        method: MethodId,
        /// Instruction index of the branch.
        pc: u32,
        /// The out-of-range target.
        target: u32,
    },
    /// A `Load`/`Store` refers to a local slot beyond the frame size.
    LocalOutOfRange {
        /// Offending method.
        method: MethodId,
        /// Instruction index.
        pc: u32,
        /// Referenced local slot.
        local: u8,
        /// Declared frame size.
        n_locals: u8,
    },
    /// An instruction pops more values than the stack holds on some path.
    StackUnderflow {
        /// Offending method.
        method: MethodId,
        /// Instruction index.
        pc: u32,
    },
    /// Two paths reach the same instruction with different stack depths.
    StackDepthMismatch {
        /// Offending method.
        method: MethodId,
        /// Join-point instruction index.
        pc: u32,
        /// Depth recorded first.
        expected: usize,
        /// Conflicting depth.
        found: usize,
    },
    /// Execution can run past the last instruction.
    FallsOffEnd {
        /// Offending method.
        method: MethodId,
    },
    /// Method body is empty.
    EmptyBody {
        /// Offending method.
        method: MethodId,
    },
    /// Mixes `Ret` and `RetV`, or a value-returning method uses bare `Ret`.
    InconsistentReturn {
        /// Offending method.
        method: MethodId,
        /// Instruction index of the offending return.
        pc: u32,
    },
    /// `Call` refers to a method id not present in the program.
    UnknownMethod {
        /// Offending method.
        method: MethodId,
        /// Instruction index.
        pc: u32,
    },
    /// `New` refers to a class id not present in the program.
    UnknownClass {
        /// Offending method.
        method: MethodId,
        /// Instruction index.
        pc: u32,
    },
    /// `GetStatic`/`PutStatic` refers to a slot that was never declared.
    UnknownStatic {
        /// Offending method.
        method: MethodId,
        /// Instruction index.
        pc: u32,
        /// Referenced slot.
        slot: u16,
    },
    /// A declared method was never given a body.
    UndefinedMethod {
        /// The method that has no body.
        method: MethodId,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::BranchOutOfRange { method, pc, target } => {
                write!(f, "branch target {target} out of range at {method}:{pc}")
            }
            VerifyError::LocalOutOfRange {
                method,
                pc,
                local,
                n_locals,
            } => write!(
                f,
                "local {local} out of range (frame has {n_locals}) at {method}:{pc}"
            ),
            VerifyError::StackUnderflow { method, pc } => {
                write!(f, "operand stack underflow at {method}:{pc}")
            }
            VerifyError::StackDepthMismatch {
                method,
                pc,
                expected,
                found,
            } => write!(
                f,
                "stack depth mismatch at join {method}:{pc} (expected {expected}, found {found})"
            ),
            VerifyError::FallsOffEnd { method } => {
                write!(f, "control flow falls off the end of {method}")
            }
            VerifyError::EmptyBody { method } => write!(f, "empty method body in {method}"),
            VerifyError::InconsistentReturn { method, pc } => {
                write!(f, "inconsistent return kind at {method}:{pc}")
            }
            VerifyError::UnknownMethod { method, pc } => {
                write!(f, "call to unknown method at {method}:{pc}")
            }
            VerifyError::UnknownClass { method, pc } => {
                write!(f, "new of unknown class at {method}:{pc}")
            }
            VerifyError::UnknownStatic { method, pc, slot } => {
                write!(f, "unknown static slot {slot} at {method}:{pc}")
            }
            VerifyError::UndefinedMethod { method } => {
                write!(f, "method {method} declared but never defined")
            }
        }
    }
}

impl Error for VerifyError {}

/// Verify a single method against its program.
///
/// # Errors
///
/// See [`VerifyError`] for every condition checked.
pub fn verify_method(program: &Program, method: &Method) -> Result<(), VerifyError> {
    let id = method.id();
    let code = method.code();
    if code.is_empty() {
        return Err(VerifyError::EmptyBody { method: id });
    }

    // Per-instruction stack depth, None = not yet visited.
    let mut depth_at: Vec<Option<usize>> = vec![None; code.len()];
    let mut worklist: Vec<(u32, usize)> = vec![(0, 0)];

    while let Some((pc, depth)) = worklist.pop() {
        let idx = pc as usize;
        match depth_at[idx] {
            Some(d) if d == depth => continue,
            Some(d) => {
                return Err(VerifyError::StackDepthMismatch {
                    method: id,
                    pc,
                    expected: d,
                    found: depth,
                })
            }
            None => depth_at[idx] = Some(depth),
        }

        let op = &code[idx];
        // Static index validation.
        match op {
            Op::Load(n) | Op::Store(n) if *n >= method.n_locals() => {
                return Err(VerifyError::LocalOutOfRange {
                    method: id,
                    pc,
                    local: *n,
                    n_locals: method.n_locals(),
                });
            }
            Op::Call(m) if m.0 as usize >= program.methods().len() => {
                return Err(VerifyError::UnknownMethod { method: id, pc });
            }
            Op::New(c) if c.0 as usize >= program.classes().len() => {
                return Err(VerifyError::UnknownClass { method: id, pc });
            }
            Op::GetStatic(s) | Op::PutStatic(s) if *s as usize >= program.statics().len() => {
                return Err(VerifyError::UnknownStatic {
                    method: id,
                    pc,
                    slot: *s,
                });
            }
            Op::Ret if method.returns_value() => {
                return Err(VerifyError::InconsistentReturn { method: id, pc });
            }
            Op::RetV if !method.returns_value() => {
                return Err(VerifyError::InconsistentReturn { method: id, pc });
            }
            _ => {}
        }

        // Stack effect.
        let (pops, pushes) = match op {
            Op::Call(m) => {
                let callee = program.method(*m);
                (
                    callee.n_args() as usize,
                    usize::from(callee.returns_value()),
                )
            }
            _ => (op.pops(), op.pushes()),
        };
        if pops > depth {
            return Err(VerifyError::StackUnderflow { method: id, pc });
        }
        let next_depth = depth - pops + pushes;

        // Successors.
        if let Some(target) = op.branch_target() {
            if target as usize >= code.len() {
                return Err(VerifyError::BranchOutOfRange {
                    method: id,
                    pc,
                    target,
                });
            }
            worklist.push((target, next_depth));
        }
        if !op.is_terminator() {
            if idx + 1 >= code.len() {
                return Err(VerifyError::FallsOffEnd { method: id });
            }
            worklist.push((pc + 1, next_depth));
        }
    }

    Ok(())
}

/// Verify every method in a program.
///
/// # Errors
///
/// Returns the first [`VerifyError`] encountered, in method-id order.
pub fn verify_program(program: &Program) -> Result<(), VerifyError> {
    for m in program.methods() {
        verify_method(program, m)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProgramBuilder, Ty};

    fn single(f: impl FnOnce(&mut crate::MethodBuilder)) -> Result<Program, VerifyError> {
        let mut p = ProgramBuilder::new();
        let m = p.function("t", 1, 1, f);
        p.finish(m)
    }

    #[test]
    fn accepts_straightline_code() {
        assert!(single(|b| {
            b.load(0).const_i(2).mul().ret_value();
        })
        .is_ok());
    }

    #[test]
    fn rejects_underflow() {
        assert!(matches!(
            single(|b| {
                b.add().ret();
            }),
            Err(VerifyError::StackUnderflow { .. })
        ));
    }

    #[test]
    fn rejects_local_out_of_range() {
        assert!(matches!(
            single(|b| {
                b.load(9).ret();
            }),
            Err(VerifyError::LocalOutOfRange { .. })
        ));
    }

    #[test]
    fn rejects_fall_off_end() {
        assert!(matches!(
            single(|b| {
                b.const_i(1).pop();
            }),
            Err(VerifyError::FallsOffEnd { .. })
        ));
    }

    #[test]
    fn rejects_depth_mismatch_at_join() {
        // One arm leaves an extra value on the stack.
        assert!(matches!(
            single(|b| {
                let els = b.label();
                let end = b.label();
                b.load(0).br_false(els);
                b.const_i(1).const_i(2);
                b.jump(end);
                b.bind(els);
                b.const_i(1);
                b.bind(end);
                b.pop().ret();
            }),
            Err(VerifyError::StackDepthMismatch { .. })
        ));
    }

    #[test]
    fn rejects_unknown_static() {
        assert!(matches!(
            single(|b| {
                b.get_static(3).pop().ret();
            }),
            Err(VerifyError::UnknownStatic { slot: 3, .. })
        ));
    }

    #[test]
    fn accepts_known_static() {
        let mut p = ProgramBuilder::new();
        let s = p.static_slot("counter", Ty::Int);
        let m = p.function("t", 0, 0, |b| {
            b.get_static(s).const_i(1).add().put_static(s).ret();
        });
        assert!(p.finish(m).is_ok());
    }

    #[test]
    fn rejects_empty_body() {
        assert!(matches!(single(|_| {}), Err(VerifyError::EmptyBody { .. })));
    }

    #[test]
    fn call_stack_effect_uses_callee_signature() {
        let mut p = ProgramBuilder::new();
        let cls = p.class("C").build();
        let callee = p.method(cls, "twice", 1, 0, |b| {
            b.load(0).const_i(2).mul().ret_value();
        });
        let main = p.method(cls, "main", 0, 0, |b| {
            b.const_i(21).call(callee).ret_value();
        });
        assert!(p.finish(main).is_ok());
    }

    #[test]
    fn error_messages_are_nonempty_and_lowercase_ish() {
        let e = VerifyError::EmptyBody {
            method: MethodId(7),
        };
        let msg = format!("{e}");
        assert!(msg.contains("M7"));
        assert!(!msg.is_empty());
    }
}
