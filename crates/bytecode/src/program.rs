//! A complete verified program: classes, methods, statics and an entry point.

use serde::{Deserialize, Serialize};

use crate::{Class, ClassId, Method, MethodId, Op, StaticDef};

/// An immutable, verified program ready for execution by the runtime.
///
/// Produced by [`ProgramBuilder::finish`](crate::ProgramBuilder::finish),
/// which runs the verifier over every method. Indexing by [`ClassId`] /
/// [`MethodId`] is infallible for ids minted by the same builder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    classes: Vec<Class>,
    methods: Vec<Method>,
    statics: Vec<StaticDef>,
    entry: MethodId,
}

impl Program {
    pub(crate) fn new(
        classes: Vec<Class>,
        methods: Vec<Method>,
        statics: Vec<StaticDef>,
        entry: MethodId,
    ) -> Self {
        Self {
            classes,
            methods,
            statics,
            entry,
        }
    }

    /// All classes, indexable by [`ClassId`].
    pub fn classes(&self) -> &[Class] {
        &self.classes
    }

    /// All methods, indexable by [`MethodId`].
    pub fn methods(&self) -> &[Method] {
        &self.methods
    }

    /// Global static slots.
    pub fn statics(&self) -> &[StaticDef] {
        &self.statics
    }

    /// The method where execution starts.
    pub fn entry(&self) -> MethodId {
        self.entry
    }

    /// Look up a class.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not minted for this program.
    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id.0 as usize]
    }

    /// Look up a method.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not minted for this program.
    pub fn method(&self, id: MethodId) -> &Method {
        &self.methods[id.0 as usize]
    }

    /// Total encoded bytecode bytes of the methods declared by `class`.
    pub fn class_method_bytes(&self, id: ClassId) -> u32 {
        self.class(id)
            .methods()
            .iter()
            .map(|&m| self.method(m).bytecode_bytes())
            .sum()
    }

    /// Modeled class-file size of `class` in bytes (metadata plus method
    /// bodies); the runtime's class loader charges cost proportional to this.
    pub fn classfile_bytes(&self, id: ClassId) -> u32 {
        self.class(id).classfile_bytes(self.class_method_bytes(id))
    }

    /// Sum of all class-file sizes — the modeled on-disk footprint of the
    /// application, reported by workload inventories.
    pub fn total_classfile_bytes(&self) -> u64 {
        (0..self.classes.len() as u16)
            .map(|i| u64::from(self.classfile_bytes(ClassId(i))))
            .sum()
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of methods.
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }

    /// Return a copy of this program with `method`'s body replaced by
    /// `code`, **bypassing all verification**.
    ///
    /// The result may be structurally invalid (dangling branch targets,
    /// unbalanced stacks, out-of-range ids); the modeled bytecode length
    /// is recomputed but nothing is checked. This exists for verifier
    /// and fault-injection testing — mutating a known-good program into
    /// a corrupt one that the verifiers must reject without panicking.
    /// Never feed an unverified program to the runtime.
    ///
    /// # Panics
    ///
    /// Panics if `method` was not minted for this program.
    pub fn with_method_code(&self, method: MethodId, code: Vec<Op>) -> Self {
        let mut p = self.clone();
        let m = &p.methods[method.0 as usize];
        p.methods[method.0 as usize] = Method::new(
            m.id(),
            m.class(),
            m.name().to_owned(),
            m.n_args(),
            m.n_locals(),
            m.returns_value(),
            code,
        );
        p
    }
}

#[cfg(test)]
mod tests {
    use crate::{ProgramBuilder, Ty};

    #[test]
    fn program_accessors() {
        let mut p = ProgramBuilder::new();
        let cls = p
            .class("Node")
            .field("next", Ty::Ref)
            .field("val", Ty::Int)
            .build();
        let s = p.static_slot("root", Ty::Ref);
        let main = p.method(cls, "main", 0, 1, |b| {
            b.new_obj(cls).store(0);
            b.load(0).put_static(s);
            b.get_static(s).ret_value();
        });
        let prog = p.finish(main).expect("verifies");
        assert_eq!(prog.class_count(), 1);
        assert_eq!(prog.method_count(), 1);
        assert_eq!(prog.entry(), main);
        assert_eq!(prog.statics().len(), 1);
        assert!(prog.classfile_bytes(cls) > 320);
        assert!(prog.total_classfile_bytes() >= u64::from(prog.classfile_bytes(cls)));
        assert_eq!(prog.class(cls).name(), "Node");
    }
}
