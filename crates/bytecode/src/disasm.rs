//! Human-readable disassembly of method bodies, for debugging workloads and
//! inspecting what the runtime executes.

use std::fmt::Write as _;

use crate::{MethodId, Op, Program};

/// Render `method` as a listing with one instruction per line.
///
/// Branch targets are shown as absolute instruction indices; `Call`, `New`
/// and static accesses are resolved to names where the program knows them.
///
/// # Example
///
/// ```
/// use vmprobe_bytecode::{disassemble, ProgramBuilder};
///
/// # fn main() -> Result<(), vmprobe_bytecode::VerifyError> {
/// let mut p = ProgramBuilder::new();
/// let m = p.function("answer", 0, 0, |b| {
///     b.const_i(42).ret_value();
/// });
/// let prog = p.finish(m)?;
/// let listing = disassemble(&prog, m);
/// assert!(listing.contains("const_i 42"));
/// # Ok(())
/// # }
/// ```
///
/// # Panics
///
/// Panics if `id` was not minted for `program`.
pub fn disassemble(program: &Program, id: MethodId) -> String {
    let method = program.method(id);
    let cls = program.class(method.class());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "method {}::{} (args={}, locals={}, {}):",
        cls.name(),
        method.name(),
        method.n_args(),
        method.n_locals(),
        if method.returns_value() {
            "returns value"
        } else {
            "void"
        }
    );
    for (pc, op) in method.code().iter().enumerate() {
        let _ = write!(out, "  {pc:4}: ");
        let line = match op {
            Op::ConstI(v) => format!("const_i {v}"),
            Op::ConstF(v) => format!("const_f {v}"),
            Op::ConstNull => "const_null".into(),
            Op::Dup => "dup".into(),
            Op::Pop => "pop".into(),
            Op::Swap => "swap".into(),
            Op::Load(n) => format!("load {n}"),
            Op::Store(n) => format!("store {n}"),
            Op::Add => "iadd".into(),
            Op::Sub => "isub".into(),
            Op::Mul => "imul".into(),
            Op::Div => "idiv".into(),
            Op::Rem => "irem".into(),
            Op::Neg => "ineg".into(),
            Op::Shl => "ishl".into(),
            Op::Shr => "ishr".into(),
            Op::And => "iand".into(),
            Op::Or => "ior".into(),
            Op::Xor => "ixor".into(),
            Op::FAdd => "fadd".into(),
            Op::FSub => "fsub".into(),
            Op::FMul => "fmul".into(),
            Op::FDiv => "fdiv".into(),
            Op::FNeg => "fneg".into(),
            Op::Math(m) => format!("math {m:?}").to_lowercase(),
            Op::I2F => "i2f".into(),
            Op::F2I => "f2i".into(),
            Op::Lt => "lt".into(),
            Op::Le => "le".into(),
            Op::Gt => "gt".into(),
            Op::Ge => "ge".into(),
            Op::Eq => "eq".into(),
            Op::Ne => "ne".into(),
            Op::IsNull => "is_null".into(),
            Op::Jump(t) => format!("jump -> {t}"),
            Op::BrTrue(t) => format!("br_true -> {t}"),
            Op::BrFalse(t) => format!("br_false -> {t}"),
            Op::Call(m) => {
                let callee = program.method(*m);
                format!(
                    "call {}::{} ({} args)",
                    program.class(callee.class()).name(),
                    callee.name(),
                    callee.n_args()
                )
            }
            Op::Ret => "ret".into(),
            Op::RetV => "ret_value".into(),
            Op::New(c) => format!("new {}", program.class(*c).name()),
            Op::GetField(n) => format!("get_field {n}"),
            Op::PutField(n) => format!("put_field {n}"),
            Op::GetStatic(s) => {
                format!(
                    "get_static {} ({})",
                    s,
                    program.statics()[*s as usize].name()
                )
            }
            Op::PutStatic(s) => {
                format!(
                    "put_static {} ({})",
                    s,
                    program.statics()[*s as usize].name()
                )
            }
            Op::NewArr(k) => format!("new_arr {k:?}").to_lowercase(),
            Op::ALoad => "aload".into(),
            Op::AStore => "astore".into(),
            Op::ArrLen => "arr_len".into(),
            Op::Nop => "nop".into(),
        };
        let _ = writeln!(out, "{line}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProgramBuilder, Ty};

    #[test]
    fn listing_resolves_names() {
        let mut p = ProgramBuilder::new();
        let cls = p.class("List").field("head", Ty::Ref).build();
        let s = p.static_slot("the_list", Ty::Ref);
        let helper = p.method(cls, "make", 0, 0, |b| {
            b.new_obj(cls).ret_value();
        });
        let main = p.method(cls, "main", 0, 0, |b| {
            b.call(helper).put_static(s).ret();
        });
        let prog = p.finish(main).unwrap();
        let listing = disassemble(&prog, main);
        assert!(listing.contains("call List::make"));
        assert!(listing.contains("put_static 0 (the_list)"));
        let helper_listing = disassemble(&prog, helper);
        assert!(helper_listing.contains("new List"));
    }

    #[test]
    fn listing_covers_every_pc() {
        let mut p = ProgramBuilder::new();
        let m = p.function("loop", 0, 1, |b| {
            b.for_range(0, 0, 3, |b| {
                b.nop();
            });
            b.ret();
        });
        let prog = p.finish(m).unwrap();
        let listing = disassemble(&prog, m);
        let lines = listing.lines().count();
        assert_eq!(lines, prog.method(m).code().len() + 1);
    }
}
