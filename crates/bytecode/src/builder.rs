//! Fluent assembler DSL for constructing programs.
//!
//! Workload benchmarks (see the `vmprobe-workloads` crate) are written
//! against this builder: classes with fields, methods with structured
//! control flow, and global static slots that act as GC roots.

use crate::verifier::verify_program;
use crate::{
    ArrKind, Class, ClassId, MathFn, Method, MethodId, Op, Program, StaticDef, Ty, VerifyError,
};

/// A forward-referenceable jump target inside a [`MethodBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// Incrementally builds a [`Program`].
///
/// # Example
///
/// ```
/// use vmprobe_bytecode::{ProgramBuilder, Ty};
///
/// # fn main() -> Result<(), vmprobe_bytecode::VerifyError> {
/// let mut p = ProgramBuilder::new();
/// let node = p.class("Node").field("next", Ty::Ref).build();
/// let main = p.method(node, "main", 0, 1, |b| {
///     b.new_obj(node).store(0);
///     b.ret();
/// });
/// let program = p.finish(main)?;
/// assert_eq!(program.class_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    classes: Vec<Class>,
    methods: Vec<Option<Method>>,
    method_sigs: Vec<(ClassId, String, u8, u8, bool)>,
    statics: Vec<StaticDef>,
    kernel_class: Option<ClassId>,
}

impl ProgramBuilder {
    /// Create an empty program builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start building a class. Finish with [`ClassBuilder::build`].
    pub fn class(&mut self, name: impl Into<String>) -> ClassBuilder<'_> {
        ClassBuilder {
            pb: self,
            name: name.into(),
            fields: Vec::new(),
            system: false,
            extra_classfile_bytes: 0,
        }
    }

    /// Declare a global static slot, returning its index for
    /// [`MethodBuilder::get_static`] / [`MethodBuilder::put_static`].
    pub fn static_slot(&mut self, name: impl Into<String>, ty: Ty) -> u16 {
        let idx = self.statics.len();
        assert!(idx <= u16::MAX as usize, "too many static slots");
        self.statics.push(StaticDef::new(name, ty));
        idx as u16
    }

    /// Declare a method without defining its body yet, enabling forward
    /// references (mutual recursion). `returns_value` must be stated up
    /// front because callers need the signature.
    ///
    /// Define the body later with [`ProgramBuilder::define`].
    pub fn declare(
        &mut self,
        class: ClassId,
        name: impl Into<String>,
        n_args: u8,
        extra_locals: u8,
        returns_value: bool,
    ) -> MethodId {
        let id = MethodId(self.methods.len() as u32);
        self.methods.push(None);
        self.method_sigs.push((
            class,
            name.into(),
            n_args,
            n_args.saturating_add(extra_locals),
            returns_value,
        ));
        self.classes[class.0 as usize].push_method(id);
        id
    }

    /// Define the body of a previously [`declare`](Self::declare)d method.
    ///
    /// # Panics
    ///
    /// Panics if the method is already defined or uses an unbound label.
    pub fn define(&mut self, id: MethodId, f: impl FnOnce(&mut MethodBuilder)) {
        assert!(
            self.methods[id.0 as usize].is_none(),
            "method {id} defined twice"
        );
        let (class, name, n_args, n_locals, declared_returns) =
            self.method_sigs[id.0 as usize].clone();
        let mut mb = MethodBuilder::new();
        f(&mut mb);
        let code = mb.into_code();
        let returns_value = code.iter().any(|op| matches!(op, Op::RetV));
        // A declared-void method must not use RetV; the verifier reports the
        // reverse direction (declared value, only Ret) as InconsistentReturn.
        let returns_value = declared_returns || returns_value;
        self.methods[id.0 as usize] = Some(Method::new(
            id,
            class,
            name,
            n_args,
            n_locals,
            returns_value,
            code,
        ));
    }

    /// Declare and define a method in one step. Whether it returns a value is
    /// inferred from the presence of [`MethodBuilder::ret_value`] in the body.
    pub fn method(
        &mut self,
        class: ClassId,
        name: impl Into<String>,
        n_args: u8,
        extra_locals: u8,
        f: impl FnOnce(&mut MethodBuilder),
    ) -> MethodId {
        let id = self.declare(class, name, n_args, extra_locals, false);
        self.define(id, f);
        id
    }

    /// Declare and define a free function on an implicit `Kernel` class.
    ///
    /// Convenient for compute kernels that belong to no particular data
    /// class.
    pub fn function(
        &mut self,
        name: impl Into<String>,
        n_args: u8,
        extra_locals: u8,
        f: impl FnOnce(&mut MethodBuilder),
    ) -> MethodId {
        let cls = match self.kernel_class {
            Some(c) => c,
            None => {
                let c = self.class("Kernel").build();
                self.kernel_class = Some(c);
                c
            }
        };
        self.method(cls, name, n_args, extra_locals, f)
    }

    /// Number of methods declared so far.
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }

    /// Number of classes declared so far.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Verify every method and seal the program.
    ///
    /// # Errors
    ///
    /// Returns the first [`VerifyError`] found: out-of-range branch targets
    /// or locals, operand-stack underflow or join-depth mismatch, undefined
    /// methods, falling off the end of a body, or inconsistent returns.
    pub fn finish(self, entry: MethodId) -> Result<Program, VerifyError> {
        let mut methods = Vec::with_capacity(self.methods.len());
        for (i, m) in self.methods.into_iter().enumerate() {
            match m {
                Some(m) => methods.push(m),
                None => {
                    return Err(VerifyError::UndefinedMethod {
                        method: MethodId(i as u32),
                    })
                }
            }
        }
        let program = Program::new(self.classes, methods, self.statics, entry);
        verify_program(&program)?;
        Ok(program)
    }
}

/// Builds one class; created by [`ProgramBuilder::class`].
#[derive(Debug)]
pub struct ClassBuilder<'a> {
    pb: &'a mut ProgramBuilder,
    name: String,
    fields: Vec<crate::FieldDef>,
    system: bool,
    extra_classfile_bytes: u32,
}

impl ClassBuilder<'_> {
    /// Append an instance field; returns `self` for chaining. Field indices
    /// are assigned in declaration order, starting at 0.
    pub fn field(mut self, name: impl Into<String>, ty: Ty) -> Self {
        self.fields.push(crate::FieldDef::new(name, ty));
        self
    }

    /// Mark the class as a system class (boot-image eligible under a
    /// Jikes-style VM personality).
    pub fn system(mut self, system: bool) -> Self {
        self.system = system;
        self
    }

    /// Add modeled class-file payload bytes beyond fields and code (constant
    /// data, resources); inflates class-loading cost.
    pub fn classfile_padding(mut self, bytes: u32) -> Self {
        self.extra_classfile_bytes = bytes;
        self
    }

    /// Finalize the class and mint its [`ClassId`].
    pub fn build(self) -> ClassId {
        let id = ClassId(self.pb.classes.len() as u16);
        self.pb.classes.push(Class::new(
            id,
            self.name,
            self.fields,
            self.system,
            self.extra_classfile_bytes,
        ));
        id
    }
}

/// Emits the bytecode body of a single method.
///
/// All emit methods return `&mut Self` so instruction sequences chain.
/// Control flow uses [`Label`]s (forward references are patched when the
/// builder is consumed) or the structured helpers [`MethodBuilder::for_range`]
/// and [`MethodBuilder::loop_while`].
#[derive(Debug, Default)]
pub struct MethodBuilder {
    code: Vec<Op>,
    labels: Vec<Option<u32>>,
    fixups: Vec<(usize, Label)>,
}

impl MethodBuilder {
    fn new() -> Self {
        Self::default()
    }

    fn emit(&mut self, op: Op) -> &mut Self {
        self.code.push(op);
        self
    }

    /// Current code index (the pc the next emitted instruction will have).
    pub fn here(&self) -> u32 {
        self.code.len() as u32
    }

    /// Mint a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind `l` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if `l` is already bound.
    pub fn bind(&mut self, l: Label) -> &mut Self {
        assert!(self.labels[l.0].is_none(), "label bound twice");
        self.labels[l.0] = Some(self.here());
        self
    }

    // ---- constants & stack ----

    /// Push an integer constant.
    pub fn const_i(&mut self, v: i64) -> &mut Self {
        self.emit(Op::ConstI(v))
    }
    /// Push a float constant.
    pub fn const_f(&mut self, v: f64) -> &mut Self {
        self.emit(Op::ConstF(v))
    }
    /// Push null.
    pub fn null(&mut self) -> &mut Self {
        self.emit(Op::ConstNull)
    }
    /// Duplicate top of stack.
    pub fn dup(&mut self) -> &mut Self {
        self.emit(Op::Dup)
    }
    /// Pop and discard top of stack.
    pub fn pop(&mut self) -> &mut Self {
        self.emit(Op::Pop)
    }
    /// Swap the two top stack values.
    pub fn swap(&mut self) -> &mut Self {
        self.emit(Op::Swap)
    }
    /// Push local `n`.
    pub fn load(&mut self, n: u8) -> &mut Self {
        self.emit(Op::Load(n))
    }
    /// Pop into local `n`.
    pub fn store(&mut self, n: u8) -> &mut Self {
        self.emit(Op::Store(n))
    }

    // ---- integer ALU ----

    /// Integer add.
    pub fn add(&mut self) -> &mut Self {
        self.emit(Op::Add)
    }
    /// Integer subtract.
    pub fn sub(&mut self) -> &mut Self {
        self.emit(Op::Sub)
    }
    /// Integer multiply.
    pub fn mul(&mut self) -> &mut Self {
        self.emit(Op::Mul)
    }
    /// Integer divide.
    pub fn div(&mut self) -> &mut Self {
        self.emit(Op::Div)
    }
    /// Integer remainder.
    pub fn rem(&mut self) -> &mut Self {
        self.emit(Op::Rem)
    }
    /// Integer negate.
    pub fn neg(&mut self) -> &mut Self {
        self.emit(Op::Neg)
    }
    /// Shift left.
    pub fn shl(&mut self) -> &mut Self {
        self.emit(Op::Shl)
    }
    /// Arithmetic shift right.
    pub fn shr(&mut self) -> &mut Self {
        self.emit(Op::Shr)
    }
    /// Bitwise and.
    pub fn band(&mut self) -> &mut Self {
        self.emit(Op::And)
    }
    /// Bitwise or.
    pub fn bor(&mut self) -> &mut Self {
        self.emit(Op::Or)
    }
    /// Bitwise xor.
    pub fn bxor(&mut self) -> &mut Self {
        self.emit(Op::Xor)
    }

    // ---- float ALU ----

    /// Float add.
    pub fn fadd(&mut self) -> &mut Self {
        self.emit(Op::FAdd)
    }
    /// Float subtract.
    pub fn fsub(&mut self) -> &mut Self {
        self.emit(Op::FSub)
    }
    /// Float multiply.
    pub fn fmul(&mut self) -> &mut Self {
        self.emit(Op::FMul)
    }
    /// Float divide.
    pub fn fdiv(&mut self) -> &mut Self {
        self.emit(Op::FDiv)
    }
    /// Float negate.
    pub fn fneg(&mut self) -> &mut Self {
        self.emit(Op::FNeg)
    }
    /// Long-latency math intrinsic.
    pub fn math(&mut self, f: MathFn) -> &mut Self {
        self.emit(Op::Math(f))
    }
    /// Integer-to-float conversion.
    pub fn i2f(&mut self) -> &mut Self {
        self.emit(Op::I2F)
    }
    /// Float-to-integer conversion.
    pub fn f2i(&mut self) -> &mut Self {
        self.emit(Op::F2I)
    }

    // ---- comparisons ----

    /// Less-than.
    pub fn lt(&mut self) -> &mut Self {
        self.emit(Op::Lt)
    }
    /// Less-or-equal.
    pub fn le(&mut self) -> &mut Self {
        self.emit(Op::Le)
    }
    /// Greater-than.
    pub fn gt(&mut self) -> &mut Self {
        self.emit(Op::Gt)
    }
    /// Greater-or-equal.
    pub fn ge(&mut self) -> &mut Self {
        self.emit(Op::Ge)
    }
    /// Equality.
    pub fn eq(&mut self) -> &mut Self {
        self.emit(Op::Eq)
    }
    /// Inequality.
    pub fn ne(&mut self) -> &mut Self {
        self.emit(Op::Ne)
    }
    /// Null test.
    pub fn is_null(&mut self) -> &mut Self {
        self.emit(Op::IsNull)
    }

    // ---- control flow ----

    /// Unconditional jump to `l`.
    pub fn jump(&mut self, l: Label) -> &mut Self {
        self.fixups.push((self.code.len(), l));
        self.emit(Op::Jump(u32::MAX))
    }
    /// Pop an int; branch to `l` if non-zero.
    pub fn br_true(&mut self, l: Label) -> &mut Self {
        self.fixups.push((self.code.len(), l));
        self.emit(Op::BrTrue(u32::MAX))
    }
    /// Pop an int; branch to `l` if zero.
    pub fn br_false(&mut self, l: Label) -> &mut Self {
        self.fixups.push((self.code.len(), l));
        self.emit(Op::BrFalse(u32::MAX))
    }
    /// Call a method (arguments already on the stack, last on top).
    pub fn call(&mut self, m: MethodId) -> &mut Self {
        self.emit(Op::Call(m))
    }
    /// Return void.
    pub fn ret(&mut self) -> &mut Self {
        self.emit(Op::Ret)
    }
    /// Return the top of stack.
    pub fn ret_value(&mut self) -> &mut Self {
        self.emit(Op::RetV)
    }

    // ---- objects & arrays ----

    /// Allocate an instance and push its reference.
    pub fn new_obj(&mut self, c: ClassId) -> &mut Self {
        self.emit(Op::New(c))
    }
    /// Read instance field `n` of the object on the stack.
    pub fn get_field(&mut self, n: u16) -> &mut Self {
        self.emit(Op::GetField(n))
    }
    /// Write instance field `n` (stack: `obj`, `value`).
    pub fn put_field(&mut self, n: u16) -> &mut Self {
        self.emit(Op::PutField(n))
    }
    /// Read global static slot `n`.
    pub fn get_static(&mut self, n: u16) -> &mut Self {
        self.emit(Op::GetStatic(n))
    }
    /// Write global static slot `n`.
    pub fn put_static(&mut self, n: u16) -> &mut Self {
        self.emit(Op::PutStatic(n))
    }
    /// Allocate an array (length on the stack) and push its reference.
    pub fn new_arr(&mut self, k: ArrKind) -> &mut Self {
        self.emit(Op::NewArr(k))
    }
    /// Load an array element (stack: `arr`, `index`).
    pub fn aload(&mut self) -> &mut Self {
        self.emit(Op::ALoad)
    }
    /// Store an array element (stack: `arr`, `index`, `value`).
    pub fn astore(&mut self) -> &mut Self {
        self.emit(Op::AStore)
    }
    /// Push the length of the array on the stack.
    pub fn arr_len(&mut self) -> &mut Self {
        self.emit(Op::ArrLen)
    }
    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Op::Nop)
    }

    // ---- structured helpers ----

    /// Emit a counted loop: `for local in from..to { body }`.
    ///
    /// The loop variable lives in local slot `local` and is visible to the
    /// body (the body must not clobber it unless it intends to).
    pub fn for_range(
        &mut self,
        local: u8,
        from: i64,
        to: i64,
        body: impl FnOnce(&mut MethodBuilder),
    ) -> &mut Self {
        self.const_i(from).store(local);
        let head = self.label();
        let exit = self.label();
        self.bind(head);
        self.load(local).const_i(to).lt().br_false(exit);
        body(self);
        self.load(local).const_i(1).add().store(local);
        self.jump(head);
        self.bind(exit);
        self
    }

    /// Emit a while loop. `cond` must leave an int on the stack; the loop
    /// body runs while it is non-zero.
    pub fn loop_while(
        &mut self,
        cond: impl FnOnce(&mut MethodBuilder),
        body: impl FnOnce(&mut MethodBuilder),
    ) -> &mut Self {
        let head = self.label();
        let exit = self.label();
        self.bind(head);
        cond(self);
        self.br_false(exit);
        body(self);
        self.jump(head);
        self.bind(exit);
        self
    }

    /// Emit an if/else. `then_blk` and `else_blk` must leave the operand
    /// stack at the same depth. The condition int must already be on the
    /// stack.
    pub fn if_else(
        &mut self,
        then_blk: impl FnOnce(&mut MethodBuilder),
        else_blk: impl FnOnce(&mut MethodBuilder),
    ) -> &mut Self {
        let els = self.label();
        let end = self.label();
        self.br_false(els);
        then_blk(self);
        self.jump(end);
        self.bind(els);
        else_blk(self);
        self.bind(end);
        self
    }

    /// Emit an if with no else. The condition int must already be on the
    /// stack; the block must leave the stack depth unchanged.
    pub fn if_then(&mut self, then_blk: impl FnOnce(&mut MethodBuilder)) -> &mut Self {
        let end = self.label();
        self.br_false(end);
        then_blk(self);
        self.bind(end);
        self
    }

    fn into_code(self) -> Vec<Op> {
        let mut code = self.code;
        for (at, l) in self.fixups {
            let target = self.labels[l.0].expect("jump to unbound label");
            match &mut code[at] {
                Op::Jump(t) | Op::BrTrue(t) | Op::BrFalse(t) => *t = target,
                other => unreachable!("fixup on non-branch {other:?}"),
            }
        }
        code
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_range_counts_correctly_shaped_code() {
        let mut p = ProgramBuilder::new();
        let main = p.function("main", 0, 2, |b| {
            b.const_i(0).store(0);
            b.for_range(1, 0, 4, |b| {
                b.load(0).load(1).add().store(0);
            });
            b.load(0).ret_value();
        });
        let prog = p.finish(main).expect("verifies");
        // 0+1+2+3 shape: loop head compares against 4.
        assert!(prog
            .method(main)
            .code()
            .iter()
            .any(|o| matches!(o, Op::ConstI(4))));
        assert!(prog.method(main).returns_value());
    }

    #[test]
    fn forward_declared_mutual_recursion_verifies() {
        let mut p = ProgramBuilder::new();
        let cls = p.class("Rec").build();
        let is_even = p.declare(cls, "is_even", 1, 0, true);
        let is_odd = p.declare(cls, "is_odd", 1, 0, true);
        p.define(is_even, |b| {
            let base = b.label();
            b.load(0).const_i(0).eq().br_true(base);
            b.load(0).const_i(1).sub().call(is_odd).ret_value();
            b.bind(base);
            b.const_i(1).ret_value();
        });
        p.define(is_odd, |b| {
            let base = b.label();
            b.load(0).const_i(0).eq().br_true(base);
            b.load(0).const_i(1).sub().call(is_even).ret_value();
            b.bind(base);
            b.const_i(0).ret_value();
        });
        assert!(p.finish(is_even).is_ok());
    }

    #[test]
    fn undefined_method_is_rejected() {
        let mut p = ProgramBuilder::new();
        let cls = p.class("C").build();
        let m = p.declare(cls, "ghost", 0, 0, false);
        assert!(matches!(
            p.finish(m),
            Err(VerifyError::UndefinedMethod { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut p = ProgramBuilder::new();
        p.function("m", 0, 0, |b| {
            let l = b.label();
            b.bind(l);
            b.bind(l);
        });
    }

    #[test]
    fn if_else_both_arms_reachable() {
        let mut p = ProgramBuilder::new();
        let main = p.function("main", 1, 0, |b| {
            b.load(0);
            b.if_else(
                |b| {
                    b.const_i(10);
                },
                |b| {
                    b.const_i(20);
                },
            );
            b.ret_value();
        });
        let prog = p.finish(main).expect("verifies");
        let code = prog.method(main).code();
        assert!(code.iter().any(|o| matches!(o, Op::ConstI(10))));
        assert!(code.iter().any(|o| matches!(o, Op::ConstI(20))));
    }
}
