//! The metering adapter: machine + measurement rig as one charging sink.
//!
//! All execution work — interpreter, compilers, class loader and garbage
//! collectors — flows through a [`Meter`], which forwards the charge to the
//! [`Machine`] and then lets the DAQ and performance monitor take any
//! samples that have come due. This is what keeps the 40 µs power sampling
//! running *during* GC pauses and compilations, exactly like the physical
//! rig.

use vmprobe_platform::{Addr, CpuSpec, Exec, Machine, PlatformKind, HPM_COUNTER_COUNT, PROBE_BASE};
use vmprobe_power::{
    hpm_read_stall_cycles, ComponentId, ComponentPort, Daq, DvfsPoint, FaultPlan, PerfMonitor,
    PowerCoeffs, PowerModel, ProbeSpec, ProbeStats, DAQ_ISR_LINES, DEFAULT_DAQ_PERIOD_NS,
};
use vmprobe_telemetry::SpanTrace;

/// Cycles charged per component-ID register write (parallel-port I/O on the
/// P6 board is slow; GPIO on the PXA255 is cheap). The paper's "efficient,
/// low-perturbation infrastructure" still pays this on every transition.
fn io_write_cycles(kind: PlatformKind) -> f64 {
    match kind {
        PlatformKind::PentiumM => 180.0,
        PlatformKind::Pxa255 => 6.0,
    }
}

/// Bytes of the DAQ ISR's sample ring buffer inside the probe region.
/// Twice the 32 KB L1D on both platforms, so a charged ISR steadily evicts
/// workload lines instead of settling into a resident hot set.
const PROBE_RING_BYTES: u64 = 1 << 16;
/// Offset of the kernel-side HPM counter file inside the probe region.
const PROBE_HPM_OFFSET: u64 = 1 << 20;
/// Offset of the memory-mapped component-ID register inside the probe
/// region.
const PROBE_PORT_OFFSET: u64 = 2 << 20;

/// Machine plus measurement rig.
#[derive(Debug)]
pub struct Meter {
    machine: Machine,
    port: ComponentPort,
    daq: Daq,
    perf: PerfMonitor,
    io_cycles: f64,
    next_probe: u64,
    spans: Option<SpanTrace>,
    /// Measurement mode: sampling period and probe transparency.
    probe: ProbeSpec,
    /// Syscall-shaped stall per charged HPM read (platform-specific).
    hpm_stall: f64,
    /// Cursor into the ISR sample ring (advances one line per load).
    isr_cursor: u64,
    port_stores: u64,
    daq_samples_paid: u64,
    hpm_reads_paid: u64,
    cycles_paid: u64,
}

impl Meter {
    /// Build a cold machine with its measurement rig attached, at the
    /// nominal operating point.
    pub fn new(kind: PlatformKind, trace_power: bool) -> Self {
        Self::with_dvfs(kind, trace_power, DvfsPoint::NOMINAL)
    }

    /// Build a machine running at a DVFS operating point: the clock, the
    /// DRAM penalty (constant in nanoseconds, fewer cycles at lower clocks)
    /// and the power-model coefficients all scale together.
    pub fn with_dvfs(kind: PlatformKind, trace_power: bool, dvfs: DvfsPoint) -> Self {
        Self::with_faults(kind, trace_power, dvfs, FaultPlan::none())
    }

    /// Build a machine whose measurement rig runs under a fault plan: the
    /// DAQ injects drops/dups/noise/glitches/drift, and when `wrap32` is set
    /// the performance monitor reads 32-bit wrapped counters and unwraps
    /// them.
    pub fn with_faults(
        kind: PlatformKind,
        trace_power: bool,
        dvfs: DvfsPoint,
        faults: FaultPlan,
    ) -> Self {
        Self::with_probe(kind, trace_power, dvfs, faults, ProbeSpec::default())
    }

    /// Build a machine whose measurement rig runs in an explicit probe mode:
    /// a retargeted DAQ period, charged probes, or both. The default spec
    /// takes exactly the [`Meter::with_faults`] construction path, so
    /// classic runs stay bit-identical.
    pub fn with_probe(
        kind: PlatformKind,
        trace_power: bool,
        dvfs: DvfsPoint,
        faults: FaultPlan,
        probe: ProbeSpec,
    ) -> Self {
        let spec = CpuSpec::of(kind).scaled(dvfs.freq_factor);
        let model = PowerModel::with_coeffs(dvfs.scale_coeffs(PowerCoeffs::of(kind)));
        let mut daq = Daq::with_model(model, spec.freq_hz, trace_power).with_faults(faults);
        if probe.daq_period_ns != DEFAULT_DAQ_PERIOD_NS {
            daq = daq.with_period(probe.daq_period_s());
        }
        let perf = PerfMonitor::with_clock(kind, spec.freq_hz);
        let perf = if faults.wrap32 {
            perf.with_wrap32()
        } else {
            perf
        };
        let next_probe = daq.next_due_cycles().min(perf.next_due_cycles());
        Self {
            machine: Machine::from_spec(spec),
            port: ComponentPort::new(),
            daq,
            perf,
            io_cycles: io_write_cycles(kind),
            next_probe,
            spans: None,
            probe,
            hpm_stall: hpm_read_stall_cycles(kind),
            isr_cursor: 0,
            port_stores: 0,
            daq_samples_paid: 0,
            hpm_reads_paid: 0,
            cycles_paid: 0,
        }
    }

    /// Start recording component enter/exit spans on the virtual cycle
    /// clock. Span capture happens *after* the charged register write, so
    /// it adds zero simulated cycles: the machine's trajectory — and with
    /// it every energy/power figure — is bit-identical with recording on
    /// or off.
    pub fn enable_spans(&mut self) {
        let clock_hz = self.machine.spec().freq_hz;
        self.spans = Some(SpanTrace::new(clock_hz));
    }

    /// Take the recorded span trace, closing any spans still open at the
    /// current cycle count. `None` when recording was never enabled.
    pub fn take_spans(&mut self) -> Option<SpanTrace> {
        let cycles = self.machine.cycles();
        self.spans.take().map(|mut t| {
            t.finish(cycles);
            t
        })
    }

    /// The underlying machine (read-only; charge work through `Exec`).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The component register.
    pub fn port(&self) -> &ComponentPort {
        &self.port
    }

    /// The DAQ (for reports/traces after a run).
    pub fn daq(&self) -> &Daq {
        &self.daq
    }

    /// The performance monitor.
    pub fn perf(&self) -> &PerfMonitor {
        &self.perf
    }

    /// Decompose into measurement components for offline analysis.
    pub fn into_parts(self) -> (Machine, Daq, PerfMonitor) {
        (self.machine, self.daq, self.perf)
    }

    /// The measurement mode in force.
    pub fn probe_spec(&self) -> ProbeSpec {
        self.probe
    }

    /// The probe-cost ledger: costs charged so far plus the DAQ's
    /// transition-window exposure.
    pub fn probe_stats(&self) -> ProbeStats {
        ProbeStats {
            port_stores: self.port_stores,
            daq_samples_paid: self.daq_samples_paid,
            hpm_reads_paid: self.hpm_reads_paid,
            cycles_paid: self.cycles_paid,
            transition_windows: self.daq.transition_windows(),
            transition_energy_j: self.daq.transition_energy_j(),
        }
    }

    /// Enter a nested component: write the register (charged I/O) and push.
    pub fn enter(&mut self, c: ComponentId) {
        self.port_write();
        self.port.push(c);
        if let Some(t) = &mut self.spans {
            t.enter(c.label(), self.machine.cycles());
        }
        self.maybe_sample();
    }

    /// Exit the current component.
    pub fn exit(&mut self) {
        self.port_write();
        self.port.pop();
        if let Some(t) = &mut self.spans {
            t.exit(self.machine.cycles());
        }
        self.maybe_sample();
    }

    /// Scheduler-style base-context write.
    pub fn set_base(&mut self, c: ComponentId) {
        self.port_write();
        self.port.set_base(c);
        self.maybe_sample();
    }

    /// The shared cost of any component-ID register write: the classic I/O
    /// stall, the DAQ's transition bookkeeping (counters only — free), and
    /// in non-transparent mode a real store through the cache hierarchy to
    /// the memory-mapped register.
    fn port_write(&mut self) {
        self.machine.stall(self.io_cycles);
        self.daq.note_port_write();
        if self.probe.nontransparent {
            let c0 = self.machine.cycles();
            self.machine.store(PROBE_BASE + PROBE_PORT_OFFSET);
            self.port_stores += 1;
            self.cycles_paid += self.machine.cycles() - c0;
        }
    }

    /// Charged DAQ interrupt handler: walk [`DAQ_ISR_LINES`] lines of the
    /// sample ring, advancing the cursor so the traffic keeps evicting
    /// workload lines instead of settling into a resident set.
    fn pay_daq_sample(&mut self) {
        let c0 = self.machine.cycles();
        let line = u64::from(self.machine.spec().l1d.line_bytes);
        for _ in 0..DAQ_ISR_LINES {
            self.machine
                .load(PROBE_BASE + (self.isr_cursor % PROBE_RING_BYTES));
            self.isr_cursor += line;
        }
        self.daq_samples_paid += 1;
        self.cycles_paid += self.machine.cycles() - c0;
    }

    /// Charged OS-timer HPM read: a syscall-shaped stall plus one load per
    /// counter in the file.
    fn pay_hpm_read(&mut self) {
        let c0 = self.machine.cycles();
        self.machine.stall(self.hpm_stall);
        let line = u64::from(self.machine.spec().l1d.line_bytes);
        for i in 0..HPM_COUNTER_COUNT as u64 {
            self.machine.load(PROBE_BASE + PROBE_HPM_OFFSET + i * line);
        }
        self.hpm_reads_paid += 1;
        self.cycles_paid += self.machine.cycles() - c0;
    }

    #[inline]
    fn maybe_sample(&mut self) {
        if self.machine.cycles() >= self.next_probe {
            let snap = self.machine.snapshot();
            let c = self.port.current();
            // Which monitors actually fire at this snapshot (observe() is a
            // no-op for the one whose deadline has not arrived).
            let daq_fired = snap.cycles >= self.daq.next_due_cycles();
            let perf_fired = snap.cycles >= self.perf.next_due_cycles();
            self.daq.observe(&snap, c);
            self.perf.observe(&snap, c);
            if self.probe.nontransparent {
                // Probe costs are charged *after* the sample commits — the
                // handler's own work lands in the next window, exactly like
                // an ISR running with further sampling masked.
                if daq_fired {
                    self.pay_daq_sample();
                }
                if perf_fired {
                    self.pay_hpm_read();
                }
            }
            self.next_probe = self.daq.next_due_cycles().min(self.perf.next_due_cycles());
        }
    }

    /// Drain any sample that is due right now (call at run end so the final
    /// partial window is not lost).
    pub fn flush_samples(&mut self) {
        // Force one final observation by stalling to the next boundary.
        let due = self.next_probe.saturating_sub(self.machine.cycles());
        if due > 0 {
            self.machine.stall(due as f64);
        }
        self.maybe_sample();
    }
}

impl Exec for Meter {
    fn int_ops(&mut self, n: u32) {
        self.machine.int_ops(n);
        self.maybe_sample();
    }
    fn fp_ops(&mut self, n: u32) {
        self.machine.fp_ops(n);
        self.maybe_sample();
    }
    fn math_op(&mut self) {
        self.machine.math_op();
        self.maybe_sample();
    }
    fn branch(&mut self) {
        self.machine.branch();
        self.maybe_sample();
    }
    fn load(&mut self, addr: Addr) {
        self.machine.load(addr);
        self.maybe_sample();
    }
    fn store(&mut self, addr: Addr) {
        self.machine.store(addr);
        self.maybe_sample();
    }
    fn ifetch(&mut self, addr: Addr) {
        self.machine.ifetch(addr);
        self.maybe_sample();
    }
    fn stall(&mut self, cycles: f64) {
        self.machine.stall(cycles);
        self.maybe_sample();
    }
    fn stream_read(&mut self, addr: Addr, bytes: u32) {
        // Sample at line granularity: delegate per-line so long streams
        // cannot skip sampling windows.
        let line = u64::from(self.machine.spec().l1d.line_bytes);
        let mut a = addr & !(line - 1);
        let end = addr + u64::from(bytes);
        while a < end {
            self.machine.load(a);
            self.maybe_sample();
            a += line;
        }
    }
    fn stream_write(&mut self, addr: Addr, bytes: u32) {
        let line = u64::from(self.machine.spec().l1d.line_bytes);
        let mut a = addr & !(line - 1);
        let end = addr + u64::from(bytes);
        while a < end {
            self.machine.store(a);
            self.maybe_sample();
            a += line;
        }
    }
    fn memcpy(&mut self, src: Addr, dst: Addr, bytes: u32) {
        self.stream_read(src, bytes);
        self.stream_write(dst, bytes);
        self.machine.int_ops(bytes / 4);
        self.maybe_sample();
    }
    fn cycles(&self) -> u64 {
        self.machine.cycles()
    }
    fn now(&self) -> f64 {
        self.machine.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_fire_during_long_work() {
        let mut m = Meter::new(PlatformKind::PentiumM, false);
        m.set_base(ComponentId::Application);
        // 2 ms of work = ~50 DAQ windows.
        while Exec::now(&m) < 2e-3 {
            m.int_ops(1000);
        }
        m.flush_samples();
        let r = m.daq().report();
        assert!(r.component(ComponentId::Application).samples >= 40);
    }

    #[test]
    fn attribution_respects_nesting() {
        let mut m = Meter::new(PlatformKind::PentiumM, false);
        m.set_base(ComponentId::Application);
        while Exec::now(&m) < 1e-3 {
            m.int_ops(1000);
        }
        m.enter(ComponentId::Gc);
        while Exec::now(&m) < 2e-3 {
            m.load(0x1000_0000 + (m.cycles() % (1 << 22)));
        }
        m.exit();
        m.flush_samples();
        let r = m.daq().report();
        assert!(r.component(ComponentId::Gc).samples > 10);
        assert!(r.component(ComponentId::Application).samples > 10);
    }

    #[test]
    fn gc_pause_is_sampled_via_exec_interface() {
        // Drive the meter through the dyn Exec interface the collectors use.
        let mut m = Meter::new(PlatformKind::PentiumM, false);
        m.set_base(ComponentId::Application);
        m.enter(ComponentId::Gc);
        let e: &mut dyn Exec = &mut m;
        for i in 0..100_000u64 {
            e.load(0x1000_0000 + i * 64);
        }
        m.exit();
        m.flush_samples();
        assert!(m.daq().report().component(ComponentId::Gc).samples > 0);
    }

    #[test]
    fn io_writes_cost_cycles() {
        let mut m = Meter::new(PlatformKind::PentiumM, false);
        let c0 = Exec::cycles(&m);
        m.enter(ComponentId::ClassLoader);
        m.exit();
        assert!(Exec::cycles(&m) - c0 >= 2 * 180);
        assert_eq!(m.port().writes(), 2);
    }

    #[test]
    fn span_recording_charges_zero_cycles() {
        let drive = |record: bool| {
            let mut m = Meter::new(PlatformKind::PentiumM, false);
            if record {
                m.enable_spans();
            }
            m.set_base(ComponentId::Application);
            m.enter(ComponentId::Gc);
            m.int_ops(5000);
            m.enter(ComponentId::ClassLoader);
            m.int_ops(100);
            m.exit();
            m.exit();
            m.flush_samples();
            (Exec::cycles(&m), m.take_spans())
        };
        let (bare_cycles, none) = drive(false);
        let (rec_cycles, spans) = drive(true);
        assert!(none.is_none());
        assert_eq!(bare_cycles, rec_cycles);
        let trace = spans.expect("recording enabled");
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.spans()[0].name, "CL");
        assert_eq!(trace.spans()[1].name, "GC");
        assert_eq!(trace.max_depth(), 2);
        assert_eq!(trace.total_cycles(), rec_cycles);
    }

    #[test]
    fn nontransparent_probes_cost_cycles_and_fill_the_ledger() {
        let drive = |probe: ProbeSpec| {
            let mut m = Meter::with_probe(
                PlatformKind::PentiumM,
                false,
                DvfsPoint::NOMINAL,
                FaultPlan::none(),
                probe,
            );
            m.set_base(ComponentId::Application);
            // Fixed work, not fixed time: the observer effect shows up as
            // extra cycles for the same workload.
            for _ in 0..10_000 {
                m.int_ops(1000);
            }
            m.enter(ComponentId::Gc);
            m.int_ops(5000);
            m.exit();
            m.flush_samples();
            (Exec::cycles(&m), m.probe_stats())
        };
        let (t_cycles, t_stats) = drive(ProbeSpec::default());
        let (nt_cycles, nt_stats) = drive(ProbeSpec::nontransparent_at(DEFAULT_DAQ_PERIOD_NS));
        // Transparent mode pays nothing but still tracks transitions.
        assert_eq!(t_stats.port_stores, 0);
        assert_eq!(t_stats.cycles_paid, 0);
        assert!(t_stats.transition_windows >= 1);
        // Non-transparent mode pays for every probe class.
        assert!(nt_stats.port_stores >= 3);
        assert!(nt_stats.daq_samples_paid >= 40);
        assert!(nt_stats.hpm_reads_paid >= 1);
        assert!(nt_stats.cycles_paid > 0);
        // Direct probe cycles are a lower bound on the observer effect —
        // evicted workload lines add knock-on misses on top.
        assert!(nt_cycles > t_cycles);
        assert!(nt_cycles - t_cycles >= nt_stats.cycles_paid);
    }

    #[test]
    fn retargeted_period_changes_sample_density() {
        let samples_at = |period_ns: u64| {
            let mut m = Meter::with_probe(
                PlatformKind::PentiumM,
                false,
                DvfsPoint::NOMINAL,
                FaultPlan::none(),
                ProbeSpec::transparent_at(period_ns),
            );
            m.set_base(ComponentId::Application);
            while Exec::now(&m) < 2e-3 {
                m.int_ops(1000);
            }
            m.flush_samples();
            m.daq().report().component(ComponentId::Application).samples
        };
        let fine = samples_at(4_000);
        let classic = samples_at(40_000);
        assert!(
            fine > 5 * classic,
            "4 µs sampling ({fine}) should far outnumber 40 µs ({classic})"
        );
    }

    #[test]
    fn flush_captures_trailing_partial_window() {
        let mut m = Meter::new(PlatformKind::PentiumM, false);
        m.set_base(ComponentId::Application);
        m.int_ops(10); // far less than one window
        m.flush_samples();
        let r = m.daq().report();
        assert!(r.component(ComponentId::Application).samples >= 1);
    }
}
