//! Lazy class loading with a boot-image split.
//!
//! The paper's two VMs differ sharply here (Section VI-E): Jikes RVM merges
//! system classes into its boot image, so only application classes are
//! loaded at runtime, while Kaffe loads *everything* lazily — "a long
//! initialization period characterized by a high number of calls to the
//! class loader", which makes the class loader the single largest energy
//! consumer (18 % average) for Kaffe on the PXA255.
//!
//! Loading cost is proportional to the modeled class-file size: the loader
//! streams the file (data-cache traffic over the class-file region), parses
//! and verifies each method body (ALU work), builds runtime metadata
//! (stores into the VM region), and walks its own sizeable code footprint
//! (instruction fetch over a region larger than the L1I — the mechanism
//! behind the fetch-stall-bound, low-power class loader the paper observes
//! on the XScale).

use vmprobe_bytecode::{ClassId, Program, Ty};
use vmprobe_platform::{Exec, CLASSFILE_BASE, CODE_BASE, VM_BASE};

use crate::{Meter, VmError};

/// Parse work per class-file byte (integer ops).
const PARSE_OPS_PER_BYTE: u32 = 2;
/// Verification work per bytecode byte (abstract interpretation).
const VERIFY_OPS_PER_BYTE: u32 = 3;
/// Modeled size of the loader's own code, fetched while parsing. Larger
/// than either platform's 32 KB L1I, so loading produces fetch misses.
const LOADER_CODE_FOOTPRINT: u64 = 48 << 10;
/// Where the loader's code lives in the code region.
const LOADER_CODE_BASE: u64 = CODE_BASE + 0x0100_0000;
/// Where per-class runtime metadata is written.
const METADATA_BASE: u64 = VM_BASE + 0x0010_0000;

/// How a field index maps into the heap object layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldSlot {
    /// Whether the field is a traced reference.
    pub is_ref: bool,
    /// Whether a primitive field holds a float (for decoding raw bits).
    pub is_float: bool,
    /// Index into the object's reference or primitive slot array.
    pub slot: u16,
}

/// Runtime state of one class.
#[derive(Debug, Clone)]
pub struct ClassRuntime {
    loaded: bool,
    layout: Vec<FieldSlot>,
    ref_slots: u32,
    prim_slots: u32,
    classfile_addr: u64,
    classfile_bytes: u32,
}

impl ClassRuntime {
    /// Whether the class has been loaded (or was in the boot image).
    pub fn is_loaded(&self) -> bool {
        self.loaded
    }

    /// Field-index → slot mapping.
    pub fn layout(&self) -> &[FieldSlot] {
        &self.layout
    }

    /// Number of reference slots an instance carries.
    pub fn ref_slots(&self) -> u32 {
        self.ref_slots
    }

    /// Number of primitive slots an instance carries.
    pub fn prim_slots(&self) -> u32 {
        self.prim_slots
    }
}

/// The dynamic class loader.
#[derive(Debug, Clone)]
pub struct ClassLoader {
    classes: Vec<ClassRuntime>,
    /// Classes loaded at runtime (boot-image classes excluded).
    pub classes_loaded: u64,
    /// Class-file bytes streamed at runtime.
    pub bytes_loaded: u64,
    /// Calls into the loader (including fast-path already-loaded checks).
    pub load_calls: u64,
    /// Whether first-load runs the dataflow verification tier
    /// ([`vmprobe_analysis::verify_class`]). Host-side only: it charges
    /// zero simulated cycles either way.
    verify: bool,
}

impl ClassLoader {
    /// Precompute layouts and class-file placement for `program`.
    pub fn new(program: &Program) -> Self {
        let mut classes = Vec::with_capacity(program.class_count());
        let mut file_cursor = CLASSFILE_BASE;
        for c in program.classes() {
            let mut layout = Vec::with_capacity(c.field_count());
            let mut ref_slots = 0u32;
            let mut prim_slots = 0u32;
            for f in c.fields() {
                if f.ty() == Ty::Ref {
                    layout.push(FieldSlot {
                        is_ref: true,
                        is_float: false,
                        slot: ref_slots as u16,
                    });
                    ref_slots += 1;
                } else {
                    layout.push(FieldSlot {
                        is_ref: false,
                        is_float: f.ty() == Ty::Float,
                        slot: prim_slots as u16,
                    });
                    prim_slots += 1;
                }
            }
            let bytes = program.classfile_bytes(c.id());
            classes.push(ClassRuntime {
                loaded: false,
                layout,
                ref_slots,
                prim_slots,
                classfile_addr: file_cursor,
                classfile_bytes: bytes,
            });
            file_cursor += u64::from(bytes) + 64;
        }
        Self {
            classes,
            classes_loaded: 0,
            bytes_loaded: 0,
            load_calls: 0,
            verify: true,
        }
    }

    /// Enable/disable the load-time verification tier (`--no-verify`).
    pub fn set_verify(&mut self, on: bool) {
        self.verify = on;
    }

    /// Runtime state for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from the same program.
    pub fn class(&self, id: ClassId) -> &ClassRuntime {
        &self.classes[id.0 as usize]
    }

    /// Jikes-style boot: mark every system class as present in the boot
    /// image (no runtime loading cost). Kaffe-style VMs skip this.
    pub fn preload_boot_image(&mut self, program: &Program) {
        for c in program.classes() {
            if c.is_system() {
                self.classes[c.id().0 as usize].loaded = true;
            }
        }
    }

    /// Ensure `id` is loaded, charging the loading cost to `meter` inside
    /// the class-loader component. Returns `Ok(true)` when a load
    /// happened, `Ok(false)` on the already-loaded fast path.
    ///
    /// On first load (boot-image classes excluded — they are trusted)
    /// the dataflow verification tier runs over every method of the
    /// class and a failure aborts the load with
    /// [`VmError::VerifyRejected`]. The real tier replaces the modeled
    /// per-byte "verification" charge below only in *function* — the
    /// energy model is unchanged: analysis runs host-side and charges
    /// zero simulated cycles, so accepted runs are bit-identical with
    /// verification on or off.
    ///
    /// The caller is responsible for having entered/exiting no component:
    /// this method brackets itself with
    /// [`ComponentId::ClassLoader`](vmprobe_power::ComponentId::ClassLoader).
    pub fn ensure_loaded(
        &mut self,
        program: &Program,
        id: ClassId,
        meter: &mut Meter,
    ) -> Result<bool, VmError> {
        self.load_calls += 1;
        if self.classes[id.0 as usize].loaded {
            // Fast path: a resolved-check costs a couple of ops.
            meter.int_ops(2);
            return Ok(false);
        }
        if self.verify {
            if let Err(e) = vmprobe_analysis::verify_class(program, id) {
                return Err(VmError::VerifyRejected {
                    class: id,
                    reason: e.to_string(),
                });
            }
        }
        meter.enter(vmprobe_power::ComponentId::ClassLoader);
        let (addr, bytes) = {
            let c = &self.classes[id.0 as usize];
            (c.classfile_addr, c.classfile_bytes)
        };

        // 1. Stream and parse the class file. Parsing is a byte-at-a-time
        // dependency chain through a large switch: short ALU bursts
        // punctuated by instruction fetches over the loader's big footprint
        // (the fetch-stall-bound profile the paper observes on the XScale).
        meter.stream_read(addr, bytes);
        let mut fetched = 0u64;
        let mut remaining = bytes * PARSE_OPS_PER_BYTE;
        while remaining > 0 {
            let chunk = remaining.min(48);
            meter.int_ops(chunk);
            meter.ifetch(LOADER_CODE_BASE + (fetched % LOADER_CODE_FOOTPRINT));
            fetched += 136;
            remaining -= chunk;
        }

        // 2. Verify method bodies.
        let class = program.class(id);
        for &mid in class.methods() {
            let mbytes = program.method(mid).bytecode_bytes();
            let mut remaining = mbytes * VERIFY_OPS_PER_BYTE;
            while remaining > 0 {
                let chunk = remaining.min(48);
                meter.int_ops(chunk);
                meter.ifetch(LOADER_CODE_BASE + (fetched % LOADER_CODE_FOOTPRINT));
                fetched += 136;
                remaining -= chunk;
            }
        }

        // 3. Install runtime metadata.
        meter.stream_write(METADATA_BASE + u64::from(id.0) * 512, 384);

        self.classes[id.0 as usize].loaded = true;
        self.classes_loaded += 1;
        self.bytes_loaded += u64::from(bytes);
        meter.exit();
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmprobe_bytecode::ProgramBuilder;
    use vmprobe_platform::PlatformKind;
    use vmprobe_power::ComponentId;

    fn sample_program() -> Program {
        let mut p = ProgramBuilder::new();
        let sys = p.class("java/lang/Object").system(true).build();
        let app = p
            .class("App")
            .field("next", Ty::Ref)
            .field("count", Ty::Int)
            .field("data", Ty::Ref)
            .build();
        let main = p.method(app, "main", 0, 0, |b| {
            b.new_obj(sys).pop().ret();
        });
        let _ = p.method(sys, "init", 0, 0, |b| {
            b.ret();
        });
        p.finish(main).unwrap()
    }

    #[test]
    fn layout_splits_ref_and_prim_slots() {
        let prog = sample_program();
        let loader = ClassLoader::new(&prog);
        let app = loader.class(vmprobe_bytecode::ClassId(1));
        assert_eq!(app.ref_slots(), 2);
        assert_eq!(app.prim_slots(), 1);
        assert_eq!(
            app.layout()[0],
            FieldSlot {
                is_ref: true,
                is_float: false,
                slot: 0
            }
        );
        assert_eq!(
            app.layout()[1],
            FieldSlot {
                is_ref: false,
                is_float: false,
                slot: 0
            }
        );
        assert_eq!(
            app.layout()[2],
            FieldSlot {
                is_ref: true,
                is_float: false,
                slot: 1
            }
        );
    }

    #[test]
    fn loading_charges_cost_and_marks_loaded() {
        let prog = sample_program();
        let mut loader = ClassLoader::new(&prog);
        let mut meter = Meter::new(PlatformKind::PentiumM, false);
        let before = meter.cycles();
        assert!(loader
            .ensure_loaded(&prog, vmprobe_bytecode::ClassId(1), &mut meter)
            .unwrap());
        assert!(meter.cycles() > before + 1000);
        assert!(loader.class(vmprobe_bytecode::ClassId(1)).is_loaded());
        assert_eq!(loader.classes_loaded, 1);
        // Second call is a cheap fast path.
        let mid = meter.cycles();
        assert!(!loader
            .ensure_loaded(&prog, vmprobe_bytecode::ClassId(1), &mut meter)
            .unwrap());
        assert!(meter.cycles() - mid < 100);
    }

    #[test]
    fn loading_time_is_attributed_to_the_class_loader() {
        let prog = sample_program();
        let mut loader = ClassLoader::new(&prog);
        let mut meter = Meter::new(PlatformKind::PentiumM, false);
        meter.set_base(ComponentId::Application);
        // Load enough times (different classes would be needed; here the
        // single big class) to cross at least one 40us window.
        loader
            .ensure_loaded(&prog, vmprobe_bytecode::ClassId(0), &mut meter)
            .unwrap();
        loader
            .ensure_loaded(&prog, vmprobe_bytecode::ClassId(1), &mut meter)
            .unwrap();
        meter.flush_samples();
        let r = meter.daq().report();
        // CL work may be under one window; at minimum nothing is attributed
        // to components that never ran.
        assert_eq!(r.component(ComponentId::Gc).samples, 0);
    }

    #[test]
    fn corrupt_class_is_rejected_at_load_time_unless_verification_is_off() {
        let prog = sample_program();
        // Corrupt App::main (class 1): add an Int and a Float merged at a
        // join, consumed by an integer op — the dataflow tier's case.
        let main = prog.entry();
        let corrupt = prog.with_method_code(
            main,
            vec![
                vmprobe_bytecode::Op::ConstI(1),
                vmprobe_bytecode::Op::BrFalse(4),
                vmprobe_bytecode::Op::ConstI(7),
                vmprobe_bytecode::Op::Jump(5),
                vmprobe_bytecode::Op::ConstF(7.0),
                vmprobe_bytecode::Op::ConstI(1),
                vmprobe_bytecode::Op::Add,
                vmprobe_bytecode::Op::Pop,
                vmprobe_bytecode::Op::Ret,
            ],
        );
        let mut loader = ClassLoader::new(&corrupt);
        let mut meter = Meter::new(PlatformKind::PentiumM, false);
        let err = loader
            .ensure_loaded(&corrupt, vmprobe_bytecode::ClassId(1), &mut meter)
            .unwrap_err();
        assert!(matches!(err, VmError::VerifyRejected { class, .. }
            if class == vmprobe_bytecode::ClassId(1)));
        assert!(!loader.class(vmprobe_bytecode::ClassId(1)).is_loaded());
        assert_eq!(loader.classes_loaded, 0);

        // The --no-verify escape hatch loads it anyway.
        let mut loader = ClassLoader::new(&corrupt);
        loader.set_verify(false);
        assert!(loader
            .ensure_loaded(&corrupt, vmprobe_bytecode::ClassId(1), &mut meter)
            .unwrap());
    }

    #[test]
    fn boot_image_marks_system_classes_only() {
        let prog = sample_program();
        let mut loader = ClassLoader::new(&prog);
        loader.preload_boot_image(&prog);
        assert!(loader.class(vmprobe_bytecode::ClassId(0)).is_loaded());
        assert!(!loader.class(vmprobe_bytecode::ClassId(1)).is_loaded());
        // Boot-image classes cost nothing at runtime.
        let mut meter = Meter::new(PlatformKind::PentiumM, false);
        assert!(!loader
            .ensure_loaded(&prog, vmprobe_bytecode::ClassId(0), &mut meter)
            .unwrap());
        assert_eq!(loader.classes_loaded, 0);
    }
}
