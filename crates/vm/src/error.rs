//! Runtime errors.

use std::error::Error;
use std::fmt;

use vmprobe_bytecode::{ClassId, MethodId};

/// A fault raised during execution.
///
/// With verified workloads most variants indicate a misconfigured
/// experiment (heap too small for the benchmark's live set) rather than a
/// workload bug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// The live set does not fit the configured heap: allocation failed
    /// even after a full collection.
    OutOfMemory {
        /// Bytes requested by the failing allocation.
        requested: u64,
        /// Configured heap size.
        heap_bytes: u64,
    },
    /// Dereferenced the null reference.
    NullDereference {
        /// Method executing at the fault.
        method: MethodId,
        /// Instruction index of the fault.
        pc: u32,
    },
    /// Array access out of bounds.
    IndexOutOfBounds {
        /// Method executing at the fault.
        method: MethodId,
        /// Instruction index.
        pc: u32,
        /// Requested index.
        index: i64,
        /// Array length.
        len: usize,
    },
    /// `newarray` was given a negative length. The structural and
    /// dataflow verifiers track types, not value ranges, so this can only
    /// be caught at runtime — as a typed fault, not a silent clamp.
    NegativeArrayLength {
        /// Method executing at the fault.
        method: MethodId,
        /// Instruction index of the fault.
        pc: u32,
        /// The negative length popped by the instruction.
        len: i64,
    },
    /// Call stack exceeded the configured frame limit.
    StackOverflow {
        /// The configured limit.
        limit: usize,
    },
    /// An instruction read a field/slot beyond the object's layout.
    BadSlot {
        /// Method executing at the fault.
        method: MethodId,
        /// Instruction index.
        pc: u32,
        /// Requested slot.
        slot: u16,
    },
    /// The collector rejected the configured heap (too small for its
    /// layout) — the typed form of the old constructor panics.
    HeapConfig {
        /// Collector that rejected the heap.
        collector: &'static str,
        /// Minimum heap the collector's layout needs, in bytes.
        required_bytes: u64,
        /// The heap that was configured, in bytes.
        actual_bytes: u64,
    },
    /// Heap exhaustion forced by the fault plan (`oom@N`) at the Nth
    /// allocation.
    InjectedOom {
        /// The allocation count at which the fault fired.
        at_allocation: u64,
    },
    /// The run exceeded the fault plan's per-run step budget (`budget=N`).
    StepBudgetExhausted {
        /// The configured budget in bytecodes.
        budget: u64,
    },
    /// The load-time verification tier rejected a class: some method
    /// failed the dataflow verifier (merge-point type conflict,
    /// uninitialized local, structural defect). Disable with the
    /// `--no-verify` escape hatch ([`VmConfig::verify`]).
    ///
    /// [`VmConfig::verify`]: crate::VmConfig::verify
    VerifyRejected {
        /// The class whose load was refused.
        class: ClassId,
        /// The verifier's diagnostic, rendered.
        reason: String,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::OutOfMemory {
                requested,
                heap_bytes,
            } => write!(
                f,
                "out of memory: {requested} bytes requested, heap is {heap_bytes} bytes"
            ),
            VmError::NullDereference { method, pc } => {
                write!(f, "null dereference at {method}:{pc}")
            }
            VmError::IndexOutOfBounds {
                method,
                pc,
                index,
                len,
            } => {
                write!(
                    f,
                    "index {index} out of bounds (len {len}) at {method}:{pc}"
                )
            }
            VmError::NegativeArrayLength { method, pc, len } => {
                write!(f, "negative array length {len} at {method}:{pc}")
            }
            VmError::StackOverflow { limit } => {
                write!(f, "call stack exceeded {limit} frames")
            }
            VmError::BadSlot { method, pc, slot } => {
                write!(f, "slot {slot} beyond object layout at {method}:{pc}")
            }
            VmError::HeapConfig {
                collector,
                required_bytes,
                actual_bytes,
            } => write!(
                f,
                "heap misconfigured: {collector} needs at least {required_bytes} bytes, got {actual_bytes}"
            ),
            VmError::InjectedOom { at_allocation } => {
                write!(f, "injected heap exhaustion at allocation {at_allocation}")
            }
            VmError::StepBudgetExhausted { budget } => {
                write!(f, "step budget of {budget} bytecodes exhausted")
            }
            VmError::VerifyRejected { class, reason } => {
                write!(f, "class C{} rejected by the verifier: {reason}", class.0)
            }
        }
    }
}

impl Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = VmError::OutOfMemory {
            requested: 64,
            heap_bytes: 1024,
        };
        assert!(e.to_string().contains("out of memory"));
        let e = VmError::NullDereference {
            method: MethodId(2),
            pc: 7,
        };
        assert!(e.to_string().contains("M2:7"));
        let e = VmError::NegativeArrayLength {
            method: MethodId(3),
            pc: 9,
            len: -4,
        };
        assert!(e.to_string().contains("-4"));
        assert!(e.to_string().contains("M3:9"));
    }
}
