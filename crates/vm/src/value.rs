//! Runtime values.

use vmprobe_heap::ObjId;

/// A value on the operand stack or in a local slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// 64-bit signed integer.
    I(i64),
    /// 64-bit float.
    F(f64),
    /// Reference to a live heap object.
    Ref(ObjId),
    /// The null reference.
    Null,
}

impl Value {
    /// Integer view; floats truncate, references read as their raw handle
    /// bits (conservative-stack realism), null reads as 0.
    pub fn as_i(self) -> i64 {
        match self {
            Value::I(v) => v,
            Value::F(v) => v as i64,
            Value::Ref(r) => i64::from(r.0),
            Value::Null => 0,
        }
    }

    /// Float view; integers convert, references/null read as 0.0.
    pub fn as_f(self) -> f64 {
        match self {
            Value::I(v) => v as f64,
            Value::F(v) => v,
            Value::Ref(_) | Value::Null => 0.0,
        }
    }

    /// Branch truthiness: zero integers, zero floats and null are false.
    pub fn truthy(self) -> bool {
        match self {
            Value::I(v) => v != 0,
            Value::F(v) => v != 0.0,
            Value::Ref(_) => true,
            Value::Null => false,
        }
    }

    /// The referenced object, if this is a non-null reference.
    pub fn as_ref_id(self) -> Option<ObjId> {
        match self {
            Value::Ref(r) => Some(r),
            _ => None,
        }
    }

    /// Raw bits for storage in a primitive heap slot.
    pub fn to_bits(self) -> u64 {
        match self {
            Value::I(v) => v as u64,
            Value::F(v) => v.to_bits(),
            Value::Ref(r) => u64::from(r.0),
            Value::Null => 0,
        }
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::I(0)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coercions() {
        assert_eq!(Value::I(3).as_f(), 3.0);
        assert_eq!(Value::F(2.9).as_i(), 2);
        assert_eq!(Value::Null.as_i(), 0);
        assert_eq!(Value::from(5i64), Value::I(5));
        assert_eq!(Value::from(1.5f64), Value::F(1.5));
    }

    #[test]
    fn truthiness() {
        assert!(Value::I(1).truthy());
        assert!(!Value::I(0).truthy());
        assert!(!Value::Null.truthy());
        assert!(Value::Ref(ObjId(3)).truthy());
        assert!(!Value::F(0.0).truthy());
    }

    #[test]
    fn bits_round_trip_floats() {
        let v = Value::F(3.25);
        assert_eq!(f64::from_bits(v.to_bits()), 3.25);
        assert_eq!(Value::default(), Value::I(0));
    }
}
