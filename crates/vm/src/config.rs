//! Virtual-machine configuration.

use serde::Serialize;
use vmprobe_faults::FaultPlan;
use vmprobe_heap::CollectorKind;
use vmprobe_platform::PlatformKind;
use vmprobe_power::{DvfsPoint, ProbeSpec};

/// Which of the paper's two virtual machines this runtime imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, serde::Deserialize)]
pub enum Personality {
    /// IBM Jikes RVM 2.4.1 style: baseline compilation on first invocation,
    /// adaptive recompilation of hot methods by an optimizing compiler on a
    /// separate thread driven by a controller thread, system classes merged
    /// into the boot image, and a choice of MMTk collectors.
    JikesRvm,
    /// Kaffe 1.1.4 style: one-shot JIT translation without extensive
    /// optimization, fully lazy class loading (system classes included),
    /// and an incremental conservative mark-sweep collector.
    Kaffe,
}

impl std::fmt::Display for Personality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Personality::JikesRvm => "Jikes RVM",
            Personality::Kaffe => "Kaffe",
        })
    }
}

/// Complete configuration of one VM instance.
///
/// Construct with [`VmConfig::jikes`] or [`VmConfig::kaffe`] and refine with
/// the builder methods.
///
/// # Example
///
/// ```
/// use vmprobe_heap::CollectorKind;
/// use vmprobe_platform::PlatformKind;
/// use vmprobe_vm::VmConfig;
///
/// let cfg = VmConfig::jikes(CollectorKind::GenCopy, 4 << 20)
///     .platform(PlatformKind::PentiumM)
///     .trace_power(true);
/// assert_eq!(cfg.heap_bytes, 4 << 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct VmConfig {
    /// VM behaviour profile.
    pub personality: Personality,
    /// Garbage collection plan (forced to
    /// [`CollectorKind::KaffeIncremental`] by [`VmConfig::kaffe`]).
    pub collector: CollectorKind,
    /// Simulated heap size in bytes.
    pub heap_bytes: u64,
    /// Hardware platform to model.
    pub platform: PlatformKind,
    /// Adaptive-optimization hotness threshold (weighted invocation +
    /// back-edge count at which the controller queues a method for the
    /// optimizing compiler). Jikes-only.
    pub opt_threshold: u64,
    /// Scheduler quantum in cycles.
    pub quantum_cycles: u64,
    /// Record the full 40 µs power trace (needed for time-series figures;
    /// costs memory).
    pub trace_power: bool,
    /// Maximum call-stack depth in frames.
    pub max_frames: usize,
    /// Operating point for dynamic voltage and frequency scaling (the
    /// paper's Section VII future work; nominal by default).
    pub dvfs: DvfsPoint,
    /// Override the generational nursery size in bytes (ablation studies;
    /// `None` = the plans' default Appel-style sizing).
    pub nursery_bytes: Option<u64>,
    /// Fault-injection plan for the run (measurement-path faults plus
    /// forced VM faults). `FaultPlan::none()` by default.
    pub faults: FaultPlan,
    /// Record component enter/exit spans on the virtual cycle clock for
    /// the telemetry layer. Recording charges zero simulated cycles, so
    /// every report is bit-identical with this on or off.
    pub record_spans: bool,
    /// Run the dataflow verification tier when a class is first loaded
    /// (rejecting the run with [`VmError::VerifyRejected`] on failure).
    /// On by default; the `--no-verify` escape hatch clears it.
    /// Verification happens host-side and charges zero simulated cycles,
    /// so results are bit-identical with this on or off.
    ///
    /// [`VmError::VerifyRejected`]: crate::VmError::VerifyRejected
    pub verify: bool,
    /// Measurement mode: DAQ sampling period and probe transparency. The
    /// default (40 µs, transparent) is the classic free-probes rig; any
    /// other value perturbs or re-times the measurement itself.
    pub probe: ProbeSpec,
    /// Execute [`Tier::Opt`] methods on the register engine (lowered
    /// three-address IR over recycled register windows) instead of the
    /// stack interpreter. On by default. A pure *engine* switch: metered
    /// µops, fault streams, spans and reports are bit-identical either
    /// way — turning it off only costs host wall-clock, which is what the
    /// differential harness exploits.
    ///
    /// [`Tier::Opt`]: crate::Tier::Opt
    pub rir: bool,
}

impl VmConfig {
    /// Jikes-style configuration with the given collector and heap.
    pub fn jikes(collector: CollectorKind, heap_bytes: u64) -> Self {
        Self {
            personality: Personality::JikesRvm,
            collector,
            heap_bytes,
            platform: PlatformKind::PentiumM,
            opt_threshold: 6_000,
            quantum_cycles: 1_600_000, // 1 ms at 1.6 GHz
            trace_power: false,
            max_frames: 1024,
            dvfs: DvfsPoint::NOMINAL,
            nursery_bytes: None,
            faults: FaultPlan::none(),
            record_spans: false,
            verify: true,
            probe: ProbeSpec::default(),
            rir: true,
        }
    }

    /// Kaffe-style configuration with the given heap. The collector is
    /// Kaffe's own incremental conservative mark-sweep.
    pub fn kaffe(heap_bytes: u64) -> Self {
        Self {
            personality: Personality::Kaffe,
            collector: CollectorKind::KaffeIncremental,
            heap_bytes,
            platform: PlatformKind::PentiumM,
            opt_threshold: u64::MAX,
            quantum_cycles: 1_600_000,
            trace_power: false,
            max_frames: 1024,
            dvfs: DvfsPoint::NOMINAL,
            nursery_bytes: None,
            faults: FaultPlan::none(),
            record_spans: false,
            verify: true,
            probe: ProbeSpec::default(),
            rir: true,
        }
    }

    /// Select the hardware platform (adjusts the scheduler quantum to keep
    /// it at roughly 1 ms of wall-clock time).
    pub fn platform(mut self, platform: PlatformKind) -> Self {
        self.platform = platform;
        self.quantum_cycles = match platform {
            PlatformKind::PentiumM => 1_600_000,
            PlatformKind::Pxa255 => 400_000,
        };
        self
    }

    /// Override the adaptive-optimization threshold.
    pub fn opt_threshold(mut self, threshold: u64) -> Self {
        self.opt_threshold = threshold;
        self
    }

    /// Enable/disable full power-trace recording.
    pub fn trace_power(mut self, on: bool) -> Self {
        self.trace_power = on;
        self
    }

    /// Run at a DVFS operating point (see [`DvfsPoint::ladder`]).
    pub fn dvfs(mut self, point: DvfsPoint) -> Self {
        self.dvfs = point;
        self
    }

    /// Override the generational nursery size (ablation studies).
    pub fn nursery_bytes(mut self, bytes: u64) -> Self {
        self.nursery_bytes = Some(bytes);
        self
    }

    /// Run under a fault-injection plan (see [`FaultPlan`]).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Enable/disable virtual-clock component span recording.
    pub fn record_spans(mut self, on: bool) -> Self {
        self.record_spans = on;
        self
    }

    /// Enable/disable the load-time verification tier.
    pub fn verify(mut self, on: bool) -> Self {
        self.verify = on;
        self
    }

    /// Select the measurement mode (observer-effect studies).
    pub fn probe(mut self, probe: ProbeSpec) -> Self {
        self.probe = probe;
        self
    }

    /// Enable/disable the register engine for [`Tier::Opt`] frames
    /// (differential testing; results are bit-identical either way).
    ///
    /// [`Tier::Opt`]: crate::Tier::Opt
    pub fn rir(mut self, on: bool) -> Self {
        self.rir = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kaffe_forces_its_collector() {
        let cfg = VmConfig::kaffe(1 << 20);
        assert_eq!(cfg.collector, CollectorKind::KaffeIncremental);
        assert_eq!(cfg.personality, Personality::Kaffe);
    }

    #[test]
    fn platform_adjusts_quantum() {
        let cfg = VmConfig::jikes(CollectorKind::SemiSpace, 1 << 20).platform(PlatformKind::Pxa255);
        assert_eq!(cfg.quantum_cycles, 400_000);
        // ~1 ms on a 400 MHz part.
        assert!((cfg.quantum_cycles as f64 / 400e6 - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn personality_display() {
        assert_eq!(Personality::JikesRvm.to_string(), "Jikes RVM");
        assert_eq!(Personality::Kaffe.to_string(), "Kaffe");
    }
}
